//! Workspace root for the `systolic-gossip` reproduction of
//! Flammini & Pérennès, *Lower bounds on systolic gossip* (IPPS 1997;
//! Information and Computation 196, 2005).
//!
//! This root package only hosts the runnable [examples](../examples) and the
//! cross-crate integration tests; all functionality lives in the member
//! crates and is re-exported through [`systolic_gossip`].

pub use systolic_gossip::*;
