//! Quickstart: bounds and an executable protocol on one network.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the wrapped butterfly `WBF(2, 8)`, prints every lower bound the
//! paper provides for it (general, separator-strengthened, diameter), then
//! runs an actual systolic protocol on it and audits the execution against
//! the theory.

use systolic_gossip::prelude::*;

fn main() {
    let net = Network::WrappedButterfly { d: 2, dd: 8 };
    let g = net.build();
    println!(
        "network {} — n = {}, arcs = {}, max degree = {}\n",
        net,
        g.vertex_count(),
        g.arc_count(),
        g.max_degree()
    );

    // 1. What the paper says about any 4-systolic half-duplex protocol.
    let report = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
    println!("{report}\n");

    // 2. And for unrestricted (non-systolic) protocols.
    let report = bound_report(&net, Mode::HalfDuplex, Period::NonSystolic);
    println!("{report}\n");

    // 3. Run a real protocol: the universal edge-coloring systolic
    //    protocol (Liestman–Richards style), and audit it.
    let sp = builders::edge_coloring_periodic(&g);
    println!(
        "running the edge-coloring periodic protocol (s = {}) ...",
        sp.s()
    );
    let audit = audit(&net, &sp, 100_000, BoundOpts::default());
    println!("{audit}\n");

    // 4. A cheaper empirical upper bound: randomized greedy gossip.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let out = greedy_gossip(&g, Mode::HalfDuplex, 100_000, &mut rng).expect("connected");
    println!(
        "greedy half-duplex gossip completed in {} rounds (non-systolic upper bound)",
        out.rounds
    );
    println!(
        "paper lower bound for non-systolic protocols: {:.1} rounds",
        report.best_rounds
    );
}
