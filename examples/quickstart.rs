//! Quickstart: the scenario registry end to end on one network.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Lists the registry, then assembles a custom scenario for the wrapped
//! butterfly `WBF(2, 8)` — the same descriptor `sg-bench sweep` builds
//! from the command line — and runs it through the parallel batch
//! executor: lower bounds at s = 4 and s = ∞, plus a simulated, audited
//! protocol execution.

use sg_scenario::{registry, run_batch, BatchOptions, Scenario, Task};
use systolic_gossip::prelude::*;
use systolic_gossip::sg_bounds::pfun::Period as P;

fn main() {
    // 1. The named scenarios (also: `sg-bench list`).
    println!("registered scenarios:");
    for sc in registry() {
        println!("  {:<26} [{}] {}", sc.name, sc.task.name(), sc.summary);
    }

    // 2. A custom scenario on one network: what the paper says about any
    //    4-systolic and any unrestricted half-duplex protocol on WBF(2,8).
    let net = Network::WrappedButterfly { d: 2, dd: 8 };
    let bounds = Scenario::new(
        "quickstart-bounds",
        "lower bounds on WBF(2,8)",
        Task::Bound,
        Mode::HalfDuplex,
    )
    .networks([net])
    .periods([P::Systolic(4), P::NonSystolic]);

    // 3. …and an executable protocol on the same network, audited
    //    against the theory (Theorem 4.1 + Corollary 4.4).
    let run = Scenario::new(
        "quickstart-run",
        "simulate & audit the reference protocol on WBF(2,8)",
        Task::Simulate,
        Mode::HalfDuplex,
    )
    .networks([net]);

    let report = run_batch(&[bounds, run], &BatchOptions::default());
    for outcome in &report.outcomes {
        println!("\n{}", outcome.render_text());
    }

    // 4. A cheaper empirical upper bound: randomized greedy gossip (the
    //    `compare` task runs this for whole network lists).
    let g = net.build();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let out = greedy_gossip(&g, Mode::HalfDuplex, 100_000, &mut rng).expect("connected");
    println!(
        "greedy half-duplex gossip completed in {} rounds (non-systolic upper bound)",
        out.rounds
    );
}
