//! Audits every hand-built protocol and several greedy protocols against
//! the paper's lower bounds.
//!
//! ```bash
//! cargo run --release --example protocol_audit
//! ```
//!
//! For each (network, protocol) pair: validate the rounds, measure gossip
//! completion, compute the Theorem 4.1 delay-matrix bound and the
//! Corollary 4.4 closed form, and confirm measured ≥ bound.

use systolic_gossip::prelude::*;

fn row(audit: &ProtocolAudit) {
    let measured = audit
        .measured_rounds
        .map_or("—".to_string(), |t| t.to_string());
    let thm41 = audit
        .matrix_bound
        .as_ref()
        .map_or("—".to_string(), |b| format!("{:.1}", b.rounds));
    println!(
        "{:<14} {:>6} {:>4} {:>9} {:>9} {:>10.1} {:>11}",
        audit.network,
        audit.n,
        audit.s,
        measured,
        thm41,
        audit.closed_form_rounds,
        if audit.is_sound() { "ok" } else { "VIOLATION" }
    );
}

fn main() {
    println!(
        "{:<14} {:>6} {:>4} {:>9} {:>9} {:>10} {:>11}",
        "network", "n", "s", "measured", "Thm4.1", "Cor4.4", "consistent"
    );

    let opts = BoundOpts::default();

    // Hand protocols on the classical networks.
    let cases: Vec<(Network, SystolicProtocol)> = vec![
        (Network::Path { n: 24 }, builders::path_rrll(24)),
        (Network::Cycle { n: 24 }, builders::cycle_rrll(24)),
        (
            Network::Cycle { n: 24 },
            builders::cycle_two_color_directed(24),
        ),
        (Network::Hypercube { k: 7 }, builders::hypercube_sweep(7)),
        (
            Network::Grid2d { w: 8, h: 8 },
            builders::grid_traffic_light(8, 8),
        ),
        (
            Network::Knodel { delta: 7, n: 128 },
            builders::knodel_sweep(7, 128),
        ),
    ];
    for (net, sp) in &cases {
        row(&audit(net, sp, 200_000, opts));
    }

    // Universal edge-coloring protocols on the hypercube-like families.
    for net in [
        Network::WrappedButterfly { d: 2, dd: 5 },
        Network::DeBruijn { d: 2, dd: 7 },
        Network::Kautz { d: 2, dd: 6 },
        Network::Butterfly { d: 2, dd: 4 },
        Network::ShuffleExchange { dd: 7 },
        Network::CubeConnectedCycles { k: 5 },
    ] {
        let sp = builders::edge_coloring_periodic(&net.build());
        row(&audit(&net, &sp, 500_000, opts));
    }

    // Full-duplex coloring protocols.
    for net in [
        Network::WrappedButterfly { d: 2, dd: 5 },
        Network::DeBruijn { d: 2, dd: 7 },
    ] {
        let sp =
            systolic_gossip::sg_protocol::builders::full_duplex_coloring_periodic(&net.build());
        row(&audit(&net, &sp, 500_000, opts));
    }

    println!("\nall rows should read 'ok': every measured execution respects every bound.");
}
