//! Regenerates every numeric table of the paper from the public API.
//!
//! ```bash
//! cargo run --release --example bound_tables
//! ```
//!
//! Prints Figs. 4, 5, 6 and 8 (see also the `sg-bench` binaries `fig4`,
//! `fig5`, `fig6`, `fig8`, which emit the same tables one at a time).

use systolic_gossip::sg_bounds::tables;

fn main() {
    for table in [
        tables::fig4(),
        tables::fig5(),
        tables::fig6(),
        tables::fig8(),
    ] {
        println!("{}", table.render());
    }
    println!("'∗' marks entries where the separator optimizer sits on the feasibility");
    println!("boundary f(λ) = 1 — there the bound coincides with the general one, as in");
    println!("the paper's figures.");
}
