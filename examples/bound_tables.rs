//! Regenerates every numeric table of the paper through the scenario
//! registry.
//!
//! ```bash
//! cargo run --release --example bound_tables
//! ```
//!
//! Equivalent CLI: `sg-bench run fig4 fig5 fig6 fig8`.

use sg_scenario::{find, run_batch, BatchOptions};

fn main() {
    let scenarios: Vec<_> = ["fig4", "fig5", "fig6", "fig8"]
        .iter()
        .map(|n| find(n).expect("registered figure scenario"))
        .collect();
    let report = run_batch(&scenarios, &BatchOptions::default());
    for outcome in &report.outcomes {
        println!("{}", outcome.render_text());
    }
    println!("'∗' marks entries where the separator optimizer sits on the feasibility");
    println!("boundary f(λ) = 1 — there the bound coincides with the general one, as in");
    println!("the paper's figures.");
    assert!(report.checks_ok(), "paper checks must match");
}
