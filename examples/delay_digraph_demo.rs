//! The paper's machinery end to end, on one concrete protocol.
//!
//! ```bash
//! cargo run --release --example delay_digraph_demo
//! ```
//!
//! Takes the period-4 RRLL protocol on a path, builds its delay digraph
//! (Definition 3.3), sweeps `‖M(λ)‖` against Lemma 4.3's closed-form
//! bound, finds `λ*`, applies Theorem 4.1, and prints the local matrices
//! `Mx(λ)`, `Nx(λ)`, `Ox(λ)` of Figs. 1–3 for an interior vertex.

use systolic_gossip::prelude::*;
use systolic_gossip::sg_delay::local::{local_norm_bound, LocalMatrices};
use systolic_gossip::sg_protocol::local::LocalSchedule;

fn main() {
    let n = 16;
    let net = Network::Path { n };
    let sp = builders::path_rrll(n);
    println!("protocol: RRLL on {} — period s = {}\n", net, sp.s());

    // Delay digraph (periodic fold).
    let dg = DelayDigraph::periodic(&sp);
    println!(
        "delay digraph: {} activation vertices, {} weighted arcs",
        dg.vertex_count(),
        dg.edge_count()
    );

    // Norm sweep vs the Lemma 4.3 closed form.
    println!("\n  λ      ‖M(λ)‖   λ·√p⌈s/2⌉·√p⌊s/2⌋ (Lemma 4.3)");
    for i in 1..10 {
        let l = i as f64 / 10.0;
        let norm = dg.norm(l, Default::default());
        let bound = local_norm_bound(sp.s(), l);
        println!("  {:.1}    {:.4}   {:.4}", l, norm, bound);
        assert!(norm <= bound + 1e-9, "Lemma 4.3 must dominate");
    }

    // Theorem 4.1.
    let b = theorem_4_1_bound(&sp, n, BoundOpts::default()).expect("bound exists");
    println!(
        "\nλ* = {:.6};  Theorem 4.1: any gossiping execution needs t > {:.2} rounds",
        b.lambda_star, b.rounds
    );
    let measured = systolic_gossip_time(&sp, n, 100 * n).expect("completes");
    println!(
        "measured gossip time: {measured} rounds  (sound: {})",
        measured as f64 > b.rounds
    );

    // The local matrices of Figs. 1–3 at an interior vertex.
    let sched = LocalSchedule::of(&sp, n / 2);
    let pattern = sched.block_pattern().expect("interior vertices alternate");
    println!(
        "\nlocal pattern at vertex {}: l = {:?}, r = {:?}  (Definition 4.1)",
        n / 2,
        pattern.l,
        pattern.r
    );
    let lm = LocalMatrices::new(pattern, 3);
    let l = 0.68;
    println!("\nMx({l}) — Fig. 1 (rows: left activations, cols: right activations):");
    print!("{}", lm.mx(l).render(3));
    println!("\nNx({l}) — Fig. 3 left:");
    print!("{}", lm.nx(l).render(3));
    println!("\nOx({l}) — Fig. 3 right:");
    print!("{}", lm.ox(l).render(3));
    println!(
        "\nsemi-eigenvector e (Lemma 4.2): {:?}",
        lm.semi_eigenvector(l)
    );
}
