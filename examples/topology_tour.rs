//! Tour of the network zoo: structure, diameters and separators.
//!
//! ```bash
//! cargo run --release --example topology_tour
//! ```
//!
//! Prints, for every implemented family: size, degree, measured diameter,
//! and — where Lemma 3.1 applies — the concrete separator (set sizes and
//! BFS-verified distance vs the claim).

use systolic_gossip::prelude::*;
use systolic_gossip::sg_graphs::traversal;

fn main() {
    println!(
        "{:<14} {:>6} {:>7} {:>7} {:>6}  {:<30}",
        "network", "n", "arcs", "maxdeg", "diam", "separator (|V1|,|V2|,dist,claim)"
    );
    let nets = [
        Network::Path { n: 32 },
        Network::Cycle { n: 32 },
        Network::Complete { n: 16 },
        Network::DaryTree { d: 2, h: 4 },
        Network::Grid2d { w: 6, h: 6 },
        Network::Torus2d { w: 6, h: 6 },
        Network::Hypercube { k: 6 },
        Network::ShuffleExchange { dd: 6 },
        Network::CubeConnectedCycles { k: 4 },
        Network::Knodel { delta: 5, n: 64 },
        Network::Butterfly { d: 2, dd: 4 },
        Network::WrappedButterflyDirected { d: 2, dd: 4 },
        Network::WrappedButterfly { d: 2, dd: 4 },
        Network::DeBruijnDirected { d: 2, dd: 6 },
        Network::DeBruijn { d: 2, dd: 6 },
        Network::KautzDirected { d: 2, dd: 5 },
        Network::Kautz { d: 2, dd: 5 },
    ];
    for net in nets {
        let g = net.build();
        let diam = traversal::diameter(&g)
            .map_or("∞".to_string(), |d| d.to_string());
        let sep = match net.concrete_separator() {
            Some(s) => {
                let measured = s
                    .measured_distance(&g)
                    .map_or("—".into(), |d| d.to_string());
                format!(
                    "({}, {}, {}, ≥{})",
                    s.v1.len(),
                    s.v2.len(),
                    measured,
                    s.claimed_distance
                )
            }
            None => "—".to_string(),
        };
        println!(
            "{:<14} {:>6} {:>7} {:>7} {:>6}  {:<30}",
            net.name(),
            g.vertex_count(),
            g.arc_count(),
            g.max_degree(),
            diam,
            sep
        );
    }

    // Show the paper-notation vertex labels on a small de Bruijn graph.
    let db = Network::DeBruijn { d: 2, dd: 3 };
    let g = db.build();
    println!("\nvertex labels of {}:", db.name());
    for v in 0..g.vertex_count() {
        let neigh: Vec<String> = g
            .out_neighbors(v)
            .iter()
            .map(|&w| db.vertex_label(w as usize))
            .collect();
        println!("  {} -> {}", db.vertex_label(v), neigh.join(", "));
    }
}
