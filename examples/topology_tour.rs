//! Tour of the network zoo, driven by the scenario registry: structure,
//! diameters and separators for every network the `zoo-bounds` scenario
//! sweeps.
//!
//! ```bash
//! cargo run --release --example topology_tour
//! ```

use sg_scenario::find;
use systolic_gossip::prelude::*;
use systolic_gossip::sg_graphs::traversal;

fn main() {
    // The zoo is defined once, in the registry — the tour just walks it.
    let zoo = find("zoo-bounds").expect("registered scenario");
    println!("networks of the `{}` scenario:\n", zoo.name);
    println!(
        "{:<14} {:>6} {:>7} {:>7} {:>6}  {:<30}",
        "network", "n", "arcs", "maxdeg", "diam", "separator (|V1|,|V2|,dist,claim)"
    );
    for net in &zoo.networks {
        let g = net.build();
        let diam = traversal::diameter(&g).map_or("∞".to_string(), |d| d.to_string());
        let sep = match net.concrete_separator() {
            Some(s) => {
                let measured = s
                    .measured_distance(&g)
                    .map_or("—".into(), |d| d.to_string());
                format!(
                    "({}, {}, {}, ≥{})",
                    s.v1.len(),
                    s.v2.len(),
                    measured,
                    s.claimed_distance
                )
            }
            None => "—".to_string(),
        };
        println!(
            "{:<14} {:>6} {:>7} {:>7} {:>6}  {:<30}",
            net.name(),
            g.vertex_count(),
            g.arc_count(),
            g.max_degree(),
            diam,
            sep
        );
    }

    // Show the paper-notation vertex labels on a small de Bruijn graph.
    let db = Network::DeBruijn { d: 2, dd: 3 };
    let g = db.build();
    println!("\nvertex labels of {}:", db.name());
    for v in 0..g.vertex_count() {
        let neigh: Vec<String> = g
            .out_neighbors(v)
            .iter()
            .map(|&w| db.vertex_label(w as usize))
            .collect();
        println!("  {} -> {}", db.vertex_label(v), neigh.join(", "));
    }
}
