//! Integration: every numeric value the paper states must reproduce
//! through the public API.

use systolic_gossip::prelude::*;
use systolic_gossip::sg_bounds::tables;

/// Fig. 4: e(3..8) and the s → ∞ limit (Section 1 lists all seven).
#[test]
fn fig4_all_paper_values() {
    let expected = [
        (Period::Systolic(3), 2.8808),
        (Period::Systolic(4), 1.8133),
        (Period::Systolic(5), 1.6502),
        (Period::Systolic(6), 1.5363),
        (Period::Systolic(7), 1.5021),
        (Period::Systolic(8), 1.4721),
        (Period::NonSystolic, 1.4404),
    ];
    for (p, want) in expected {
        let got = e_coefficient(BoundMode::HalfDuplex, p);
        assert!(
            (got - want).abs() < 1.2e-4,
            "{p}: computed {got:.5}, paper {want}"
        );
    }
}

/// Section 1's systolic spot values: for s = 4,
/// g(WBF(2,D)) ≥ 2.0218·log n and g(DB(2,D)) ≥ 1.8133·log n.
#[test]
fn section1_systolic_spot_values() {
    let wbf = Network::WrappedButterfly { d: 2, dd: 6 };
    let r = bound_report(&wbf, Mode::HalfDuplex, Period::Systolic(4));
    assert!((r.separator_coefficient.unwrap() - 2.0218).abs() < 5e-4);

    let db = Network::DeBruijn { d: 2, dd: 6 };
    let r = bound_report(&db, Mode::HalfDuplex, Period::Systolic(4));
    assert!((r.separator_coefficient.unwrap() - 1.8133).abs() < 5e-4);
}

/// Section 1's non-systolic spot values: g(WBF(2,D)) ≥ 1.9750·log n,
/// g(DB(2,D)) ≥ 1.5876·log n.
#[test]
fn section1_nonsystolic_spot_values() {
    let wbf = Network::WrappedButterfly { d: 2, dd: 6 };
    let r = bound_report(&wbf, Mode::HalfDuplex, Period::NonSystolic);
    assert!((r.separator_coefficient.unwrap() - 1.9750).abs() < 5e-4);

    let db = Network::DeBruijn { d: 2, dd: 6 };
    let r = bound_report(&db, Mode::HalfDuplex, Period::NonSystolic);
    assert!((r.separator_coefficient.unwrap() - 1.5876).abs() < 5e-4);
}

/// The broadcasting constants of [22, 2] quoted in the introduction.
#[test]
fn broadcasting_constants() {
    assert!((c_broadcast(2) - 1.4404).abs() < 1.2e-4);
    assert!((c_broadcast(3) - 1.1374).abs() < 1.2e-4);
    assert!((c_broadcast(4) - 1.0562).abs() < 1.2e-4);
}

/// Fig. 8's general row coincides with the broadcasting constants
/// (the Section 6 equivalence between full-duplex systolic gossip and
/// bounded-degree broadcast).
#[test]
fn full_duplex_equals_broadcast() {
    for s in 3..=10 {
        assert!(
            (e_full_duplex(s) - c_broadcast(s - 1)).abs() < 1e-9,
            "s={s}"
        );
    }
}

/// Structural facts of the rendered tables.
#[test]
fn tables_shape_and_stars() {
    let f4 = tables::fig4();
    assert_eq!(f4.rows.len(), 1);
    assert_eq!(f4.columns.len(), 7);

    let f5 = tables::fig5();
    assert_eq!(f5.rows.len(), 10);
    // DB(3,D) is fully starred for s >= 4 (the separator never improves
    // the general bound for degree 3 at these periods).
    let db3 = f5.rows.iter().find(|r| r.label == "DB(3,D)").unwrap();
    assert!(db3.cells[1..].iter().all(|c| c.starred));

    let f6 = tables::fig6();
    // Every e(∞) value beats or matches the general 1.4404, and every
    // value beats its own diameter coefficient for these families.
    for row in &f6.rows {
        assert!(row.cells[0].value >= 1.4404 - 1.2e-4, "{}", row.label);
        assert!(
            row.cells[0].value >= row.cells[1].value - 1e-9,
            "{}: bound below diameter",
            row.label
        );
    }

    let f8 = tables::fig8();
    assert!(f8.rows.len() >= 9); // general + 4 families × 2 degrees
}

/// The λ* fixpoints behind Fig. 4 solve the paper's equation
/// λ·√(p_{⌈s/2⌉}(λ))·√(p_{⌊s/2⌋}(λ)) = 1.
#[test]
fn lambda_fixpoints_satisfy_equation() {
    use systolic_gossip::sg_bounds::lambda_star;
    use systolic_gossip::sg_bounds::pfun::f_half_duplex;
    for s in 3..=12 {
        let l = lambda_star(BoundMode::HalfDuplex, Period::Systolic(s));
        assert!((f_half_duplex(s, l) - 1.0).abs() < 1e-9, "s={s}");
    }
}

/// The golden-ratio endpoints: λ*(∞) = 1/φ for half-duplex and 1/2 for
/// full-duplex.
#[test]
fn nonsystolic_fixpoints() {
    use systolic_gossip::sg_bounds::lambda_star;
    let l = lambda_star(BoundMode::HalfDuplex, Period::NonSystolic);
    assert!((l - 0.618_033_988_75).abs() < 1e-9);
    let l = lambda_star(BoundMode::FullDuplex, Period::NonSystolic);
    assert!((l - 0.5).abs() < 1e-9);
}
