//! Integration: the soundness loop. Every executable protocol we can
//! construct — hand-built, universal edge-coloring, randomized greedy —
//! must finish no earlier than every lower bound the theory produces for
//! it. This is the strongest end-to-end check of the reproduction: it
//! chains generators → protocols → simulator → delay matrices → norms →
//! bounds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use systolic_gossip::prelude::*;
use systolic_gossip::sg_protocol::builders::full_duplex_coloring_periodic;

fn assert_audit_sound(net: &Network, sp: &SystolicProtocol, budget: usize) {
    let a = audit(net, sp, budget, BoundOpts::default());
    assert!(a.validation.is_ok(), "{}: {:?}", net.name(), a.validation);
    assert!(
        a.measured_rounds.is_some(),
        "{}: protocol did not complete in {budget} rounds",
        net.name()
    );
    assert!(a.is_sound(), "soundness violation:\n{a}");
}

#[test]
fn hand_protocols_sound() {
    assert_audit_sound(&Network::Path { n: 17 }, &builders::path_rrll(17), 2000);
    assert_audit_sound(&Network::Cycle { n: 16 }, &builders::cycle_rrll(16), 2000);
    assert_audit_sound(
        &Network::Cycle { n: 16 },
        &builders::cycle_two_color_directed(16),
        2000,
    );
    assert_audit_sound(
        &Network::Hypercube { k: 6 },
        &builders::hypercube_sweep(6),
        100,
    );
    assert_audit_sound(
        &Network::Grid2d { w: 6, h: 5 },
        &builders::grid_traffic_light(6, 5),
        5000,
    );
    assert_audit_sound(
        &Network::Knodel { delta: 6, n: 64 },
        &builders::knodel_sweep(6, 64),
        1000,
    );
}

#[test]
fn universal_coloring_protocols_sound_on_hypercubic_networks() {
    let nets = [
        Network::WrappedButterfly { d: 2, dd: 4 },
        Network::Butterfly { d: 2, dd: 3 },
        Network::DeBruijn { d: 2, dd: 5 },
        Network::Kautz { d: 2, dd: 4 },
        Network::ShuffleExchange { dd: 5 },
        Network::CubeConnectedCycles { k: 4 },
        Network::DaryTree { d: 3, h: 3 },
        Network::Torus2d { w: 5, h: 5 },
    ];
    for net in nets {
        let g = net.build();
        assert_audit_sound(&net, &builders::edge_coloring_periodic(&g), 100_000);
    }
}

#[test]
fn full_duplex_coloring_protocols_sound() {
    for net in [
        Network::WrappedButterfly { d: 2, dd: 4 },
        Network::DeBruijn { d: 2, dd: 5 },
        Network::Grid2d { w: 5, h: 5 },
    ] {
        let g = net.build();
        assert_audit_sound(&net, &full_duplex_coloring_periodic(&g), 100_000);
    }
}

/// Greedy (non-systolic) protocols must respect the *non-systolic*
/// closed-form bound with its log-log slack, and the diameter bound.
#[test]
fn greedy_protocols_respect_nonsystolic_bounds() {
    let mut rng = StdRng::seed_from_u64(0x9055);
    for net in [
        Network::WrappedButterfly { d: 2, dd: 4 },
        Network::DeBruijn { d: 2, dd: 6 },
        Network::Kautz { d: 2, dd: 5 },
        Network::Hypercube { k: 6 },
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let out = greedy_gossip(&g, Mode::HalfDuplex, 100 * n, &mut rng).expect("completes");
        let t = out.rounds as f64;
        // General non-systolic half-duplex bound with the O(log log n)
        // allowance of the theorem.
        let bound = e_general_nonsystolic() * (n as f64).log2();
        let slack = 2.0 * t.max(2.0).log2();
        assert!(
            bound - slack <= t + 1e-9,
            "{}: greedy {t} beats the 1.4404·log n bound ({bound:.1} − {slack:.1})",
            net.name()
        );
        // And the hard diameter bound.
        let diam = systolic_gossip::sg_graphs::traversal::diameter(&g).unwrap() as f64;
        assert!(t >= diam);
    }
}

/// Theorem 4.1 on the concrete separator sets (Theorem 5.1 with measured
/// distance/size) stays below real executions.
#[test]
fn separator_protocol_bounds_sound() {
    for (net, dd_protocol) in [
        (Network::WrappedButterfly { d: 2, dd: 4 }, None),
        (Network::DeBruijn { d: 2, dd: 5 }, None),
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let sp = dd_protocol.unwrap_or_else(|| builders::edge_coloring_periodic(&g));
        let measured = systolic_gossip_time(&sp, n, 100_000).expect("completes") as f64;
        let sep = net.concrete_separator().expect("hypercubic family");
        let dist = sep.measured_distance(&g).expect("connected");
        let b = theorem_5_1_bound(&sp, dist, sep.min_size(), 16, BoundOpts::default())
            .expect("bound exists");
        assert!(
            b.rounds <= measured + 1e-9,
            "{}: Thm 5.1 gives {} > measured {measured}",
            net.name(),
            b.rounds
        );
    }
}

/// The s = 2 degenerate case: the directed-cycle protocol meets its
/// linear bound exactly (up to the parity round).
#[test]
fn s2_cycle_meets_linear_bound() {
    use systolic_gossip::sg_delay::bound::s2_lower_bound;
    for n in [8usize, 12, 20] {
        let sp = builders::cycle_two_color_directed(n);
        let bound = s2_lower_bound(&sp, n).unwrap();
        let measured = systolic_gossip_time(&sp, n, 4 * n).expect("completes");
        assert!(measured >= bound);
        assert!(measured <= bound + 1, "protocol should be near-optimal");
    }
}
