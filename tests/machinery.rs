//! Integration: the delay-matrix machinery on real protocols.
//!
//! Checks that the norm of the *actual* delay matrix of each protocol
//! never exceeds Lemma 4.3's (half-duplex) or Lemma 6.1's (full-duplex)
//! closed-form bound, that unrolled matrices converge monotonically to the
//! periodic fold, and that λ* from the concrete matrix is never smaller
//! than the closed-form fixpoint (the protocol can only be *slower* than
//! the best conceivable one).

use systolic_gossip::prelude::*;
use systolic_gossip::sg_delay::fullduplex::full_duplex_norm_bound;
use systolic_gossip::sg_delay::local::local_norm_bound;

const LAMBDAS: [f64; 5] = [0.2, 0.4, 0.618, 0.75, 0.9];

fn half_duplex_protocols() -> Vec<(String, SystolicProtocol)> {
    vec![
        ("path_rrll(12)".into(), builders::path_rrll(12)),
        ("cycle_rrll(12)".into(), builders::cycle_rrll(12)),
        (
            "coloring(WBF(2,3))".into(),
            builders::edge_coloring_periodic(&Network::WrappedButterfly { d: 2, dd: 3 }.build()),
        ),
        (
            "coloring(DB(2,4))".into(),
            builders::edge_coloring_periodic(&Network::DeBruijn { d: 2, dd: 4 }.build()),
        ),
        (
            "coloring(K(2,3))".into(),
            builders::edge_coloring_periodic(&Network::Kautz { d: 2, dd: 3 }.build()),
        ),
    ]
}

#[test]
fn lemma_4_3_dominates_real_half_duplex_delay_matrices() {
    for (name, sp) in half_duplex_protocols() {
        let dg = DelayDigraph::periodic(&sp);
        for &l in &LAMBDAS {
            let norm = dg.norm(l, Default::default());
            let bound = local_norm_bound(sp.s(), l);
            assert!(
                norm <= bound + 1e-7,
                "{name} s={} λ={l}: ‖M‖ = {norm} > bound {bound}",
                sp.s()
            );
        }
    }
}

#[test]
fn lemma_6_1_dominates_real_full_duplex_delay_matrices() {
    let protocols = vec![
        (
            "hypercube_sweep(4)".to_string(),
            builders::hypercube_sweep(4),
        ),
        ("knodel_sweep(4,16)".into(), builders::knodel_sweep(4, 16)),
        (
            "grid_traffic_light(4,4)".into(),
            builders::grid_traffic_light(4, 4),
        ),
        (
            "fd_coloring(DB(2,4))".into(),
            systolic_gossip::sg_protocol::builders::full_duplex_coloring_periodic(
                &Network::DeBruijn { d: 2, dd: 4 }.build(),
            ),
        ),
    ];
    for (name, sp) in protocols {
        let dg = DelayDigraph::periodic(&sp);
        for &l in &LAMBDAS {
            let norm = dg.norm(l, Default::default());
            let bound = full_duplex_norm_bound(sp.s(), l);
            assert!(
                norm <= bound + 1e-7,
                "{name} s={s} λ={l}: ‖M‖ = {norm} > bound {bound}",
                s = sp.s()
            );
        }
    }
}

#[test]
fn unrolled_norms_increase_to_periodic_everywhere() {
    for (name, sp) in half_duplex_protocols() {
        let l = 0.7;
        let periodic = DelayDigraph::periodic(&sp).norm(l, Default::default());
        let mut prev = 0.0;
        for periods in 1..=4 {
            let u = DelayDigraph::unrolled(&sp, periods * sp.s()).norm(l, Default::default());
            assert!(u >= prev - 1e-9, "{name}: not monotone");
            assert!(u <= periodic + 1e-7, "{name}: fold must dominate");
            prev = u;
        }
    }
}

#[test]
fn concrete_lambda_star_at_least_closed_form_fixpoint() {
    // Lemma 4.3: ‖M(λ)‖ ≤ f(s, λ), hence the concrete λ* (where the real
    // norm reaches 1) is ≥ the closed-form fixpoint (where the bound
    // reaches 1).
    use systolic_gossip::sg_bounds::lambda_star as closed_form_lambda;
    use systolic_gossip::sg_delay::bound::lambda_star as matrix_lambda;
    for (name, sp) in half_duplex_protocols() {
        let dg = DelayDigraph::periodic(&sp);
        if let Some(ls) = matrix_lambda(&dg, BoundOpts::default()) {
            let cf = closed_form_lambda(BoundMode::HalfDuplex, Period::Systolic(sp.s()));
            assert!(
                ls >= cf - 1e-6,
                "{name}: matrix λ* = {ls} below closed-form fixpoint {cf}"
            );
        }
    }
}

#[test]
fn path_protocol_meets_closed_form_exactly() {
    // The RRLL path protocol is "locally optimal": every interior vertex
    // has the balanced pattern (2,2), so its delay-matrix norm converges
    // to the closed form and λ* equals the Fig. 4 fixpoint for s = 4.
    use systolic_gossip::sg_bounds::lambda_star as closed_form_lambda;
    use systolic_gossip::sg_delay::bound::lambda_star as matrix_lambda;
    let sp = builders::path_rrll(24);
    let dg = DelayDigraph::periodic(&sp);
    let ls = matrix_lambda(&dg, BoundOpts::default()).expect("bound exists");
    let cf = closed_form_lambda(BoundMode::HalfDuplex, Period::Systolic(4));
    assert!(
        (ls - cf).abs() < 1e-3,
        "path λ* = {ls} should equal the s=4 fixpoint {cf}"
    );
}

#[test]
fn theorem_4_1_bounds_scale_with_log_n() {
    // Doubling n adds ~e·log2(2) = e rounds to the first-order bound.
    let b1 = theorem_4_1_bound(&builders::path_rrll(16), 16, BoundOpts::default()).unwrap();
    let b2 = theorem_4_1_bound(&builders::path_rrll(16), 32, BoundOpts::default()).unwrap();
    let delta = b2.first_order_rounds - b1.first_order_rounds;
    let e = 1.0 / b1.log_inv_lambda;
    assert!((delta - e).abs() < 1e-6, "delta = {delta}, e = {e}");
}
