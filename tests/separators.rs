//! Integration: Lemma 3.1's concrete separators verified by BFS on real
//! instances, across the whole family zoo.

use systolic_gossip::prelude::*;
use systolic_gossip::sg_graphs::codec::pow;
use systolic_gossip::sg_graphs::separator;

#[test]
fn butterfly_separator_exact_distance_2d() {
    for (d, dd) in [(2usize, 3usize), (2, 5), (3, 3)] {
        let net = Network::Butterfly { d, dd };
        let g = net.build();
        let sep = net.concrete_separator().unwrap();
        assert_eq!(
            sep.measured_distance(&g),
            Some(2 * dd as u32),
            "BF({d},{dd})"
        );
        // Size: balanced top-digit split keeps at least d^D/d per side.
        assert!(sep.min_size() >= pow(d, dd) / d);
    }
}

#[test]
fn wbf_directed_separator_exact_distance_2d_minus_1() {
    for (d, dd) in [(2usize, 3usize), (2, 5), (3, 3)] {
        let net = Network::WrappedButterflyDirected { d, dd };
        let g = net.build();
        let sep = net.concrete_separator().unwrap();
        assert_eq!(
            sep.measured_distance(&g),
            Some((2 * dd - 1) as u32),
            "WBF->({d},{dd})"
        );
    }
}

#[test]
fn wbf_undirected_separator_three_halves_regime() {
    // dist ≈ 3D/2 − O(√D): the concrete claim must hold at every size,
    // and at the larger instances (where the O(√D) slack stops dominating)
    // the measured distance reaches at least D.
    let mut measured_at = Vec::new();
    for (d, dd) in [(2usize, 6usize), (2, 9), (2, 12)] {
        let net = Network::WrappedButterfly { d, dd };
        let g = net.build();
        let sep = net.concrete_separator().unwrap();
        let measured = sep.measured_distance(&g).expect("nonempty") as usize;
        assert!(
            measured >= sep.claimed_distance as usize,
            "WBF({d},{dd}): {measured} < {}",
            sep.claimed_distance
        );
        measured_at.push((dd, measured));
    }
    // Monotone growth with D, and ≥ D once D is large enough for the
    // covering-tour argument (measured: 5 at D=6, 9 at D=9, 12 at D=12).
    assert!(measured_at.windows(2).all(|w| w[0].1 < w[1].1));
    for &(dd, m) in &measured_at[1..] {
        assert!(m >= dd, "WBF(2,{dd}): distance {m} below D");
    }
}

#[test]
fn debruijn_kautz_directed_separators_exact_d() {
    for dd in [6usize, 9] {
        let net = Network::DeBruijnDirected { d: 2, dd };
        let sep = net.concrete_separator().unwrap();
        assert_eq!(sep.measured_distance(&net.build()), Some(dd as u32));
    }
    for dd in [4usize, 6] {
        let net = Network::KautzDirected { d: 2, dd };
        let sep = net.concrete_separator().unwrap();
        assert_eq!(sep.measured_distance(&net.build()), Some(dd as u32));
    }
}

#[test]
fn debruijn_kautz_undirected_staircase_separators() {
    for dd in [9usize, 12] {
        let net = Network::DeBruijn { d: 2, dd };
        let sep = net.concrete_separator().unwrap();
        let measured = sep.measured_distance(&net.build()).expect("nonempty");
        assert!(
            measured >= sep.claimed_distance,
            "DB(2,{dd}): {measured} < {}",
            sep.claimed_distance
        );
    }
    for dd in [6usize, 8] {
        let net = Network::Kautz { d: 2, dd };
        let sep = net.concrete_separator().unwrap();
        let measured = sep.measured_distance(&net.build()).expect("nonempty");
        assert!(
            measured >= sep.claimed_distance,
            "K(2,{dd}): {measured} < {}",
            sep.claimed_distance
        );
    }
}

#[test]
fn separator_sizes_in_the_lemma_regime() {
    // min(|V1|, |V2|) ≥ 2^{αℓ·log n − o(log n)}: concretely, at least
    // d^{D − #constrained positions} for the word families.
    let (d, dd) = (2usize, 9usize);
    let db = separator::concrete_de_bruijn(d, dd);
    let m = separator::constrained_positions(dd).len();
    assert!(db.min_size() >= pow(d, dd - m.max(3)));

    // The ⟨α, ℓ⟩ parameters themselves satisfy Definition 3.5's α·ℓ ≤ 1.
    for params in [
        separator::params_butterfly(2),
        separator::params_wbf_directed(3),
        separator::params_wbf_undirected(2),
        separator::params_de_bruijn(4),
        separator::params_kautz(2),
    ] {
        assert!(params.product() <= 1.0 + 1e-12);
    }
}

#[test]
fn separator_sets_are_disjoint_and_valid() {
    for net in [
        Network::Butterfly { d: 2, dd: 4 },
        Network::WrappedButterfly { d: 2, dd: 4 },
        Network::WrappedButterflyDirected { d: 2, dd: 4 },
        Network::DeBruijn { d: 2, dd: 6 },
        Network::DeBruijnDirected { d: 2, dd: 6 },
        Network::Kautz { d: 2, dd: 5 },
        Network::KautzDirected { d: 2, dd: 5 },
    ] {
        let g = net.build();
        let sep = net.concrete_separator().unwrap();
        let n = g.vertex_count();
        let mut seen = vec![false; n];
        for &v in &sep.v1 {
            assert!(v < n, "{}: vertex out of range", net.name());
            seen[v] = true;
        }
        for &v in &sep.v2 {
            assert!(v < n);
            assert!(!seen[v], "{}: V1 and V2 overlap at {v}", net.name());
        }
        assert!(!sep.v1.is_empty() && !sep.v2.is_empty());
    }
}
