//! Integration: the "cost of systolization" question that motivated the
//! paper ([8]: how much must be paid for making gossip systolic?).
//!
//! On paths, [8] proved systolic gossip is strictly more expensive than
//! unrestricted gossip. We reproduce the phenomenon executably: the
//! 4-systolic RRLL protocol takes ~2n rounds while the non-systolic
//! two-sweep takes 2(n−1) — and for small periods the *bounds* already
//! separate: e(3)·log n > e(4)·log n > ⋯ > 1.4404·log n.

use systolic_gossip::prelude::*;
use systolic_gossip::sg_protocol::builders::path_two_sweep;
use systolic_gossip::sg_sim::engine::run_protocol;

#[test]
fn path_systolic_vs_nonsystolic() {
    for n in [8usize, 16, 24] {
        let systolic = builders::path_rrll(n);
        let t_sys = systolic_gossip_time(&systolic, n, 100 * n).expect("completes");

        let two_sweep = path_two_sweep(n);
        let res = run_protocol(&two_sweep, n, false);
        let t_seq = res.completed_at.expect("completes");

        // The sequential two-sweep finishes in exactly 2(n−1) rounds.
        assert_eq!(t_seq, 2 * (n - 1), "n={n}");
        // The systolic protocol is at least as slow (the cost of
        // periodicity on a path).
        assert!(
            t_sys >= t_seq,
            "n={n}: systolic {t_sys} beat non-systolic {t_seq}"
        );
        // …but within a constant factor (it is a good protocol).
        assert!(t_sys <= 2 * t_seq + 8, "n={n}: systolic too slow: {t_sys}");
    }
}

#[test]
fn bounds_separate_by_period() {
    // The paper's core qualitative finding: smaller periods cost more.
    // e(3) > e(4) > e(5) > ... > 1.4404, strictly.
    let mut prev = f64::INFINITY;
    for s in 3..=10 {
        let e = e_general(s);
        assert!(e < prev, "e({s}) must strictly decrease");
        prev = e;
    }
    assert!(prev > e_general_nonsystolic());
}

#[test]
fn period_3_is_qualitatively_more_expensive() {
    // Short periods are provably costly. Executable illustration in the
    // full-duplex model: the dimension sweep on Q_k gossips with
    // coefficient exactly 1.0 (k rounds, n = 2^k), while ANY 3-systolic
    // full-duplex protocol on any network needs coefficient
    // e_fd(3) = 1.4404. So no period-3 protocol can match the period-k
    // sweep asymptotically.
    let k = 8usize;
    let sp = builders::hypercube_sweep(k);
    let n = 1usize << k;
    let measured = systolic_gossip_time(&sp, n, 10 * k).expect("completes") as f64;
    let measured_coeff = measured / (n as f64).log2();
    assert!(
        (measured_coeff - 1.0).abs() < 1e-9,
        "sweep coefficient is 1.0"
    );
    let s3_coeff = e_full_duplex(3);
    assert!(
        measured_coeff < s3_coeff - 0.4,
        "period-k sweep ({measured_coeff:.3}) must beat the s=3 coefficient ({s3_coeff:.4})"
    );
    // In the half-duplex model the same separation holds against e(3):
    // the paper's 2.8808 exceeds even the *upper* bounds of [24]
    // (2.0–2.5·log n for DB/WBF with larger constant periods).
    assert!(e_general(3) > 2.5);
}

#[test]
fn wbf_structured_protocol_vs_bounds() {
    // The structured WBF shift protocol (period D·d) vs the paper's
    // separator bound for its period.
    let (d, dd) = (2usize, 4usize);
    let net = Network::WrappedButterfly { d, dd };
    let g = net.build();
    let n = g.vertex_count();
    let sp = net.reference_protocol().unwrap();
    assert_eq!(sp.s(), dd * d);
    let measured = systolic_gossip_time(&sp, n, 10_000).expect("completes") as f64;
    let report = bound_report(&net, Mode::HalfDuplex, Period::Systolic(sp.s()));
    // Soundness with the o(log n) allowance of Theorem 5.1.
    let slack = 2.0 * measured.max(2.0).log2();
    assert!(
        report.separator_rounds.unwrap() - slack <= measured,
        "measured {measured} vs separator bound {:?}",
        report.separator_rounds
    );
    // The delay-matrix bound (exact, no slack) must hold strictly.
    if let Some(b) = theorem_4_1_bound(&sp, n, BoundOpts::default()) {
        assert!(b.rounds <= measured);
    }
}
