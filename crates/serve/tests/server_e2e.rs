//! End-to-end tests of the daemon over real sockets: single-flight
//! across connections, malformed input never killing a connection,
//! overload shedding at the in-flight cap, graceful shutdown draining
//! in-flight queries, and the idle read timeout.

use sg_serve::json::{self, Json};
use sg_serve::server::{Server, ServerConfig};
use sg_serve::Client;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn test_server(tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        read_timeout: Duration::from_secs(5),
        shutdown_grace: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    Server::bind(cfg).expect("bind on 127.0.0.1:0")
}

fn ok_of(line: &str) -> bool {
    json::parse(line)
        .expect("reply is valid JSON")
        .get("ok")
        .and_then(Json::as_bool)
        .expect("reply has `ok`")
}

fn int_of(line: &str, key: &str) -> i64 {
    json::parse(line)
        .expect("reply is valid JSON")
        .get(key)
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("reply has int `{key}`: {line}"))
}

fn str_of(line: &str, key: &str) -> String {
    json::parse(line)
        .expect("reply is valid JSON")
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("reply has str `{key}`: {line}"))
        .to_string()
}

/// N connections issue the same bound query simultaneously; the engine
/// computes once, the oracle computes once, everyone gets the answer —
/// the batch single-flight guarantee (`oracle_batch.rs`) extended
/// end-to-end over sockets.
#[test]
fn identical_concurrent_queries_share_one_compute() {
    const CONNS: usize = 16;
    let server = test_server(|_| {});
    let addr = server.local_addr();
    let barrier = Barrier::new(CONNS);
    let answers: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONNS)
            .map(|_| {
                s.spawn(|| {
                    let mut c = Client::connect_retry(addr, 10).expect("connect");
                    barrier.wait();
                    c.roundtrip(r#"{"op":"bound","net":"hypercube:5","mode":"fd","period":4}"#)
                        .expect("roundtrip")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for line in &answers {
        assert!(ok_of(line), "every query answered ok: {line}");
        assert_eq!(
            int_of(line, "floor_rounds"),
            int_of(&answers[0], "floor_rounds")
        );
    }
    let mut c = Client::connect(addr).expect("connect");
    let stats = c.roundtrip(r#"{"op":"stats"}"#).expect("stats");
    assert_eq!(int_of(&stats, "singleflight_lookups"), CONNS as i64);
    assert_eq!(
        int_of(&stats, "singleflight_computes"),
        1,
        "one compute for {CONNS} identical queries: {stats}"
    );
    assert_eq!(
        int_of(&stats, "oracle_computes"),
        1,
        "the oracle below also computed once: {stats}"
    );
    server.handle().shutdown();
    assert!(server.join().drained);
}

/// A connection that sends garbage keeps working: every malformed line
/// gets a structured error, and a valid query afterwards succeeds.
#[test]
fn malformed_lines_never_kill_the_connection() {
    let server = test_server(|_| {});
    let addr = server.local_addr();
    let mut c = Client::connect(addr).expect("connect");
    let bad_lines = [
        r#"{"op":"bound","net":"hyperc"#, // truncated JSON
        "not json at all",                // not JSON
        r#"[1,2,3]"#,                     // not an object
        r#"{"op":"launch_missiles"}"#,    // unknown op
        r#"{"op":"bound","net":"path:8","mode":"hd","period":1}"#, // period too small
        r#"{"op":"bound","net":"path:8","mode":"hd","period":999}"#, // period too large
        r#"{"op":"bound","net":"blorp:8","mode":"hd","period":4}"#, // unknown family
        r#"{"op":"bound","mode":"hd","period":4}"#, // missing net
        r#"{"op":"bound","net":"path:8","period":4}"#, // missing mode
        r#"{"op":"bound","net":"dbdir:2,4","mode":"fd","period":4}"#, // directed net, fd mode
        r#"{"op":"sleep","ms":50}"#,      // sleep not enabled
    ];
    for bad in bad_lines {
        let reply = c.roundtrip(bad).expect("connection still alive");
        assert!(!ok_of(&reply), "`{bad}` must error: {reply}");
        assert!(
            !str_of(&reply, "error").is_empty(),
            "error text present: {reply}"
        );
    }
    // Blank lines are ignored, pipelined requests all answer, ids echo.
    c.send_raw(b"\n   \n").expect("blank lines");
    c.send_line(r#"{"op":"ping","id":7}"#).expect("send");
    c.send_line(r#"{"op":"bound","net":"cycle:8","mode":"fd","period":3,"id":8}"#)
        .expect("send");
    let pong = c.recv_line().expect("pong");
    assert!(ok_of(&pong));
    assert_eq!(int_of(&pong, "id"), 7);
    let bound = c.recv_line().expect("bound");
    assert!(ok_of(&bound), "still serving after garbage: {bound}");
    assert_eq!(int_of(&bound, "id"), 8);
    server.handle().shutdown();
    assert!(server.join().drained);
}

/// With a cap of 1 in-flight query, a second concurrent query is shed
/// with `"overloaded"` — and `ping` still answers (gate bypass).
#[test]
fn overload_sheds_with_explicit_error() {
    let server = test_server(|cfg| {
        cfg.max_inflight = 1;
        cfg.enable_sleep_op = true;
    });
    let addr = server.local_addr();
    let shed = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // One slow query occupies the only slot…
        let slow = s.spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            c.roundtrip(r#"{"op":"sleep","ms":1500}"#).expect("sleep")
        });
        std::thread::sleep(Duration::from_millis(300));
        // …so concurrent queries shed, while ping bypasses the gate.
        for _ in 0..4 {
            let mut c = Client::connect(addr).expect("connect");
            let reply = c
                .roundtrip(r#"{"op":"bound","net":"cycle:8","mode":"fd","period":3}"#)
                .expect("reply");
            if ok_of(&reply) {
                served.fetch_add(1, Ordering::Relaxed);
            } else {
                assert_eq!(str_of(&reply, "error"), "overloaded");
                shed.fetch_add(1, Ordering::Relaxed);
            }
            let pong = c.roundtrip(r#"{"op":"ping"}"#).expect("ping under load");
            assert!(ok_of(&pong), "ping bypasses the gate: {pong}");
        }
        assert!(ok_of(&slow.join().unwrap()));
    });
    assert!(
        shed.load(Ordering::Relaxed) >= 1,
        "at least one query shed at cap 1"
    );
    server.handle().shutdown();
    let report = server.join();
    assert!(report.drained);
    assert!(report.shed >= 1, "report counts shed queries");
}

/// Shutdown during an in-flight query: the query finishes, its reply is
/// flushed, and the report says drained.
#[test]
fn graceful_shutdown_drains_inflight_queries() {
    let server = test_server(|cfg| {
        cfg.enable_sleep_op = true;
    });
    let addr = server.local_addr();
    let handle = server.handle();
    let reply = std::thread::scope(|s| {
        let inflight = s.spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            c.roundtrip(r#"{"op":"sleep","ms":1200}"#).expect("reply")
        });
        // Let the query start, then pull the plug.
        std::thread::sleep(Duration::from_millis(300));
        handle.shutdown();
        inflight.join().unwrap()
    });
    assert!(ok_of(&reply), "in-flight query still answered: {reply}");
    assert_eq!(int_of(&reply, "slept_ms"), 1200);
    let report = server.join();
    assert!(report.drained, "drain confirmed: {report:?}");
    // New connections are no longer served.
    assert!(
        Client::connect(addr)
            .and_then(|mut c| c.roundtrip(r#"{"op":"ping"}"#))
            .is_err(),
        "listener is gone after shutdown"
    );
}

/// A silent peer is disconnected after the read timeout; a line longer
/// than the cap is refused with an error before the close.
#[test]
fn idle_and_oversized_connections_are_closed() {
    let server = test_server(|cfg| {
        cfg.read_timeout = Duration::from_millis(600);
    });
    let addr = server.local_addr();

    let mut idle = Client::connect(addr).expect("connect");
    idle.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let t0 = Instant::now();
    assert!(
        idle.recv_line().is_err(),
        "idle connection closed by the server"
    );
    assert!(
        t0.elapsed() >= Duration::from_millis(500),
        "not closed before the timeout"
    );

    let mut big = Client::connect(addr).expect("connect");
    big.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let blob = vec![b'x'; 80 * 1024]; // 80KiB, no newline
    big.send_raw(&blob).expect("send oversized line");
    let reply = big.recv_line().expect("error reply before close");
    assert!(!ok_of(&reply));
    assert!(str_of(&reply, "error").contains("64KiB"), "{reply}");
    assert!(big.recv_line().is_err(), "connection closed after refusal");

    server.handle().shutdown();
    assert!(server.join().drained);
}
