//! Property tests of the JSONL wire protocol: every request type
//! serializes to a line that parses back to an equal request, network
//! specs invert across all 18 families at arbitrary parameters, and
//! reply framing survives hostile message content.

use proptest::prelude::*;
use sg_serve::json::{self, Json};
use sg_serve::protocol::{
    error_reply, net_spec, ok_reply, Query, Request, MAX_ITERATIONS, MAX_PERIOD, MAX_RESTARTS,
};
use systolic_gossip::sg_bounds::pfun::Period;
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::{Network, Row};

/// One of the 18 families, parameterized by two small draws.
fn network(fam: usize, a: usize, b: usize) -> Network {
    match fam % 18 {
        0 => Network::Path { n: a },
        1 => Network::Cycle { n: a },
        2 => Network::Complete { n: a },
        3 => Network::DaryTree { d: a, h: b },
        4 => Network::Grid2d { w: a, h: b },
        5 => Network::Torus2d { w: a, h: b },
        6 => Network::Hypercube { k: a },
        7 => Network::Butterfly { d: a, dd: b },
        8 => Network::WrappedButterfly { d: a, dd: b },
        9 => Network::WrappedButterflyDirected { d: a, dd: b },
        10 => Network::DeBruijn { d: a, dd: b },
        11 => Network::DeBruijnDirected { d: a, dd: b },
        12 => Network::Kautz { d: a, dd: b },
        13 => Network::KautzDirected { d: a, dd: b },
        14 => Network::ShuffleExchange { dd: b },
        15 => Network::CubeConnectedCycles { k: a },
        16 => Network::Knodel { delta: a, n: 2 * b },
        17 => Network::RandomRegular {
            n: 2 * a,
            d: 3,
            seed: b as u64,
        },
        _ => unreachable!(),
    }
}

/// A mode compatible with the network (directed networks only run in
/// directed mode — [`Request::parse`] enforces exactly that).
fn mode_for(net: &Network, m: usize) -> Mode {
    if net.is_directed() {
        Mode::Directed
    } else {
        [Mode::Directed, Mode::HalfDuplex, Mode::FullDuplex][m % 3]
    }
}

/// Builds one request from raw draws; `op` selects the query type.
#[allow(clippy::too_many_arguments)]
fn request(
    op: usize,
    id: i64,
    fam: usize,
    a: usize,
    b: usize,
    m: usize,
    s: usize,
    knobs: (u64, usize, usize),
) -> Request {
    let net = network(fam, a, b);
    let mode = mode_for(&net, m);
    let (seed, restarts, iterations) = knobs;
    let query = match op % 7 {
        0 => Query::Ping,
        1 => Query::Stats,
        2 => Query::Bound {
            net,
            mode,
            period: if s == MAX_PERIOD {
                Period::NonSystolic
            } else {
                Period::Systolic(s)
            },
        },
        3 => Query::Search {
            net,
            mode,
            period: s.min(MAX_PERIOD - 1),
            seed,
            restarts,
            iterations,
        },
        4 => Query::Enumerate {
            net,
            mode,
            period: s.min(MAX_PERIOD - 1),
        },
        5 => Query::Certificate { net, mode },
        6 => Query::Sleep { ms: seed % 10_001 },
        _ => unreachable!(),
    };
    // Half the draws carry an id (negative ids included).
    let id = (id % 2 == 0).then_some(id / 2);
    Request { id, query }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse(to_line(r)) == r` for every request shape.
    #[test]
    fn request_wire_form_round_trips(
        op in 0usize..7,
        id in -10_000i64..10_000,
        fam in 0usize..18,
        a in 1usize..9,
        b in 1usize..9,
        m in 0usize..3,
        s in 2usize..=MAX_PERIOD,
        seed in 0u64..1_000_000,
        restarts in 1usize..=MAX_RESTARTS,
        iterations in 1usize..=MAX_ITERATIONS,
    ) {
        let req = request(op, id, fam, a, b, m, s, (seed, restarts, iterations));
        let line = req.to_line();
        prop_assert_eq!(Request::parse(&line), Ok(req), "line: {}", line);
    }

    /// `from_spec(net_spec(net)) == net` across all families and params.
    #[test]
    fn net_specs_invert(fam in 0usize..18, a in 1usize..50, b in 1usize..50) {
        let net = network(fam, a, b);
        let spec = net_spec(&net);
        prop_assert_eq!(Network::from_spec(&spec), Ok(net), "spec: {}", spec);
    }

    /// Error replies frame hostile message content losslessly: quotes,
    /// backslashes, control bytes, non-ASCII.
    #[test]
    fn error_replies_survive_hostile_messages(
        codes in proptest::collection::vec(0u32..0x500, 0..40),
        id in -500i64..500,
        with_id in 0usize..2,
    ) {
        let msg: String = codes
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        let id = (with_id == 1).then_some(id);
        let line = error_reply(id, &msg);
        let v = json::parse(&line).expect("reply is valid JSON");
        prop_assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        prop_assert_eq!(v.get("error").and_then(Json::as_str), Some(msg.as_str()));
        prop_assert_eq!(v.get("id").and_then(Json::as_int), id);
    }

    /// Ok replies carry the body fields and echo the id.
    #[test]
    fn ok_replies_echo_bodies_and_ids(
        n in 1usize..100_000,
        f in -1.0e6f64..1.0e6,
        id in -500i64..500,
    ) {
        let body = Row::new()
            .with("op", "bound")
            .with("n", n)
            .with("asymptotic_rounds", f)
            .with("feasible", true);
        let line = ok_reply(Some(id), &body);
        let v = json::parse(&line).expect("reply is valid JSON");
        prop_assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        prop_assert_eq!(v.get("op").and_then(Json::as_str), Some("bound"));
        prop_assert_eq!(v.get("n").and_then(Json::as_int), Some(n as i64));
        prop_assert_eq!(v.get("feasible").and_then(Json::as_bool), Some(true));
        prop_assert_eq!(v.get("id").and_then(Json::as_int), Some(id));
        let back = v.get("asymptotic_rounds").and_then(Json::as_f64).unwrap();
        prop_assert!((back - f).abs() <= 1e-9 * f.abs().max(1.0), "{} vs {}", back, f);
    }
}
