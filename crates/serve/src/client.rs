//! A small blocking JSONL client — what the e2e tests, the load
//! generator and any scripted consumer speak through. One request line
//! out, one reply line back.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client with its own receive buffer.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects once.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::with_capacity(1024),
        })
    }

    /// Connects with retries — the load generator opens thousands of
    /// sockets and a freshly-started server (or a briefly-full accept
    /// queue) refuses some of them transiently.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        attempts: usize,
    ) -> std::io::Result<Client> {
        let mut last = None;
        for i in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(10 * (i as u64 + 1)));
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Caps how long [`Client::recv_line`] blocks.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request line (newline appended).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.stream.write_all(framed.as_bytes())
    }

    /// Sends raw bytes exactly as given — the malformed-input tests
    /// need full control of the framing.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Blocks for the next reply line (without its newline).
    /// `ErrorKind::UnexpectedEof` when the server closed first.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line[..pos]).into_owned());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(k) => self.buf.extend_from_slice(&chunk[..k]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// One full round trip.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }
}
