//! The `sg-serve` daemon binary: bind, serve, drain on SIGTERM/SIGINT.
//!
//! ```text
//! sg-serve [--addr HOST:PORT] [--max-inflight N]
//!          [--read-timeout-ms MS] [--write-timeout-ms MS]
//!          [--shutdown-grace-ms MS]
//!          [--max-bound-n N] [--max-sim-n N] [--max-enumerate-n N]
//! ```
//!
//! Exits `0` iff shutdown drained every in-flight query within the
//! grace period.

use sg_serve::engine::EngineConfig;
use sg_serve::server::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the watcher thread. A signal
/// handler may only do async-signal-safe work, and a relaxed store is.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    STOP.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) through the
/// C `signal` function std already links — the workspace is offline, so
/// no `libc` crate.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: sg-serve [--addr HOST:PORT] [--max-inflight N] \
         [--read-timeout-ms MS] [--write-timeout-ms MS] [--shutdown-grace-ms MS] \
         [--max-bound-n N] [--max-sim-n N] [--max-enumerate-n N]"
    );
    std::process::exit(2)
}

/// The value of `args[*i + 1]`, advancing past it.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i).map(String::as_str).unwrap_or_else(|| {
        eprintln!("sg-serve: {flag} needs a value");
        usage()
    })
}

/// Same, parsed as a number.
fn flag_num(args: &[String], i: &mut usize, flag: &str) -> u64 {
    let v = flag_value(args, i, flag);
    v.parse().unwrap_or_else(|_| {
        eprintln!("sg-serve: {flag} needs a number, got `{v}`");
        usage()
    })
}

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7411".to_string(),
        ..ServerConfig::default()
    };
    let mut engine = EngineConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let f = flag.as_str();
        match f {
            "--addr" => cfg.addr = flag_value(&args, &mut i, f).to_string(),
            "--max-inflight" => cfg.max_inflight = flag_num(&args, &mut i, f) as usize,
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(flag_num(&args, &mut i, f))
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = Duration::from_millis(flag_num(&args, &mut i, f))
            }
            "--shutdown-grace-ms" => {
                cfg.shutdown_grace = Duration::from_millis(flag_num(&args, &mut i, f))
            }
            "--max-bound-n" => engine.max_bound_n = flag_num(&args, &mut i, f) as usize,
            "--max-sim-n" => engine.max_sim_n = flag_num(&args, &mut i, f) as usize,
            "--max-enumerate-n" => engine.max_enumerate_n = flag_num(&args, &mut i, f) as usize,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("sg-serve: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    cfg.engine = engine;

    install_signal_handlers();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sg-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("sg-serve listening on {}", server.local_addr());

    // Watcher: turn the (async-signal-safe) flag into a graceful
    // shutdown request.
    let handle = server.handle();
    std::thread::spawn(move || {
        while !STOP.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.shutdown();
    });

    let report = server.join();
    println!(
        "sg-serve: {} connections, {} served, {} errors, {} shed, drained: {}",
        report.connections, report.served, report.errors, report.shed, report.drained
    );
    std::process::exit(if report.drained { 0 } else { 1 });
}
