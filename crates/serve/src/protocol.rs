//! The JSONL wire protocol: one request object per line in, one reply
//! object per line out.
//!
//! Requests are flat JSON objects with an `"op"` discriminator:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"bound","net":"hypercube:6","mode":"fd","period":4}
//! {"op":"bound","net":"db:2,6","mode":"hd","period":"inf"}
//! {"op":"search","net":"cycle:8","mode":"fd","period":3,"seed":7,"restarts":4,"iterations":300}
//! {"op":"enumerate","net":"knodel:3,8","mode":"fd","period":3}
//! {"op":"certificate","net":"path:10","mode":"hd"}
//! {"op":"execute","net":"hypercube:3","mode":"fd"}
//! ```
//!
//! `net` takes the same `family:params` specs as `sg-bench sweep --net`
//! ([`Network::from_spec`]); `mode` takes the paper's mode names (or the
//! `hd` / `fd` shorthands); an optional integer `"id"` is echoed in the
//! reply so clients may pipeline. Replies always carry `"ok"`: `true`
//! with the result fields, or `false` with a human-readable `"error"`.
//! A malformed line never kills the connection — the reply describes the
//! problem and the next line is parsed fresh.

use crate::json::{self, Json};
use systolic_gossip::sg_bounds::pfun::Period;
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::{to_json_line, Network, Row};

/// Largest systolic period a request may name. Bound coefficients,
/// searches and enumerations are all parameterized by the period; the
/// cap keeps one request from demanding absurd schedule spaces.
pub const MAX_PERIOD: usize = 32;

/// Hard caps on the search-effort knobs a request may set.
pub const MAX_RESTARTS: usize = 64;
/// See [`MAX_RESTARTS`].
pub const MAX_ITERATIONS: usize = 100_000;

/// Default annealing restarts when the request does not say.
pub const DEFAULT_RESTARTS: usize = 4;
/// Default annealing iterations when the request does not say.
pub const DEFAULT_ITERATIONS: usize = 300;

/// One query, already validated.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Liveness probe, answered without touching the engine.
    Ping,
    /// Server + cache + single-flight counters.
    Stats,
    /// Lower bounds for `(net, mode, period)` through the shared oracle.
    Bound {
        /// The network.
        net: Network,
        /// Communication mode.
        mode: Mode,
        /// Systolic period, or the non-systolic limit (`"period":"inf"`).
        period: Period,
    },
    /// Annealing search for a good period-`period` schedule, certified.
    Search {
        /// The network.
        net: Network,
        /// Communication mode.
        mode: Mode,
        /// Exact systolic period to search.
        period: usize,
        /// Master seed (deterministic per seed).
        seed: u64,
        /// Annealing restarts (`1..=`[`MAX_RESTARTS`]).
        restarts: usize,
        /// Iterations per chain (`1..=`[`MAX_ITERATIONS`]).
        iterations: usize,
    },
    /// Exact branch-and-bound enumeration at one period.
    Enumerate {
        /// The network.
        net: Network,
        /// Communication mode.
        mode: Mode,
        /// Exact systolic period to enumerate.
        period: usize,
    },
    /// Audit the network's deterministic reference protocol: measured
    /// gossip time vs the Theorem 4.1 delay-matrix bound and the floors.
    Certificate {
        /// The network.
        net: Network,
        /// Communication mode.
        mode: Mode,
    },
    /// Run the network's deterministic protocol as a fault-free
    /// message-passing node fleet (sg-exec) and check the completion
    /// round against the lockstep simulator. Fault injection stays in
    /// `sg-bench execute` — a shared daemon only serves the
    /// deterministic, memoizable question.
    Execute {
        /// The network.
        net: Network,
        /// Communication mode.
        mode: Mode,
    },
    /// Occupy one in-flight slot for `ms` milliseconds, then reply.
    /// Only honored when the server enables it — test instrumentation
    /// for backpressure and drain behavior, never on by default.
    Sleep {
        /// How long to hold the slot (capped at 10 000 ms).
        ms: u64,
    },
}

/// One parsed request: the query plus the optional client-chosen id.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the reply when present.
    pub id: Option<i64>,
    /// What to do.
    pub query: Query,
}

impl Request {
    /// Convenience constructor with no id.
    pub fn new(query: Query) -> Self {
        Self { id: None, query }
    }

    /// Renders the request as its one-line JSON wire form.
    /// [`Request::parse`] of the result gives back an equal request —
    /// the round-trip the property tests pin.
    pub fn to_line(&self) -> String {
        let mut row = Row::new();
        match &self.query {
            Query::Ping => row = row.with("op", "ping"),
            Query::Stats => row = row.with("op", "stats"),
            Query::Bound { net, mode, period } => {
                row = row
                    .with("op", "bound")
                    .with("net", net_spec(net))
                    .with("mode", mode.name());
                row = match period {
                    Period::Systolic(s) => row.with("period", *s),
                    Period::NonSystolic => row.with("period", "inf"),
                };
            }
            Query::Search {
                net,
                mode,
                period,
                seed,
                restarts,
                iterations,
            } => {
                row = row
                    .with("op", "search")
                    .with("net", net_spec(net))
                    .with("mode", mode.name())
                    .with("period", *period)
                    .with("seed", i64::try_from(*seed).unwrap_or(i64::MAX))
                    .with("restarts", *restarts)
                    .with("iterations", *iterations);
            }
            Query::Enumerate { net, mode, period } => {
                row = row
                    .with("op", "enumerate")
                    .with("net", net_spec(net))
                    .with("mode", mode.name())
                    .with("period", *period);
            }
            Query::Certificate { net, mode } => {
                row = row
                    .with("op", "certificate")
                    .with("net", net_spec(net))
                    .with("mode", mode.name());
            }
            Query::Execute { net, mode } => {
                row = row
                    .with("op", "execute")
                    .with("net", net_spec(net))
                    .with("mode", mode.name());
            }
            Query::Sleep { ms } => {
                row = row
                    .with("op", "sleep")
                    .with("ms", i64::try_from(*ms).unwrap_or(i64::MAX));
            }
        }
        if let Some(id) = self.id {
            row = row.with("id", id);
        }
        to_json_line(&row)
    }

    /// Parses one request line. Every failure is a description suitable
    /// for an `{"ok":false,"error":…}` reply; none of them are fatal to
    /// the connection.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let Json::Obj(_) = v else {
            return Err("request must be a JSON object".into());
        };
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(j) => Some(j.as_int().ok_or("`id` must be an integer")?),
        };
        let op = v
            .get("op")
            .ok_or("missing `op`")?
            .as_str()
            .ok_or("`op` must be a string")?;
        let query = match op {
            "ping" => Query::Ping,
            "stats" => Query::Stats,
            "bound" => {
                let (net, mode) = net_and_mode(&v)?;
                Query::Bound {
                    net,
                    mode,
                    period: parse_period_or_inf(&v)?,
                }
            }
            "search" => {
                let (net, mode) = net_and_mode(&v)?;
                Query::Search {
                    net,
                    mode,
                    period: parse_finite_period(&v)?,
                    seed: match v.get("seed") {
                        None | Some(Json::Null) => 1997,
                        Some(j) => {
                            let s = j.as_int().ok_or("`seed` must be an integer")?;
                            u64::try_from(s).map_err(|_| "`seed` must be non-negative")?
                        }
                    },
                    restarts: bounded_knob(&v, "restarts", DEFAULT_RESTARTS, MAX_RESTARTS)?,
                    iterations: bounded_knob(&v, "iterations", DEFAULT_ITERATIONS, MAX_ITERATIONS)?,
                }
            }
            "enumerate" => {
                let (net, mode) = net_and_mode(&v)?;
                Query::Enumerate {
                    net,
                    mode,
                    period: parse_finite_period(&v)?,
                }
            }
            "certificate" => {
                let (net, mode) = net_and_mode(&v)?;
                Query::Certificate { net, mode }
            }
            "execute" => {
                let (net, mode) = net_and_mode(&v)?;
                Query::Execute { net, mode }
            }
            "sleep" => {
                let ms = match v.get("ms") {
                    None | Some(Json::Null) => 0,
                    Some(j) => {
                        let ms = j.as_int().ok_or("`ms` must be an integer")?;
                        u64::try_from(ms).map_err(|_| "`ms` must be non-negative")?
                    }
                };
                Query::Sleep { ms: ms.min(10_000) }
            }
            other => {
                return Err(format!(
                    "unknown op `{other}` (ops: ping, stats, bound, search, enumerate, \
                     certificate, execute)"
                ))
            }
        };
        Ok(Request { id, query })
    }
}

/// Extracts and cross-validates the `net` and `mode` fields.
fn net_and_mode(v: &Json) -> Result<(Network, Mode), String> {
    let spec = v
        .get("net")
        .ok_or("missing `net` (a spec like `hypercube:6` or `knodel:3,8`)")?
        .as_str()
        .ok_or("`net` must be a string spec like `hypercube:6`")?;
    let net = Network::from_spec(spec)?;
    let mode = match v.get("mode") {
        None => return Err("missing `mode` (directed | half-duplex | full-duplex)".into()),
        Some(j) => match j.as_str() {
            Some("directed") => Mode::Directed,
            Some("half-duplex") | Some("hd") => Mode::HalfDuplex,
            Some("full-duplex") | Some("fd") => Mode::FullDuplex,
            Some(other) => return Err(format!("unknown mode `{other}`")),
            None => return Err("`mode` must be a string".into()),
        },
    };
    if mode.requires_symmetric_graph() && net.is_directed() {
        return Err(format!(
            "{} is directed and cannot run in {mode} mode (use `directed`)",
            net.name()
        ));
    }
    Ok((net, mode))
}

/// `period`: an integer in `2..=`[`MAX_PERIOD`].
fn parse_finite_period(v: &Json) -> Result<usize, String> {
    let j = v.get("period").ok_or("missing `period`")?;
    let s = j
        .as_int()
        .ok_or_else(|| "`period` must be an integer".to_string())?;
    if s < 2 || s as usize > MAX_PERIOD {
        return Err(format!(
            "period {s} out of range (systolic periods are 2..={MAX_PERIOD})"
        ));
    }
    Ok(s as usize)
}

/// `period`: a finite period or the strings `"inf"` / `"nonsystolic"`.
fn parse_period_or_inf(v: &Json) -> Result<Period, String> {
    match v.get("period") {
        Some(Json::Str(s)) if s == "inf" || s == "nonsystolic" || s == "∞" => {
            Ok(Period::NonSystolic)
        }
        Some(Json::Str(s)) => Err(format!(
            "period `{s}` is not an integer or `inf`/`nonsystolic`"
        )),
        _ => parse_finite_period(v).map(Period::Systolic),
    }
}

/// An optional positive integer knob with a default and a hard cap.
fn bounded_knob(v: &Json, key: &str, default: usize, cap: usize) -> Result<usize, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(j) => {
            let n = j
                .as_int()
                .ok_or_else(|| format!("`{key}` must be an integer"))?;
            if n < 1 || n as usize > cap {
                return Err(format!("`{key}` out of range (1..={cap})"));
            }
            Ok(n as usize)
        }
    }
}

/// The canonical `family:params` spec of a network — the exact inverse
/// of [`Network::from_spec`], used to render requests and to key the
/// single-flight memo.
pub fn net_spec(net: &Network) -> String {
    match *net {
        Network::Path { n } => format!("path:{n}"),
        Network::Cycle { n } => format!("cycle:{n}"),
        Network::Complete { n } => format!("complete:{n}"),
        Network::DaryTree { d, h } => format!("tree:{d},{h}"),
        Network::Grid2d { w, h } => format!("grid:{w}x{h}"),
        Network::Torus2d { w, h } => format!("torus:{w}x{h}"),
        Network::Hypercube { k } => format!("hypercube:{k}"),
        Network::Butterfly { d, dd } => format!("bf:{d},{dd}"),
        Network::WrappedButterfly { d, dd } => format!("wbf:{d},{dd}"),
        Network::WrappedButterflyDirected { d, dd } => format!("wbfdir:{d},{dd}"),
        Network::DeBruijn { d, dd } => format!("db:{d},{dd}"),
        Network::DeBruijnDirected { d, dd } => format!("dbdir:{d},{dd}"),
        Network::Kautz { d, dd } => format!("kautz:{d},{dd}"),
        Network::KautzDirected { d, dd } => format!("kautzdir:{d},{dd}"),
        Network::ShuffleExchange { dd } => format!("se:{dd}"),
        Network::CubeConnectedCycles { k } => format!("ccc:{k}"),
        Network::Knodel { delta, n } => format!("knodel:{delta},{n}"),
        Network::RandomRegular { n, d, seed } => format!("rr:{n},{d},{seed}"),
    }
}

/// An upper estimate of the network's order *without building it*: the
/// `order_hint` closed forms where they exist, and generous parameter
/// closed forms for the word-graph families. Used to refuse oversized
/// queries before committing to an `O(n + m)` construction (or worse,
/// the `O(n·m)` diameter sweep behind a bound query).
pub fn order_estimate(net: &Network) -> usize {
    if let Some(n) = net.order_hint() {
        return n;
    }
    let pow = |d: usize, e: usize| d.saturating_pow(u32::try_from(e).unwrap_or(u32::MAX));
    match *net {
        Network::DaryTree { d, h } => pow(d.max(2), h + 1),
        Network::Butterfly { d, dd }
        | Network::WrappedButterfly { d, dd }
        | Network::WrappedButterflyDirected { d, dd } => (dd + 1).saturating_mul(pow(d, dd)),
        Network::DeBruijn { d, dd } | Network::DeBruijnDirected { d, dd } => pow(d, dd),
        Network::Kautz { d, dd } | Network::KautzDirected { d, dd } => {
            (d + 1).saturating_mul(pow(d, dd.saturating_sub(1)))
        }
        // Every hint-less family is covered above; `order_hint` supplied
        // the rest.
        _ => unreachable!("family without an order estimate"),
    }
}

/// The error reply for one request line.
pub fn error_reply(id: Option<i64>, message: &str) -> String {
    let mut row = Row::new().with("ok", false).with("error", message);
    if let Some(id) = id {
        row = row.with("id", id);
    }
    to_json_line(&row)
}

/// Renders an ok reply: the body fields behind `"ok":true`, plus the
/// echoed id.
pub fn ok_reply(id: Option<i64>, body: &Row) -> String {
    let mut row = Row::new().with("ok", true);
    row.fields.extend(body.fields.iter().cloned());
    if let Some(id) = id {
        row = row.with("id", id);
    }
    to_json_line(&row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::new(Query::Ping),
            Request {
                id: Some(7),
                query: Query::Stats,
            },
            Request::new(Query::Bound {
                net: Network::Hypercube { k: 6 },
                mode: Mode::FullDuplex,
                period: Period::Systolic(4),
            }),
            Request::new(Query::Bound {
                net: Network::DeBruijnDirected { d: 2, dd: 6 },
                mode: Mode::Directed,
                period: Period::NonSystolic,
            }),
            Request {
                id: Some(-3),
                query: Query::Search {
                    net: Network::Cycle { n: 8 },
                    mode: Mode::FullDuplex,
                    period: 3,
                    seed: 7,
                    restarts: 4,
                    iterations: 300,
                },
            },
            Request::new(Query::Enumerate {
                net: Network::Knodel { delta: 3, n: 8 },
                mode: Mode::FullDuplex,
                period: 3,
            }),
            Request::new(Query::Certificate {
                net: Network::Path { n: 10 },
                mode: Mode::HalfDuplex,
            }),
            Request {
                id: Some(12),
                query: Query::Execute {
                    net: Network::Hypercube { k: 3 },
                    mode: Mode::FullDuplex,
                },
            },
        ];
        for r in reqs {
            let line = r.to_line();
            assert_eq!(Request::parse(&line), Ok(r.clone()), "line: {line}");
        }
    }

    #[test]
    fn net_spec_inverts_from_spec_for_every_family() {
        let nets = [
            Network::Path { n: 9 },
            Network::Cycle { n: 12 },
            Network::Complete { n: 6 },
            Network::DaryTree { d: 2, h: 3 },
            Network::Grid2d { w: 4, h: 5 },
            Network::Torus2d { w: 4, h: 4 },
            Network::Hypercube { k: 5 },
            Network::Butterfly { d: 2, dd: 3 },
            Network::WrappedButterfly { d: 2, dd: 4 },
            Network::WrappedButterflyDirected { d: 2, dd: 4 },
            Network::DeBruijn { d: 2, dd: 5 },
            Network::DeBruijnDirected { d: 2, dd: 5 },
            Network::Kautz { d: 2, dd: 4 },
            Network::KautzDirected { d: 2, dd: 4 },
            Network::ShuffleExchange { dd: 5 },
            Network::CubeConnectedCycles { k: 3 },
            Network::Knodel { delta: 3, n: 8 },
            Network::RandomRegular {
                n: 16,
                d: 3,
                seed: 5,
            },
        ];
        for net in nets {
            let spec = net_spec(&net);
            assert_eq!(Network::from_spec(&spec), Ok(net), "spec: {spec}");
        }
    }

    #[test]
    fn rejects_out_of_range_and_mismatched_requests() {
        let cases = [
            (
                r#"{"op":"bound","net":"path:8","mode":"hd","period":1}"#,
                "out of range",
            ),
            (
                r#"{"op":"bound","net":"path:8","mode":"hd","period":33}"#,
                "out of range",
            ),
            (
                r#"{"op":"bound","net":"path:8","mode":"hd"}"#,
                "missing `period`",
            ),
            (
                r#"{"op":"bound","net":"dbdir:2,4","mode":"fd","period":4}"#,
                "directed",
            ),
            (
                r#"{"op":"bound","net":"zap:8","mode":"hd","period":4}"#,
                "zap",
            ),
            (r#"{"op":"launch"}"#, "unknown op"),
            (r#"{"op":"bound","mode":"hd","period":4}"#, "missing `net`"),
            (
                r#"{"op":"bound","net":"path:8","period":4}"#,
                "missing `mode`",
            ),
            (
                r#"{"op":"search","net":"path:8","mode":"hd","period":4,"restarts":0}"#,
                "out of range",
            ),
            (
                r#"{"op":"search","net":"path:8","mode":"hd","period":4,"iterations":1000000}"#,
                "out of range",
            ),
            (
                r#"{"op":"bound","net":"path:8","mode":"hd","period":"soon"}"#,
                "not an integer",
            ),
            (r#"[1,2,3]"#, "object"),
            (r#"{"op":"bou"#, "bad JSON"),
        ];
        for (line, want) in cases {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(want), "`{line}` → `{err}` (wanted `{want}`)");
        }
    }

    #[test]
    fn order_estimates_cover_every_family() {
        // Hinted families are exact; word families upper-bound the true
        // order (checked against a real build at small parameters).
        for net in [
            Network::DaryTree { d: 2, h: 4 },
            Network::Butterfly { d: 2, dd: 3 },
            Network::WrappedButterfly { d: 2, dd: 4 },
            Network::DeBruijn { d: 2, dd: 5 },
            Network::Kautz { d: 2, dd: 4 },
            Network::KautzDirected { d: 2, dd: 4 },
        ] {
            let est = order_estimate(&net);
            let real = net.build().vertex_count();
            assert!(est >= real, "{}: estimate {est} < real {real}", net.name());
        }
        assert_eq!(order_estimate(&Network::Hypercube { k: 10 }), 1024);
    }
}
