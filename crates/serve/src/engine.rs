//! The query engine: one shared [`BuildCache`] (digraphs, diameters,
//! protocols, automorphism groups, and the memoizing `BoundOracle`)
//! behind a **single-flight** result memo.
//!
//! The cache layers below already guarantee at-most-once *bound*
//! computation per key, but a query does more than bound lookup —
//! searches anneal, enumerations branch-and-bound, certificates
//! simulate. The engine memoizes the *entire reply row* per canonical
//! request line, sharded by topology family: concurrent identical
//! queries from different connections block on one `OnceLock` cell and
//! share the one computation, while queries about different families
//! never contend on a shard lock. The shard lock is held only to fetch
//! the cell; the compute runs outside it, so distinct keys in one family
//! still evaluate in parallel.
//!
//! Every compute is wrapped in `catch_unwind`: a panicking builder or an
//! over-cap enumeration becomes a structured error reply, the cell stays
//! empty, and the connection (and server) live on.

use crate::protocol::{net_spec, order_estimate, Query, Request};
use sg_exec::{execute_protocol, DriverConfig, FaultPlan};
use sg_scenario::BuildCache;
use sg_search::certificate::certify_with;
use sg_search::driver::{search_with_oracle, SearchConfig};
use sg_search::enumerate::{enumerate_with_group, EnumerateConfig};
use sg_sim::pool::systolic_gossip_time_pool;
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use systolic_gossip::{Network, Row};

/// One result shard: canonical request line → per-key once-cell. The
/// `Arc<OnceLock>` split is the same single-flight construction as
/// `BoundOracle` — lock to fetch the cell, compute outside the lock.
type Shard = Mutex<HashMap<String, Arc<OnceLock<Arc<Row>>>>>;

/// Number of topology families, and therefore result shards.
const FAMILY_COUNT: usize = 18;

/// Size guards on what a single query may ask for. Estimated orders
/// (never built graphs) are compared against these caps, so an oversized
/// request is refused in microseconds instead of after an `O(n·m)`
/// diameter sweep.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Largest (estimated) order a `bound` query may name.
    pub max_bound_n: usize,
    /// Largest order a `search` or `certificate` query may simulate.
    pub max_sim_n: usize,
    /// Largest order an `enumerate` query may branch-and-bound over.
    pub max_enumerate_n: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_bound_n: 4096,
            max_sim_n: 1024,
            max_enumerate_n: 12,
        }
    }
}

/// Single-flight counters of the result memo (the cache layers below
/// keep their own; the `stats` op surfaces both).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Memoized queries received.
    pub lookups: usize,
    /// Reply rows actually computed — for N concurrent identical
    /// queries, exactly 1.
    pub computes: usize,
}

impl EngineStats {
    /// `lookups − computes`: queries answered from the memo (or by
    /// waiting on an in-flight computation).
    pub fn hits(&self) -> usize {
        self.lookups - self.computes
    }
}

/// The shared engine every connection handler borrows.
#[derive(Debug)]
pub struct QueryEngine {
    cache: BuildCache,
    cfg: EngineConfig,
    shards: Vec<Shard>,
    lookups: AtomicUsize,
    computes: AtomicUsize,
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl QueryEngine {
    /// An engine with fresh caches.
    pub fn new(cfg: EngineConfig) -> Self {
        Self {
            cache: BuildCache::new(),
            cfg,
            shards: (0..FAMILY_COUNT).map(|_| Shard::default()).collect(),
            lookups: AtomicUsize::new(0),
            computes: AtomicUsize::new(0),
        }
    }

    /// The shared build cache (tests assert on its counters).
    pub fn cache(&self) -> &BuildCache {
        &self.cache
    }

    /// Snapshot of the single-flight counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            computes: self.computes.load(Ordering::Relaxed),
        }
    }

    /// Answers one query: the reply body on success, a message for an
    /// `{"ok":false}` reply on refusal or compute failure. Never panics.
    pub fn handle(&self, q: &Query) -> Result<Row, String> {
        match q {
            Query::Ping => Ok(Row::new().with("op", "ping")),
            Query::Stats => Ok(self.stats_row()),
            Query::Sleep { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                Ok(Row::new()
                    .with("op", "sleep")
                    .with("slept_ms", *ms as usize))
            }
            Query::Bound { net, .. } => {
                self.guard(net, self.cfg.max_bound_n, "bound")?;
                self.memoized(q, net)
            }
            Query::Search { net, .. } => {
                self.guard(net, self.cfg.max_sim_n, "search")?;
                self.memoized(q, net)
            }
            Query::Enumerate { net, .. } => {
                self.guard(net, self.cfg.max_enumerate_n, "enumerate")?;
                self.memoized(q, net)
            }
            Query::Certificate { net, .. } => {
                self.guard(net, self.cfg.max_sim_n, "certificate")?;
                self.memoized(q, net)
            }
            Query::Execute { net, .. } => {
                self.guard(net, self.cfg.max_sim_n, "execute")?;
                self.memoized(q, net)
            }
        }
    }

    /// Refuses queries whose estimated order exceeds the op's cap.
    fn guard(&self, net: &Network, cap: usize, op: &str) -> Result<(), String> {
        let est = order_estimate(net);
        if est > cap {
            return Err(format!(
                "{} has (estimated) order {est}, over this server's `{op}` cap of {cap}",
                net.name()
            ));
        }
        Ok(())
    }

    /// The single-flight path: canonicalize, shard by family, share one
    /// compute per key.
    fn memoized(&self, q: &Query, net: &Network) -> Result<Row, String> {
        let key = Request::new(q.clone()).to_line();
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[family_shard(net)];
        let cell = Arc::clone(shard.lock().unwrap().entry(key).or_default());
        // A panicking compute propagates out of `get_or_init` leaving the
        // cell uninitialized — the next identical query retries, and
        // *this* query reports the panic as a structured error.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Arc::clone(cell.get_or_init(|| {
                self.computes.fetch_add(1, Ordering::Relaxed);
                Arc::new(self.compute(q))
            }))
        }));
        match outcome {
            Ok(row) => Ok((*row).clone()),
            Err(payload) => Err(format!("query failed: {}", panic_text(payload))),
        }
    }

    /// The uncached computation behind one memo cell.
    fn compute(&self, q: &Query) -> Row {
        match q {
            Query::Bound { net, mode, period } => {
                let g = self.cache.digraph(net);
                let diameter = self.cache.diameter(net);
                let ob = self
                    .cache
                    .oracle()
                    .bounds_on(net, &g, diameter, *mode, *period);
                Row::new()
                    .with("op", "bound")
                    .with("net", net_spec(net))
                    .with("network", net.name())
                    .with("n", g.vertex_count())
                    .with("mode", mode.name())
                    .with("period", period.label())
                    .with("diameter", diameter)
                    .with("floor_rounds", ob.floor_rounds)
                    .with("floor_source", ob.floor_source.label())
                    .with("asymptotic_rounds", ob.asymptotic_rounds)
                    .with("lambda_star", ob.lambda_star)
                    .with("best_rounds", ob.report.best_rounds)
            }
            Query::Search {
                net,
                mode,
                period,
                seed,
                restarts,
                iterations,
            } => {
                let g = self.cache.digraph(net);
                let diameter = self.cache.diameter(net);
                let cfg = SearchConfig {
                    restarts: *restarts,
                    iterations: *iterations,
                    seed: *seed,
                    threads: 1,
                    ..SearchConfig::default()
                }
                .exact_period(*period);
                let out = search_with_oracle(self.cache.oracle(), net, &g, diameter, *mode, &cfg);
                let mut row = Row::new()
                    .with("op", "search")
                    .with("net", net_spec(net))
                    .with("n", g.vertex_count())
                    .with("mode", mode.name())
                    .with("period", *period)
                    .with("found_rounds", out.best_rounds)
                    .with("evaluations", out.evaluations)
                    .with("chains", out.chains);
                if let Some(cert) = &out.certificate {
                    row = row
                        .with("floor_rounds", cert.floor_rounds)
                        .with("floor_source", cert.floor_source.label())
                        .with("verdict", cert.verdict.label())
                        .with("gap_rounds", cert.gap_rounds());
                }
                row
            }
            Query::Enumerate { net, mode, period } => {
                let g = self.cache.digraph(net);
                let diameter = self.cache.diameter(net);
                let group = self.cache.perm_group(net);
                let cfg = EnumerateConfig::default().exact_period(*period);
                let out = enumerate_with_group(
                    self.cache.oracle(),
                    net,
                    &g,
                    diameter,
                    *mode,
                    &group,
                    &cfg,
                );
                let mut row = Row::new()
                    .with("op", "enumerate")
                    .with("net", net_spec(net))
                    .with("n", g.vertex_count())
                    .with("mode", mode.name())
                    .with("period", *period)
                    .with("optimal_rounds", out.best_rounds)
                    .with("proven_infeasible", out.proven_infeasible)
                    .with("enumerated", out.enumerated)
                    .with("pruned", out.pruned)
                    .with("met_floor", out.met_floor);
                if let Some(cert) = &out.certificate {
                    row = row
                        .with("floor_rounds", cert.floor_rounds)
                        .with("verdict", cert.verdict.label());
                }
                row
            }
            Query::Certificate { net, mode } => {
                let g = self.cache.digraph(net);
                let diameter = self.cache.diameter(net);
                let n = g.vertex_count();
                let Some((kind, sp)) = self.cache.protocol(net, *mode) else {
                    panic!(
                        "{} has no deterministic protocol in {} mode",
                        net.name(),
                        mode.name()
                    );
                };
                let budget = 40 * n + 200;
                let mut row = Row::new()
                    .with("op", "certificate")
                    .with("net", net_spec(net))
                    .with("n", n)
                    .with("mode", mode.name())
                    .with("protocol", kind.label())
                    .with("period", sp.period().len());
                match systolic_gossip_time_pool(&sp, n, budget, 1) {
                    Some(found) => {
                        let cert = certify_with(
                            self.cache.oracle(),
                            net,
                            &g,
                            diameter,
                            *mode,
                            sp.period().len(),
                            found,
                            Some(&sp),
                        );
                        row = row
                            .with("found_rounds", found)
                            .with("floor_rounds", cert.floor_rounds)
                            .with("floor_source", cert.floor_source.label())
                            .with("gap_rounds", cert.gap_rounds())
                            .with("protocol_bound_rounds", cert.protocol_bound_rounds)
                            .with("verdict", cert.verdict.label());
                    }
                    None => {
                        row = row.with("verdict", "incomplete").with("budget", budget);
                    }
                }
                row
            }
            Query::Execute { net, mode } => {
                let g = self.cache.digraph(net);
                let n = g.vertex_count();
                let Some((kind, sp)) = self.cache.protocol(net, *mode) else {
                    panic!(
                        "{} has no deterministic protocol in {} mode",
                        net.name(),
                        mode.name()
                    );
                };
                let budget = 40 * n + 200;
                let optimum = systolic_gossip_time_pool(&sp, n, budget, 1);
                let report = execute_protocol(
                    &sp,
                    n,
                    FaultPlan::fault_free(),
                    DriverConfig {
                        max_rounds: budget as u64,
                        ..DriverConfig::default()
                    },
                );
                let conformant = match (report.completed_at, optimum) {
                    (Some(e), Some(o)) => e == o as u64,
                    _ => false,
                };
                Row::new()
                    .with("op", "execute")
                    .with("net", net_spec(net))
                    .with("n", n)
                    .with("mode", mode.name())
                    .with("protocol", kind.label())
                    .with("period", sp.period().len())
                    .with("executed_rounds", report.completed_at.map(|r| r as usize))
                    .with("optimum_rounds", optimum)
                    .with("conformant", conformant)
                    .with(
                        "gossip_sent",
                        i64::try_from(report.gossip_sent).unwrap_or(i64::MAX),
                    )
                    .with(
                        "acks_sent",
                        i64::try_from(report.acks_sent).unwrap_or(i64::MAX),
                    )
            }
            Query::Ping | Query::Stats | Query::Sleep { .. } => {
                unreachable!("non-memoized ops never reach compute")
            }
        }
    }

    /// The `stats` reply: single-flight, oracle and build-cache counters.
    fn stats_row(&self) -> Row {
        let sf = self.stats();
        let cs = self.cache.stats();
        Row::new()
            .with("op", "stats")
            .with("singleflight_lookups", sf.lookups)
            .with("singleflight_computes", sf.computes)
            .with("singleflight_hits", sf.hits())
            .with("oracle_lookups", cs.oracle.lookups)
            .with("oracle_computes", cs.oracle.computes)
            .with("graph_builds", cs.graph_builds)
            .with("graph_hits", cs.graph_hits)
            .with("protocol_builds", cs.protocol_builds)
            .with("protocol_hits", cs.protocol_hits)
            .with("group_builds", cs.group_builds)
    }
}

/// Shard index of a network: its family. Identical queries always land
/// on one shard; different families never contend.
fn family_shard(net: &Network) -> usize {
    match net {
        Network::Path { .. } => 0,
        Network::Cycle { .. } => 1,
        Network::Complete { .. } => 2,
        Network::DaryTree { .. } => 3,
        Network::Grid2d { .. } => 4,
        Network::Torus2d { .. } => 5,
        Network::Hypercube { .. } => 6,
        Network::Butterfly { .. } => 7,
        Network::WrappedButterfly { .. } => 8,
        Network::WrappedButterflyDirected { .. } => 9,
        Network::DeBruijn { .. } => 10,
        Network::DeBruijnDirected { .. } => 11,
        Network::Kautz { .. } => 12,
        Network::KautzDirected { .. } => 13,
        Network::ShuffleExchange { .. } => 14,
        Network::CubeConnectedCycles { .. } => 15,
        Network::Knodel { .. } => 16,
        Network::RandomRegular { .. } => 17,
    }
}

/// Renders a panic payload as the human-readable part of an error reply.
fn panic_text(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "internal error".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_gossip::sg_bounds::pfun::Period;
    use systolic_gossip::sg_protocol::mode::Mode;
    use systolic_gossip::Value;

    fn field<'r>(row: &'r Row, name: &str) -> &'r Value {
        &row.fields
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("row has no `{name}`"))
            .1
    }

    #[test]
    fn identical_concurrent_queries_compute_once() {
        let engine = QueryEngine::default();
        let q = Query::Bound {
            net: Network::Hypercube { k: 4 },
            mode: Mode::FullDuplex,
            period: Period::Systolic(4),
        };
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| engine.handle(&q).unwrap());
            }
        });
        let sf = engine.stats();
        assert_eq!(sf.lookups, 8);
        assert_eq!(sf.computes, 1, "single-flight: one compute for 8 queries");
        // The oracle below saw exactly one evaluation too.
        assert_eq!(engine.cache().stats().oracle.computes, 1);
    }

    #[test]
    fn distinct_periods_are_distinct_keys() {
        let engine = QueryEngine::default();
        for s in [2usize, 3, 4] {
            let q = Query::Bound {
                net: Network::Cycle { n: 8 },
                mode: Mode::FullDuplex,
                period: Period::Systolic(s),
            };
            engine.handle(&q).unwrap();
            engine.handle(&q).unwrap();
        }
        let sf = engine.stats();
        assert_eq!(sf.lookups, 6);
        assert_eq!(sf.computes, 3);
    }

    #[test]
    fn oversized_queries_are_refused_without_building() {
        let engine = QueryEngine::new(EngineConfig {
            max_bound_n: 100,
            ..EngineConfig::default()
        });
        let q = Query::Bound {
            net: Network::Hypercube { k: 20 },
            mode: Mode::FullDuplex,
            period: Period::Systolic(4),
        };
        let err = engine.handle(&q).unwrap_err();
        assert!(err.contains("cap"), "refusal mentions the cap: {err}");
        assert_eq!(engine.cache().stats().graph_builds, 0, "nothing was built");
    }

    #[test]
    fn panicking_compute_becomes_structured_error() {
        let engine = QueryEngine::default();
        // A directed shift network has no deterministic protocol; the
        // certificate compute panics and the engine reports it.
        let q = Query::Certificate {
            net: Network::DeBruijnDirected { d: 2, dd: 3 },
            mode: Mode::Directed,
        };
        let err = engine.handle(&q).unwrap_err();
        assert!(
            err.contains("no deterministic protocol"),
            "panic text surfaced: {err}"
        );
        // The engine is still healthy afterwards.
        let ok = engine.handle(&Query::Ping).unwrap();
        assert!(matches!(field(&ok, "op"), Value::Text(t) if t == "ping"));
    }

    #[test]
    fn certificate_audits_the_reference_protocol() {
        let engine = QueryEngine::default();
        let q = Query::Certificate {
            net: Network::Path { n: 8 },
            mode: Mode::HalfDuplex,
        };
        let row = engine.handle(&q).unwrap();
        assert!(matches!(field(&row, "protocol"), Value::Text(t) if t == "reference"));
        assert!(matches!(field(&row, "found_rounds"), Value::Int(r) if *r > 0));
        assert!(matches!(field(&row, "verdict"), Value::Text(_)));
    }

    #[test]
    fn execute_runs_fault_free_and_conforms_to_the_simulator() {
        let engine = QueryEngine::default();
        let q = Query::Execute {
            net: Network::Knodel { delta: 3, n: 8 },
            mode: Mode::FullDuplex,
        };
        let row = engine.handle(&q).unwrap();
        assert!(matches!(field(&row, "op"), Value::Text(t) if t == "execute"));
        assert!(matches!(field(&row, "conformant"), Value::Bool(true)));
        assert_eq!(
            field(&row, "executed_rounds"),
            field(&row, "optimum_rounds")
        );
        // Identical queries share one compute through the memo.
        engine.handle(&q).unwrap();
        assert_eq!(engine.stats().computes, 1);
        // And the execute op respects the simulation cap.
        let small = QueryEngine::new(EngineConfig {
            max_sim_n: 4,
            ..EngineConfig::default()
        });
        let err = small.handle(&q).unwrap_err();
        assert!(err.contains("`execute` cap"), "{err}");
    }

    #[test]
    fn enumerate_settles_a_small_cycle() {
        let engine = QueryEngine::default();
        let row = engine
            .handle(&Query::Enumerate {
                net: Network::Cycle { n: 5 },
                mode: Mode::HalfDuplex,
                period: 3,
            })
            .unwrap();
        assert!(matches!(field(&row, "optimal_rounds"), Value::Int(r) if *r > 0));
    }

    #[test]
    fn search_finds_a_schedule_and_certifies() {
        let engine = QueryEngine::default();
        let row = engine
            .handle(&Query::Search {
                net: Network::Cycle { n: 6 },
                mode: Mode::FullDuplex,
                period: 3,
                seed: 7,
                restarts: 2,
                iterations: 60,
            })
            .unwrap();
        assert!(matches!(field(&row, "found_rounds"), Value::Int(r) if *r > 0));
        assert!(matches!(field(&row, "verdict"), Value::Text(_)));
    }
}
