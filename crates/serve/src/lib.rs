//! # sg-serve
//!
//! A concurrent bound/search **query daemon** over the systolic-gossip
//! stack: every exact floor, Theorem 4.1 delay-matrix bound, annealed
//! schedule and `ProvenOptimal` enumeration the repro can compute,
//! reachable over one TCP socket speaking newline-delimited JSON —
//! instead of only through batch CLI runs.
//!
//! ```text
//! $ sg-serve --addr 127.0.0.1:7411 &
//! $ printf '{"op":"bound","net":"hypercube:6","mode":"fd","period":4}\n' | nc 127.0.0.1 7411
//! {"ok":true,"op":"bound","net":"hypercube:6",…,"floor_rounds":9,…}
//! ```
//!
//! The layering, bottom-up:
//!
//! * [`json`] — a strict, dependency-free JSON parser (the workspace is
//!   offline; the serializer half already lives in `sg_core::report`);
//! * [`protocol`] — typed requests ([`Request`], [`Query`]) with a
//!   round-trippable wire form, plus the canonical network spec
//!   ([`protocol::net_spec`]) and build-free order estimates;
//! * [`engine`] — the shared [`QueryEngine`]: one
//!   [`sg_scenario::BuildCache`] (digraphs, diameters, deterministic
//!   protocols, automorphism groups, the memoizing `BoundOracle`) under
//!   a family-sharded **single-flight** result memo — N concurrent
//!   identical queries cost exactly one computation;
//! * [`server`] — the threaded TCP [`Server`]: read/write timeouts, a
//!   bounded in-flight semaphore that sheds with `"overloaded"`,
//!   malformed-request replies that never kill the connection, and
//!   graceful shutdown that drains in-flight queries;
//! * [`client`] — a blocking JSONL [`Client`] for tests, scripts and
//!   the `sg-serve-bench` load generator.

pub mod client;
pub mod engine;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use engine::{EngineConfig, EngineStats, QueryEngine};
pub use protocol::{Query, Request};
pub use server::{ServeReport, Server, ServerConfig, ServerHandle};
