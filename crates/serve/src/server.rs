//! The threaded TCP server: one listener, one detached thread per
//! connection, one shared [`QueryEngine`].
//!
//! Availability is treated as a correctness property:
//!
//! * **read/write timeouts** — an idle or stalled peer is disconnected
//!   after [`ServerConfig::read_timeout`] / `write_timeout`, so dead
//!   connections never pin threads forever;
//! * **bounded in-flight queries** — a counting semaphore caps
//!   concurrently-executing queries; at the cap the server *sheds* with
//!   an explicit `{"ok":false,"error":"overloaded"}` instead of queueing
//!   unboundedly (`ping`/`stats` bypass the gate so health checks work
//!   under load);
//! * **malformed requests never kill the connection** — every parse or
//!   compute failure is a structured error reply and the next line is
//!   read fresh;
//! * **graceful shutdown** — [`ServerHandle::shutdown`] stops the accept
//!   loop, connection threads stop picking up new lines, and the server
//!   waits (up to [`ServerConfig::shutdown_grace`]) for every in-flight
//!   query to finish and flush its reply before reporting
//!   [`ServeReport::drained`].

use crate::engine::{EngineConfig, EngineStats, QueryEngine};
use crate::protocol::{error_reply, ok_reply, Query, Request};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A request line longer than this (without a newline) is refused and
/// the connection closed — the one malformed-input case that cannot be
/// answered line-by-line, because the line never ends.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// How the server behaves; `Default` is the production shape.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port `0` picks a free port (tests).
    pub addr: String,
    /// Cap on concurrently-executing queries across all connections;
    /// above it new queries are shed with `"overloaded"`.
    pub max_inflight: usize,
    /// Disconnect a peer that sends nothing for this long.
    pub read_timeout: Duration,
    /// Abandon a peer that cannot absorb a reply for this long.
    pub write_timeout: Duration,
    /// How long shutdown waits for in-flight queries to drain.
    pub shutdown_grace: Duration,
    /// Size guards forwarded to the [`QueryEngine`].
    pub engine: EngineConfig,
    /// Honor the `sleep` op (test instrumentation for backpressure and
    /// drain assertions). Never enable in production.
    pub enable_sleep_op: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 256,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            shutdown_grace: Duration::from_secs(10),
            engine: EngineConfig::default(),
            enable_sleep_op: false,
        }
    }
}

/// What one server run did, reported when the accept loop exits.
#[derive(Debug, Clone, Copy)]
pub struct ServeReport {
    /// `true` when every in-flight query finished (and flushed its
    /// reply) within the shutdown grace period.
    pub drained: bool,
    /// Connections accepted over the run.
    pub connections: usize,
    /// Ok replies written.
    pub served: usize,
    /// Error replies written (parse failures, refusals, compute errors).
    pub errors: usize,
    /// Queries shed at the in-flight cap.
    pub shed: usize,
    /// Single-flight counters at exit.
    pub singleflight: EngineStats,
}

/// State shared by the accept loop, every connection thread, and every
/// handle.
struct Shared {
    engine: QueryEngine,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// The counting semaphore: queries currently executing (reply not
    /// yet flushed).
    inflight: AtomicUsize,
    connections: AtomicUsize,
    served: AtomicUsize,
    errors: AtomicUsize,
    shed: AtomicUsize,
}

impl Shared {
    /// Acquire one in-flight slot, or refuse at the cap.
    fn try_enter(&self) -> bool {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                (v < self.cfg.max_inflight).then_some(v + 1)
            })
            .is_ok()
    }
}

/// Decrements the in-flight gauge on drop, so a panicking or
/// early-returning handler can never leak a slot.
struct GateGuard<'a>(&'a Shared);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A clonable remote control for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting, let in-flight queries
    /// drain. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Queries executing right now.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }
}

/// A bound, running server.
pub struct Server {
    local_addr: SocketAddr,
    handle: ServerHandle,
    join: JoinHandle<ServeReport>,
}

impl Server {
    /// Binds `cfg.addr` and starts the accept loop on its own thread.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: QueryEngine::new(cfg.engine),
            cfg,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
        });
        let handle = ServerHandle {
            shared: Arc::clone(&shared),
        };
        let join = std::thread::Builder::new()
            .name("sg-serve-accept".to_string())
            .spawn(move || accept_loop(listener, shared))
            .expect("spawn accept loop");
        Ok(Server {
            local_addr,
            handle,
            join,
        })
    }

    /// Where the server actually listens (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A remote control (clonable, usable from signal watchers).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Waits for the accept loop to exit (after
    /// [`ServerHandle::shutdown`]) and reports the run.
    pub fn join(self) -> ServeReport {
        self.join.join().expect("accept loop never panics")
    }
}

/// Accept loop: nonblocking accept polled against the shutdown flag,
/// then the drain wait.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> ServeReport {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                // Detached, small-stack worker: the deep recursions all
                // live in the engine's computes, not the I/O path.
                let spawned = std::thread::Builder::new()
                    .name("sg-serve-conn".to_string())
                    .stack_size(256 * 1024)
                    .spawn(move || handle_connection(stream, &conn_shared));
                if spawned.is_err() {
                    // Thread exhaustion: the accept succeeded but the
                    // connection cannot be served; dropping the stream
                    // closes it, and the listener keeps running.
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Graceful drain: every in-flight query gets `shutdown_grace` to
    // finish and flush.
    let deadline = Instant::now() + shared.cfg.shutdown_grace;
    while shared.inflight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    ServeReport {
        drained: shared.inflight.load(Ordering::Acquire) == 0,
        connections: shared.connections.load(Ordering::Relaxed),
        served: shared.served.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        singleflight: shared.engine.stats(),
    }
}

/// One connection: buffered line reading in short timeout slices (so the
/// thread notices shutdown promptly while still tolerating long idle),
/// one reply line per request line.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let slice = Duration::from_millis(250).min(shared.cfg.read_timeout);
    if stream.set_read_timeout(Some(slice)).is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut idle = Duration::ZERO;
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..pos]).into_owned();
            if !serve_line(&mut stream, shared, line.trim()) {
                return;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if buf.len() > MAX_LINE_BYTES {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            let reply = error_reply(None, "request line over 64KiB; closing connection");
            let _ = write_line(&mut stream, &reply);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(k) => {
                buf.extend_from_slice(&chunk[..k]);
                idle = Duration::ZERO;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += slice;
                if idle >= shared.cfg.read_timeout {
                    return; // idle peer
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Parses and answers one line. Returns `false` when the connection
/// should close (write failure only — bad requests get error replies).
fn serve_line(stream: &mut TcpStream, shared: &Shared, line: &str) -> bool {
    if line.is_empty() {
        return true;
    }
    let req = match Request::parse(line) {
        Err(msg) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return write_line(stream, &error_reply(None, &msg));
        }
        Ok(req) => req,
    };
    if matches!(req.query, Query::Sleep { .. }) && !shared.cfg.enable_sleep_op {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return write_line(stream, &error_reply(req.id, "unknown op `sleep`"));
    }
    // Health and introspection bypass the gate: they must answer even
    // (especially) when the server is saturated.
    let gated = !matches!(req.query, Query::Ping | Query::Stats);
    // The guard is held until the reply is *flushed*, so the drain wait
    // in [`accept_loop`] covers the write, not just the compute.
    let _guard = if gated {
        if !shared.try_enter() {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            return write_line(stream, &error_reply(req.id, "overloaded"));
        }
        Some(GateGuard(shared))
    } else {
        None
    };
    let reply = match shared.engine.handle(&req.query) {
        Ok(body) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            ok_reply(req.id, &body)
        }
        Err(msg) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            error_reply(req.id, &msg)
        }
    };
    write_line(stream, &reply)
}

/// Writes one newline-terminated reply; `false` on any write failure.
fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    stream.write_all(framed.as_bytes()).is_ok()
}
