//! A minimal, strict JSON parser for the wire protocol.
//!
//! The workspace has no registry access, so there is no `serde_json`;
//! this module implements the slice the daemon needs: parsing one
//! request line into a [`Json`] value tree, with hard limits (nesting
//! depth) so hostile input cannot blow the stack. Serialization goes
//! the other way through `systolic_gossip::to_json_line`, and the
//! round-trip between the two is property-tested in
//! `tests/protocol_roundtrip.rs`.

use std::fmt;

/// Deepest container nesting accepted. Requests are flat objects; the
/// cap only exists so `[[[[…` cannot recurse the parser to death.
pub const MAX_DEPTH: usize = 32;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered (later duplicates win on lookup of
    /// the first match — duplicates are rejected at parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only — floats don't silently
    /// truncate).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts integers too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|mut e| {
                e.message = format!("object key: {}", e.message);
                e
            })?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..=\uDFFF`.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits (the cursor must be on the first digit) and
    /// leaves the cursor just past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        // JSON forbids leading zeros: `0` is fine, `01` is not.
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let j = parse(r#"{"op":"bound","net":"hypercube:3","period":4,"x":1.5,"b":true,"z":null}"#)
            .unwrap();
        assert_eq!(j.get("op").and_then(Json::as_str), Some("bound"));
        assert_eq!(j.get("period").and_then(Json::as_int), Some(4));
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("z"), Some(&Json::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let j = parse(r#"{"s":"a\"b\\c\nd\u0041\u00e9"}"#).unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("a\"b\\c\ndAé"));
        // Surrogate pair → astral plane.
        let j = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(j.as_str(), Some("😀"));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            r#"{"op":"#,
            r#"{"op" "x"}"#,
            r#"{"a":1,}"#,
            r#"{"a":1}{"#,
            "[1,2",
            "nul",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\ud800\"",
            "{\"a\":1,\"a\":2}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must fail to parse");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers_pick_int_vs_float() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.25").unwrap(), Json::Float(1.25));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        // Out-of-i64-range integers degrade to floats instead of erroring.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }
}
