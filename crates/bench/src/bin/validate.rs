//! The validation experiment (V1/V2 of DESIGN.md): run every executable
//! protocol, compute every applicable lower bound, verify soundness, and
//! verify the Lemma 3.1 separators by BFS.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin validate
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sg_bench::{full_duplex_workloads, half_duplex_workloads};
use systolic_gossip::prelude::*;

fn main() {
    println!("== protocol audits (measured vs bounds) ==\n");
    println!(
        "{:<26} {:>6} {:>4} {:>9} {:>9} {:>10} {:>8} {:>6}",
        "workload", "n", "s", "measured", "Thm4.1", "Cor4.4", "λ*", "sound"
    );
    let opts = BoundOpts::default();
    let mut violations = 0;
    for (name, net, sp) in half_duplex_workloads().into_iter().chain(full_duplex_workloads()) {
        let a = audit(&net, &sp, 1_000_000, opts);
        let sound = a.is_sound();
        if !sound {
            violations += 1;
        }
        println!(
            "{:<26} {:>6} {:>4} {:>9} {:>9} {:>10.1} {:>8} {:>6}",
            name,
            a.n,
            a.s,
            a.measured_rounds.map_or("—".into(), |t| t.to_string()),
            a.matrix_bound
                .as_ref()
                .map_or("—".into(), |b| format!("{:.1}", b.rounds)),
            a.closed_form_rounds,
            a.matrix_bound
                .as_ref()
                .map_or("—".into(), |b| format!("{:.4}", b.lambda_star)),
            if sound { "yes" } else { "NO" }
        );
    }

    println!("\n== greedy (non-systolic) upper bounds vs the 1.4404·log n bound ==\n");
    println!(
        "{:<16} {:>6} {:>8} {:>12} {:>8}",
        "network", "n", "greedy", "1.4404·log n", "diam"
    );
    let mut rng = StdRng::seed_from_u64(1997);
    for net in [
        Network::WrappedButterfly { d: 2, dd: 5 },
        Network::DeBruijn { d: 2, dd: 7 },
        Network::Kautz { d: 2, dd: 6 },
        Network::Hypercube { k: 7 },
        Network::Complete { n: 64 },
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let out = greedy_gossip(&g, Mode::HalfDuplex, 200 * n, &mut rng).expect("completes");
        let bound = e_general_nonsystolic() * (n as f64).log2();
        let diam = systolic_gossip::sg_graphs::traversal::diameter(&g).unwrap();
        println!(
            "{:<16} {:>6} {:>8} {:>12.1} {:>8}",
            net.name(),
            n,
            out.rounds,
            bound,
            diam
        );
        assert!(out.rounds as f64 >= bound - 2.0 * (out.rounds as f64).log2() - 1e-9);
    }

    println!("\n== greedy broadcast schedules vs broadcasting bounds ==\n");
    println!(
        "{:<16} {:>6} {:>9} {:>8} {:>14}",
        "network", "n", "measured", "ecc", "c(d)·log n"
    );
    for net in [
        Network::Complete { n: 64 },
        Network::Hypercube { k: 7 },
        Network::DeBruijn { d: 2, dd: 7 },
        Network::Kautz { d: 2, dd: 6 },
        Network::WrappedButterfly { d: 2, dd: 5 },
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let out = systolic_gossip::sg_sim::broadcast::greedy_broadcast(&g, 0, 10 * n)
            .expect("completes");
        let ecc = systolic_gossip::sg_graphs::traversal::eccentricity(&g, 0).unwrap();
        // Degree parameter of [22,2]: max degree − 1 for undirected graphs.
        let d_param = g.max_degree().saturating_sub(1).max(2);
        let cd = c_broadcast(d_param) * (n as f64).log2();
        println!(
            "{:<16} {:>6} {:>9} {:>8} {:>14.1}",
            net.name(),
            n,
            out.rounds,
            ecc,
            cd
        );
        assert!(out.rounds as u32 >= ecc);
    }

    println!("\n== Lemma 3.1 separators, BFS-verified ==\n");
    println!(
        "{:<16} {:>6} {:>7} {:>7} {:>9} {:>9}",
        "network", "n", "|V1|", "|V2|", "measured", "claimed"
    );
    for net in [
        Network::Butterfly { d: 2, dd: 5 },
        Network::WrappedButterflyDirected { d: 2, dd: 5 },
        Network::WrappedButterfly { d: 2, dd: 9 },
        Network::DeBruijnDirected { d: 2, dd: 9 },
        Network::DeBruijn { d: 2, dd: 12 },
        Network::KautzDirected { d: 2, dd: 8 },
        Network::Kautz { d: 2, dd: 8 },
        Network::Butterfly { d: 3, dd: 4 },
        Network::DeBruijnDirected { d: 3, dd: 6 },
    ] {
        let g = net.build();
        let sep = net.concrete_separator().unwrap();
        let measured = sep.measured_distance(&g).expect("connected");
        println!(
            "{:<16} {:>6} {:>7} {:>7} {:>9} {:>9}",
            net.name(),
            g.vertex_count(),
            sep.v1.len(),
            sep.v2.len(),
            measured,
            sep.claimed_distance
        );
        assert!(measured >= sep.claimed_distance, "{}", net.name());
    }

    if violations == 0 {
        println!("\nall audits consistent: every measured execution respects every bound.");
    } else {
        println!("\n{violations} VIOLATIONS — the reproduction is broken.");
        std::process::exit(1);
    }
}
