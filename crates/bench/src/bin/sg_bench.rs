//! `sg-bench` — the single CLI over the scenario registry, replacing the
//! former per-figure binaries (`fig4` … `fig8`, `curves`,
//! `diameter_bounds`, `experiments`, `fig_matrices`, `validate`).
//!
//! ```bash
//! sg-bench list                        # enumerate the named scenarios
//! sg-bench run fig5 curves             # run scenarios through the batch executor
//! sg-bench run all --format json       # everything, one JSON object per row
//! sg-bench sweep --task bound --mode half-duplex --net wbf:2,5 --net db:2,7 \
//!                --periods 3..8 --nonsystolic
//! ```

use sg_scenario::{registry, run_batch, BatchOptions, Scenario, Task, WeightScheme};
use systolic_gossip::sg_bounds::pfun::Period;
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::{to_csv, to_json_line, Network};

const USAGE: &str = "\
sg-bench — systolic-gossip scenario runner

USAGE:
  sg-bench list [--filter SUBSTR]
      Enumerate the named scenarios of the registry.

  sg-bench run <name>... | all [--filter SUBSTR] [OPTIONS]
      Run named scenarios through the parallel batch executor.
      With --filter, names may be omitted: every scenario whose name
      contains SUBSTR runs.

  sg-bench search [<name>...] [--filter SUBSTR] [--seed N] [--restarts N]
                  [--iterations N] [OPTIONS]
      Run the protocol-synthesis scenarios (sg-search): hunt for optimal
      systolic schedules and certify them against the paper's lower
      bounds. Without names, every search-task scenario runs.

  sg-bench enumerate [<name>...] [--filter SUBSTR] [OPTIONS]
      Run the exact-enumeration scenarios: oracle-pruned exhaustive
      branch-and-bound over every valid period-s schedule, proving the
      optimum (or exact infeasibility) as a ProvenOptimal certificate.
      Without names, every enumerate-task scenario runs.

  sg-bench execute [<name>...] [--filter SUBSTR] [--faults P] [--exec-seed N]
                   [OPTIONS]
      Run the distributed-execution scenarios (sg-exec): each vertex of
      a compiled schedule becomes a message-passing node, stepped by a
      deterministic fault-injecting driver, and the completion round is
      checked against the lockstep simulator's optimum. --faults
      overrides the per-link drop probability, --exec-seed the fault
      seed. Without names, every execute-task scenario runs.

  sg-bench randomized [<name>...] [--filter SUBSTR] [--trials N] [--rand-seed N]
                      [OPTIONS]
      Run the randomized-baseline scenarios: seeded push/pull/exchange
      gossip trials over the sparse row table, summarized
      (mean/median/p95/max stopping times) against the exact systolic
      optimum or lower-bound floor of the same network. --trials
      overrides the per-model trial count, --rand-seed the master seed.
      Without names, every randomized-task scenario runs.

  sg-bench sweep --task <bound|simulate|compare|enumerate|execute|randomized> --mode <directed|half-duplex|full-duplex>
                 --net <family:params> [--net ...] [--periods LO..HI] [--nonsystolic]
                 [--degrees D,D,...] [--filter SUBSTR] [OPTIONS]
      Run an ad-hoc scenario assembled from the command line. Each --net
      takes one spec: path:32, cycle:32, complete:16, tree:2,4, grid:6x6,
      torus:8x8, hypercube:7, bf:2,4, wbf:2,5, wbfdir:2,5, db:2,7,
      dbdir:2,8, kautz:2,6, kautzdir:2,7, se:6, ccc:4, knodel:6,64,
      rr:64,3[,seed]. With --filter, only the networks whose name
      contains SUBSTR are kept.

OPTIONS:
  --threads N          worker threads (default: one per core, max 16)
  --sim-threads N      threads per unit: row-parallel simulate/compare,
                       and the enumerator's exhaustive parallel pass
                       (default: leftover budget once units are assigned;
                       the effective values are echoed in text output)
  --faults P           execute: per-link drop probability in [0, 1)
  --exec-seed N        execute: deterministic fault-sampling seed
  --trials N           randomized: independent trials per activation model
  --rand-seed N        randomized: master seed of the counter-based streams
  --format FMT         text | json | csv   (default text)
  --filter SUBSTR      restrict list/run/search/enumerate to matching scenario
                       names (sweep: restrict the --net list by network name)
  --stats              print cache statistics after the run
  -h, --help           this message
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `sg-bench --help` for usage");
            std::process::exit(2);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

#[derive(Debug)]
struct CommonFlags {
    threads: usize,
    sim_threads: usize,
    format: Format,
    stats: bool,
    filter: Option<String>,
    search_seed: Option<u64>,
    search_restarts: Option<usize>,
    search_iterations: Option<usize>,
    exec_faults: Option<f64>,
    exec_seed: Option<u64>,
    rand_trials: Option<usize>,
    rand_seed: Option<u64>,
}

impl CommonFlags {
    /// `--faults` / `--exec-seed` only make sense where an `ExecSpec`
    /// exists to override; every other command rejects them by name.
    fn reject_exec_flags(&self, command: &str) -> Result<(), String> {
        if self.exec_faults.is_some() || self.exec_seed.is_some() {
            return Err(format!(
                "--faults / --exec-seed only apply to `sg-bench execute` or \
                 `sg-bench sweep --task execute`, not `sg-bench {command}`"
            ));
        }
        Ok(())
    }

    /// `--trials` / `--rand-seed` only make sense where a
    /// `RandomizedSpec` exists to override; every other command rejects
    /// them by name.
    fn reject_rand_flags(&self, command: &str) -> Result<(), String> {
        if self.rand_trials.is_some() || self.rand_seed.is_some() {
            return Err(format!(
                "--trials / --rand-seed only apply to `sg-bench randomized` or \
                 `sg-bench sweep --task randomized`, not `sg-bench {command}`"
            ));
        }
        Ok(())
    }
}

fn run_cli(args: &[String]) -> Result<i32, String> {
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(2);
    };
    match command.as_str() {
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(0)
        }
        "list" => {
            let (names, flags) = split_flags(&args[1..], false)?;
            if !names.is_empty() {
                return Err(format!("list takes no scenario names, got `{}`", names[0]));
            }
            if flags.search_seed.is_some()
                || flags.search_restarts.is_some()
                || flags.search_iterations.is_some()
            {
                return Err(
                    "--seed / --restarts / --iterations only apply to `sg-bench search`".into(),
                );
            }
            flags.reject_exec_flags("list")?;
            flags.reject_rand_flags("list")?;
            let reg: Vec<Scenario> = apply_filter(registry(), flags.filter.as_deref());
            if reg.is_empty() {
                let valid: Vec<&'static str> = registry().iter().map(|s| s.name).collect();
                return Err(no_match_error(
                    flags.filter.as_deref().unwrap_or(""),
                    &valid,
                ));
            }
            println!("{:<26} {:<9} summary", "name", "task");
            println!("{}", "-".repeat(100));
            for s in &reg {
                println!("{:<26} {:<9} {}", s.name, s.task.name(), s.summary);
            }
            match &flags.filter {
                Some(f) => println!(
                    "\n{} scenario(s) matching `{f}`. `sg-bench run --filter {f}` runs them all.",
                    reg.len()
                ),
                None => println!(
                    "\n{} scenarios. `sg-bench run <name>` or `sg-bench run all`.",
                    reg.len()
                ),
            }
            Ok(0)
        }
        "run" => {
            let (names, flags) = split_flags(&args[1..], false)?;
            if flags.search_seed.is_some()
                || flags.search_restarts.is_some()
                || flags.search_iterations.is_some()
            {
                return Err(
                    "--seed / --restarts / --iterations only apply to `sg-bench search`".into(),
                );
            }
            flags.reject_exec_flags("run")?;
            flags.reject_rand_flags("run")?;
            let scenarios = select_scenarios(&names, &flags, None)?;
            execute(&scenarios, &flags)
        }
        "enumerate" => {
            let (names, flags) = split_flags(&args[1..], false)?;
            if flags.search_seed.is_some()
                || flags.search_restarts.is_some()
                || flags.search_iterations.is_some()
            {
                return Err(
                    "--seed / --restarts / --iterations only apply to `sg-bench search` \
                     (enumeration is exhaustive and deterministic)"
                        .into(),
                );
            }
            flags.reject_exec_flags("enumerate")?;
            flags.reject_rand_flags("enumerate")?;
            let scenarios = select_scenarios(&names, &flags, Some(Task::Enumerate))?;
            execute(&scenarios, &flags)
        }
        "execute" => {
            let (names, flags) = split_flags(&args[1..], false)?;
            if flags.search_seed.is_some()
                || flags.search_restarts.is_some()
                || flags.search_iterations.is_some()
            {
                return Err(
                    "--seed / --restarts / --iterations only apply to `sg-bench search` \
                     (use --exec-seed to vary the fault pattern)"
                        .into(),
                );
            }
            flags.reject_rand_flags("execute")?;
            let mut scenarios = select_scenarios(&names, &flags, Some(Task::Execute))?;
            for sc in &mut scenarios {
                if let Some(p) = flags.exec_faults {
                    sc.exec.drop_prob = p;
                }
                if let Some(seed) = flags.exec_seed {
                    sc.exec.seed = seed;
                }
            }
            execute(&scenarios, &flags)
        }
        "randomized" => {
            let (names, flags) = split_flags(&args[1..], false)?;
            if flags.search_seed.is_some()
                || flags.search_restarts.is_some()
                || flags.search_iterations.is_some()
            {
                return Err(
                    "--seed / --restarts / --iterations only apply to `sg-bench search` \
                     (use --rand-seed to vary the trial streams)"
                        .into(),
                );
            }
            flags.reject_exec_flags("randomized")?;
            let mut scenarios = select_scenarios(&names, &flags, Some(Task::Randomized))?;
            for sc in &mut scenarios {
                if let Some(t) = flags.rand_trials {
                    sc.randomized.trials = t;
                }
                if let Some(seed) = flags.rand_seed {
                    sc.randomized.seed = seed;
                }
            }
            execute(&scenarios, &flags)
        }
        "search" => {
            let (names, flags) = split_flags(&args[1..], false)?;
            flags.reject_exec_flags("search")?;
            flags.reject_rand_flags("search")?;
            let mut scenarios = select_scenarios(&names, &flags, Some(Task::Search))?;
            // Effort overrides apply uniformly to every selected search.
            for sc in &mut scenarios {
                if let Some(seed) = flags.search_seed {
                    sc.search.seed = seed;
                }
                if let Some(r) = flags.search_restarts {
                    sc.search.restarts = r;
                }
                if let Some(i) = flags.search_iterations {
                    sc.search.iterations = i;
                }
            }
            execute(&scenarios, &flags)
        }
        "sweep" => {
            let mut scenario = parse_sweep(&args[1..])?;
            let (_, flags) = split_flags(&args[1..], true)?;
            if scenario.task == Task::Execute {
                if let Some(p) = flags.exec_faults {
                    scenario.exec.drop_prob = p;
                }
                if let Some(seed) = flags.exec_seed {
                    scenario.exec.seed = seed;
                }
            } else {
                flags.reject_exec_flags("sweep --task <non-execute>")?;
            }
            if scenario.task == Task::Randomized {
                if let Some(t) = flags.rand_trials {
                    scenario.randomized.trials = t;
                }
                if let Some(seed) = flags.rand_seed {
                    scenario.randomized.seed = seed;
                }
            } else {
                flags.reject_rand_flags("sweep --task <non-randomized>")?;
            }
            // --filter on a sweep restricts the assembled network list.
            if let Some(f) = &flags.filter {
                if scenario.networks.is_empty() {
                    return Err("sweep: --filter needs --net entries to filter".into());
                }
                scenario.networks.retain(|n| n.name().contains(f.as_str()));
                if scenario.networks.is_empty() {
                    return Err(format!("sweep: no --net network matches `{f}`"));
                }
            }
            execute(&[scenario], &flags)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Keeps the scenarios whose name contains `filter` (all of them when no
/// filter is given).
fn apply_filter(scenarios: Vec<Scenario>, filter: Option<&str>) -> Vec<Scenario> {
    match filter {
        Some(f) => scenarios
            .into_iter()
            .filter(|s| s.name.contains(f))
            .collect(),
        None => scenarios,
    }
}

/// Resolves the scenario selection of `run` / `search` from positional
/// names, `--filter`, and (for `search`) the implicit task restriction.
fn select_scenarios(
    names: &[String],
    flags: &CommonFlags,
    only_task: Option<Task>,
) -> Result<Vec<Scenario>, String> {
    let everything = |reg: Vec<Scenario>| -> Vec<Scenario> {
        match only_task {
            Some(t) => reg.into_iter().filter(|s| s.task == t).collect(),
            None => reg,
        }
    };
    let selected: Vec<Scenario> = if names.len() == 1 && names[0] == "all" {
        everything(registry())
    } else if names.is_empty() {
        if flags.filter.is_none() && only_task.is_none() {
            return Err("run: give scenario names, `all`, or --filter".into());
        }
        everything(registry())
    } else {
        let reg = registry();
        names
            .iter()
            .map(|n| {
                reg.iter()
                    .find(|s| s.name == *n)
                    .cloned()
                    .ok_or_else(|| format!("unknown scenario `{n}` (see `sg-bench list`)"))
            })
            .collect::<Result<_, _>>()?
    };
    if let Some(t) = only_task {
        if let Some(bad) = selected.iter().find(|s| s.task != t) {
            return Err(format!(
                "`{}` is a {} scenario, not a {} one (see `sg-bench list --filter {}`)",
                bad.name,
                bad.task.name(),
                t.name(),
                t.name()
            ));
        }
    }
    // A filter that matches nothing is an error, never a silent no-op:
    // exit non-zero and name every scenario the filter could have hit.
    let valid: Vec<&'static str> = selected.iter().map(|s| s.name).collect();
    let selected = apply_filter(selected, flags.filter.as_deref());
    if selected.is_empty() {
        return Err(match &flags.filter {
            Some(f) => no_match_error(f, &valid),
            None => "no scenario selected".into(),
        });
    }
    Ok(selected)
}

/// The shared zero-match filter error: names every scenario the filter
/// could have hit, so the fix is visible in the message itself.
fn no_match_error(filter: &str, valid: &[&str]) -> String {
    format!(
        "no scenario matches `{filter}`; valid names: {}",
        valid.join(", ")
    )
}

/// One row of [`FLAG_TABLE`].
struct FlagSpec {
    name: &'static str,
    /// The flag consumes the next argument as its value.
    takes_value: bool,
    /// Parsed by [`parse_sweep`]; common flags are parsed by
    /// [`split_flags`] instead.
    sweep_only: bool,
}

/// The single source of truth for the CLI grammar. Both argument
/// passes consult it: [`split_flags`] parses the common flags and
/// value-skips the sweep-only ones, [`parse_sweep`] parses the
/// sweep-only flags and value-skips the common ones. Before this
/// table each pass kept its own hand-maintained skip list, and they
/// drifted: `--seed`, `--restarts` and `--iterations` were missing
/// from `parse_sweep`'s list, so `sg-bench sweep --seed 42 …` died
/// with "unexpected argument" instead of running.
const FLAG_TABLE: &[FlagSpec] = &[
    // Common flags — parsed in `split_flags`.
    FlagSpec {
        name: "--threads",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--sim-threads",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--filter",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--seed",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--restarts",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--iterations",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--faults",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--exec-seed",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--trials",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--rand-seed",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--format",
        takes_value: true,
        sweep_only: false,
    },
    FlagSpec {
        name: "--stats",
        takes_value: false,
        sweep_only: false,
    },
    // Sweep-only flags — parsed in `parse_sweep`.
    FlagSpec {
        name: "--task",
        takes_value: true,
        sweep_only: true,
    },
    FlagSpec {
        name: "--mode",
        takes_value: true,
        sweep_only: true,
    },
    FlagSpec {
        name: "--net",
        takes_value: true,
        sweep_only: true,
    },
    FlagSpec {
        name: "--periods",
        takes_value: true,
        sweep_only: true,
    },
    FlagSpec {
        name: "--degrees",
        takes_value: true,
        sweep_only: true,
    },
    FlagSpec {
        name: "--nonsystolic",
        takes_value: false,
        sweep_only: true,
    },
];

fn flag_spec(name: &str) -> Option<&'static FlagSpec> {
    FLAG_TABLE.iter().find(|f| f.name == name)
}

/// Separates positional arguments from the common flags. Sweep-specific
/// flags are handled by [`parse_sweep`] and only *allowed* (skipped)
/// here when `sweep` is set — `sg-bench run` rejects them rather than
/// silently ignoring a user's attempted customization.
fn split_flags(args: &[String], sweep: bool) -> Result<(Vec<String>, CommonFlags), String> {
    let mut names = Vec::new();
    let mut flags = CommonFlags {
        threads: 0,
        sim_threads: 0,
        format: Format::Text,
        stats: false,
        filter: None,
        search_seed: None,
        search_restarts: None,
        search_iterations: None,
        exec_faults: None,
        exec_seed: None,
        rand_trials: None,
        rand_seed: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                flags.threads = arg_value(args, i, "--threads")?
                    .parse()
                    .map_err(|_| "--threads takes an integer".to_string())?;
            }
            "--sim-threads" => {
                i += 1;
                flags.sim_threads = arg_value(args, i, "--sim-threads")?
                    .parse()
                    .map_err(|_| "--sim-threads takes an integer".to_string())?;
            }
            "--filter" => {
                i += 1;
                flags.filter = Some(arg_value(args, i, "--filter")?.to_string());
            }
            "--seed" => {
                i += 1;
                flags.search_seed = Some(
                    arg_value(args, i, "--seed")?
                        .parse()
                        .map_err(|_| "--seed takes an integer".to_string())?,
                );
            }
            "--restarts" => {
                i += 1;
                let r: usize = arg_value(args, i, "--restarts")?
                    .parse()
                    .map_err(|_| "--restarts takes an integer".to_string())?;
                if r == 0 {
                    return Err("--restarts must be at least 1".into());
                }
                flags.search_restarts = Some(r);
            }
            "--iterations" => {
                i += 1;
                flags.search_iterations = Some(
                    arg_value(args, i, "--iterations")?
                        .parse()
                        .map_err(|_| "--iterations takes an integer".to_string())?,
                );
            }
            "--faults" => {
                i += 1;
                let p: f64 = arg_value(args, i, "--faults")?
                    .parse()
                    .map_err(|_| "--faults takes a probability".to_string())?;
                if !(0.0..1.0).contains(&p) {
                    return Err(format!("--faults must be in [0, 1), got {p}"));
                }
                flags.exec_faults = Some(p);
            }
            "--exec-seed" => {
                i += 1;
                flags.exec_seed = Some(
                    arg_value(args, i, "--exec-seed")?
                        .parse()
                        .map_err(|_| "--exec-seed takes an integer".to_string())?,
                );
            }
            "--trials" => {
                i += 1;
                let t: usize = arg_value(args, i, "--trials")?
                    .parse()
                    .map_err(|_| "--trials takes an integer".to_string())?;
                if t == 0 {
                    return Err("--trials must be at least 1".into());
                }
                flags.rand_trials = Some(t);
            }
            "--rand-seed" => {
                i += 1;
                flags.rand_seed = Some(
                    arg_value(args, i, "--rand-seed")?
                        .parse()
                        .map_err(|_| "--rand-seed takes an integer".to_string())?,
                );
            }
            "--format" => {
                i += 1;
                flags.format = match arg_value(args, i, "--format")? {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--stats" => flags.stats = true,
            flag if flag.starts_with("--") => match flag_spec(flag) {
                Some(spec) if spec.sweep_only => {
                    if !sweep {
                        return Err(format!("`{flag}` only applies to `sg-bench sweep`"));
                    }
                    if spec.takes_value {
                        i += 1; // skip the flag's value; parse_sweep consumed it
                    }
                }
                // A common flag in the table without a parse arm above
                // is a bug the `flag_table` tests catch; at runtime it
                // is indistinguishable from an unknown flag.
                _ => return Err(format!("unknown flag `{flag}`")),
            },
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    Ok((names, flags))
}

fn arg_value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_sweep(args: &[String]) -> Result<Scenario, String> {
    let mut task = None;
    let mut mode = None;
    let mut networks: Vec<Network> = Vec::new();
    let mut periods: Vec<Period> = Vec::new();
    let mut degrees: Vec<usize> = Vec::new();
    let mut nonsystolic = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--task" => {
                i += 1;
                task = Some(match arg_value(args, i, "--task")? {
                    "bound" => Task::Bound,
                    "simulate" => Task::Simulate,
                    "compare" => Task::Compare,
                    "matrices" => Task::Matrices,
                    "enumerate" => Task::Enumerate,
                    "execute" => Task::Execute,
                    "randomized" => Task::Randomized,
                    other => return Err(format!("unknown task `{other}`")),
                });
            }
            "--mode" => {
                i += 1;
                mode = Some(match arg_value(args, i, "--mode")? {
                    "directed" => Mode::Directed,
                    "half-duplex" | "hd" => Mode::HalfDuplex,
                    "full-duplex" | "fd" => Mode::FullDuplex,
                    other => return Err(format!("unknown mode `{other}`")),
                });
            }
            "--net" => {
                i += 1;
                networks.push(Network::from_spec(arg_value(args, i, "--net")?)?);
            }
            "--periods" => {
                i += 1;
                let v = arg_value(args, i, "--periods")?;
                let (lo, hi) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--periods takes LO..HI, got `{v}`"))?;
                let lo: usize = lo.trim().parse().map_err(|_| "bad period".to_string())?;
                let hi: usize = hi
                    .trim()
                    .trim_start_matches('=')
                    .parse()
                    .map_err(|_| "bad period".to_string())?;
                if lo < 2 || hi < lo {
                    return Err(format!("--periods: need 2 <= LO <= HI, got {lo}..{hi}"));
                }
                periods.extend((lo..=hi).map(Period::Systolic));
            }
            "--nonsystolic" => nonsystolic = true,
            "--degrees" => {
                i += 1;
                for d in arg_value(args, i, "--degrees")?.split(',') {
                    degrees.push(
                        d.trim()
                            .parse()
                            .map_err(|_| format!("`{d}` is not a degree"))?,
                    );
                }
            }
            other => match flag_spec(other) {
                // A common flag: `split_flags` parses it; here only its
                // value is skipped so positional scanning stays aligned.
                Some(spec) if !spec.sweep_only => {
                    if spec.takes_value {
                        i += 1;
                    }
                }
                _ => return Err(format!("sweep: unexpected argument `{other}`")),
            },
        }
        i += 1;
    }
    if nonsystolic {
        periods.push(Period::NonSystolic);
    }
    let task = task.ok_or("sweep: --task is required")?;
    let mode = mode.ok_or("sweep: --mode is required")?;
    if networks.is_empty() && degrees.is_empty() {
        return Err("sweep: give at least one --net or --degrees".into());
    }
    if matches!(task, Task::Bound) && periods.is_empty() {
        return Err("sweep: bound task needs --periods and/or --nonsystolic".into());
    }
    if matches!(task, Task::Enumerate) && !periods.iter().any(|p| matches!(p, Period::Systolic(_)))
    {
        return Err("sweep: enumerate task needs --periods (finite systolic periods)".into());
    }
    Ok(Scenario {
        name: "sweep",
        summary: "ad-hoc sweep assembled from the command line",
        task,
        mode,
        networks,
        degrees,
        periods,
        weights: WeightScheme::Unit,
        checks: Vec::new(),
        search: sg_scenario::SearchSpec::default(),
        exec: sg_scenario::ExecSpec::default(),
        enumerate: sg_scenario::EnumerateSpec::default(),
        randomized: sg_scenario::RandomizedSpec::default(),
    })
}

/// The one-line thread echo of text output: the resolved global thread
/// *budget*, plus the per-unit sim override when one was given.
///
/// Worker-vs-budget convention (see `sg_sim::pool::PoolEngine::new`): a
/// budget of `t` means the calling thread plus `t - 1` spawned pool
/// workers. A budget of 1 spawns no workers at all — the batch runs
/// sequentially on the calling thread — so the echo says exactly that
/// instead of claiming "1 worker(s)".
fn thread_echo(opts: &BatchOptions) -> String {
    let budget = opts.effective_threads();
    let mut echo = if budget <= 1 {
        "threads: 1 (sequential — no pool workers spawned)".to_string()
    } else {
        format!(
            "threads: {budget} ({} pool worker(s) + the calling thread)",
            budget - 1
        )
    };
    if opts.sim_threads > 0 {
        echo.push_str(&format!(", {} sim thread(s) per unit", opts.sim_threads));
    }
    echo
}

fn execute(scenarios: &[Scenario], flags: &CommonFlags) -> Result<i32, String> {
    let opts = BatchOptions {
        threads: flags.threads,
        sim_threads: flags.sim_threads,
        ..Default::default()
    };
    let started = std::time::Instant::now();
    if flags.format == Format::Text {
        println!("{}", thread_echo(&opts));
    }
    let report = run_batch(scenarios, &opts);
    match flags.format {
        Format::Text => {
            for outcome in &report.outcomes {
                println!("{}", outcome.render_text());
            }
            println!(
                "{} scenario(s) in {:.2}s",
                report.outcomes.len(),
                started.elapsed().as_secs_f64()
            );
        }
        Format::Json => {
            for row in report.tagged_rows() {
                println!("{}", to_json_line(&row));
            }
        }
        Format::Csv => {
            print!("{}", to_csv(&report.tagged_rows()));
        }
    }
    if flags.stats {
        eprintln!("cache: {}", report.cache);
    }
    if report.checks_ok() {
        Ok(0)
    } else {
        eprintln!("paper-check MISMATCH — see output above");
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_with_filter(f: &str) -> CommonFlags {
        CommonFlags {
            threads: 0,
            sim_threads: 0,
            format: Format::Text,
            stats: false,
            filter: Some(f.to_string()),
            search_seed: None,
            search_restarts: None,
            search_iterations: None,
            exec_faults: None,
            exec_seed: None,
            rand_trials: None,
            rand_seed: None,
        }
    }

    #[test]
    fn thread_flags_parse_and_echo() {
        let args: Vec<String> = ["fig5", "--threads", "3", "--sim-threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (names, flags) = split_flags(&args, false).expect("thread flags parse");
        assert_eq!(names, ["fig5"]);
        assert_eq!(flags.threads, 3);
        assert_eq!(flags.sim_threads, 2);
        let opts = BatchOptions {
            threads: flags.threads,
            sim_threads: flags.sim_threads,
            ..Default::default()
        };
        // Budget 3 = 2 spawned pool workers + the calling thread
        // (`PoolEngine::new` spawns `threads - 1`).
        assert_eq!(
            thread_echo(&opts),
            "threads: 3 (2 pool worker(s) + the calling thread), 2 sim thread(s) per unit"
        );
        // Budget 1 spawns no workers — the echo must not claim any.
        let sequential = BatchOptions {
            threads: 1,
            ..Default::default()
        };
        assert_eq!(
            thread_echo(&sequential),
            "threads: 1 (sequential — no pool workers spawned)"
        );
        // With no --sim-threads the echo shows only the resolved global
        // budget — the per-unit split depends on the unit count.
        let auto = BatchOptions::default();
        let echo = thread_echo(&auto);
        assert!(
            echo.starts_with(&format!("threads: {}", auto.effective_threads())),
            "{echo}"
        );
        assert_eq!(echo.contains("sequential"), auto.effective_threads() <= 1);
    }

    /// A value the flag's own parser accepts — so table-driven probes
    /// below exercise the real parse arms, not just error paths.
    fn valid_value(flag: &str) -> &'static str {
        match flag {
            "--threads" | "--sim-threads" | "--seed" | "--restarts" | "--iterations"
            | "--exec-seed" | "--trials" | "--rand-seed" => "3",
            "--faults" => "0.05",
            "--filter" => "fig",
            "--format" => "json",
            "--task" => "bound",
            "--mode" => "fd",
            "--net" => "cycle:8",
            "--periods" => "3..4",
            "--degrees" => "2,3",
            f => panic!("valid_value: unknown flag `{f}`"),
        }
    }

    /// Every flag `split_flags` parses must be value-skipped by
    /// `parse_sweep`, and vice versa — the drift this table exists to
    /// prevent (`--seed`/`--restarts`/`--iterations` used to be
    /// missing from `parse_sweep`'s hand-maintained skip list, so
    /// `sg-bench sweep --seed 42 …` died with "unexpected argument").
    #[test]
    fn every_table_flag_is_parsed_by_one_pass_and_skipped_by_the_other() {
        let base = [
            "--task",
            "bound",
            "--mode",
            "fd",
            "--net",
            "cycle:8",
            "--periods",
            "3..4",
        ];
        for spec in FLAG_TABLE {
            let mut args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
            args.push(spec.name.to_string());
            if spec.takes_value {
                args.push(valid_value(spec.name).to_string());
            }
            let scenario = parse_sweep(&args)
                .unwrap_or_else(|e| panic!("parse_sweep must accept `{}`: {e}", spec.name));
            if !spec.sweep_only {
                // A skipped common flag must not disturb the sweep's
                // own parse (its value read as a positional would).
                assert_eq!(
                    scenario.networks.len(),
                    1,
                    "`{}`'s value must not be read as a positional",
                    spec.name
                );
            }
            let (names, _) = split_flags(&args, true)
                .unwrap_or_else(|e| panic!("split_flags must accept `{}`: {e}", spec.name));
            assert!(
                names.is_empty(),
                "`{}`'s value leaked into positionals: {names:?}",
                spec.name
            );
        }
    }

    /// The whole grammar at once: one command line carrying every flag
    /// in the table survives both passes with the common flags parsed.
    #[test]
    fn both_passes_accept_a_command_line_with_every_flag() {
        let mut args: Vec<String> = Vec::new();
        for spec in FLAG_TABLE {
            args.push(spec.name.to_string());
            if spec.takes_value {
                args.push(valid_value(spec.name).to_string());
            }
        }
        let scenario = parse_sweep(&args).expect("sweep parses the full grammar");
        assert!(scenario.periods.contains(&Period::NonSystolic));
        let (names, flags) = split_flags(&args, true).expect("split parses the full grammar");
        assert!(names.is_empty(), "{names:?}");
        assert_eq!(flags.threads, 3);
        assert_eq!(flags.search_seed, Some(3));
        assert_eq!(flags.search_restarts, Some(3));
        assert_eq!(flags.search_iterations, Some(3));
        assert_eq!(flags.exec_faults, Some(0.05));
        assert_eq!(flags.exec_seed, Some(3));
        assert_eq!(flags.rand_trials, Some(3));
        assert_eq!(flags.rand_seed, Some(3));
        assert_eq!(flags.format, Format::Json);
        assert!(flags.stats);
    }

    /// Randomized flags stay with the randomized task: every other
    /// command rejects them by name instead of silently ignoring them.
    #[test]
    fn rand_flags_are_rejected_outside_randomized_and_randomized_sweeps() {
        for cmd in ["list", "run", "enumerate", "execute", "search"] {
            for flag in [["--trials", "50"], ["--rand-seed", "7"]] {
                let args: Vec<String> = [cmd, flag[0], flag[1]]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let err =
                    run_cli(&args).expect_err("rand flags outside randomized must be rejected");
                assert!(
                    err.contains("--trials / --rand-seed only apply"),
                    "`{cmd} {}`: {err}",
                    flag[0]
                );
            }
        }
        // A non-randomized sweep rejects them too…
        let args: Vec<String> = [
            "sweep", "--task", "simulate", "--mode", "fd", "--net", "cycle:8", "--trials", "50",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run_cli(&args).expect_err("non-randomized sweep rejects rand flags");
        assert!(err.contains("--trials / --rand-seed only apply"), "{err}");
        // …while a randomized sweep parses the task.
        let args: Vec<String> = ["--task", "randomized", "--mode", "fd", "--net", "cycle:8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let scenario = parse_sweep(&args).expect("randomized sweeps parse");
        assert_eq!(scenario.task, Task::Randomized);
    }

    #[test]
    fn trials_flag_validates_its_count() {
        let args: Vec<String> = ["randomized", "--trials", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = split_flags(&args[1..], false).expect_err("zero trials rejected");
        assert!(err.contains("--trials must be at least 1"), "{err}");
    }

    #[test]
    fn randomized_selects_exactly_the_randomized_scenarios() {
        let picked = select_scenarios(&[], &flags_with_filter("rand-"), Some(Task::Randomized))
            .expect("matching filter selects");
        assert_eq!(picked.len(), 4);
        assert!(picked.iter().all(|s| s.task == Task::Randomized));
    }

    /// Exec flags stay with the execute task: every other command
    /// rejects them by name instead of silently ignoring them.
    #[test]
    fn exec_flags_are_rejected_outside_execute_and_execute_sweeps() {
        for cmd in ["list", "run", "enumerate", "search"] {
            for flag in [["--faults", "0.05"], ["--exec-seed", "7"]] {
                let args: Vec<String> = [cmd, flag[0], flag[1]]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let err = run_cli(&args).expect_err("exec flags outside execute must be rejected");
                assert!(
                    err.contains("--faults / --exec-seed only apply"),
                    "`{cmd} {}`: {err}",
                    flag[0]
                );
            }
        }
        // A non-execute sweep rejects them too…
        let args: Vec<String> = [
            "sweep", "--task", "simulate", "--mode", "fd", "--net", "cycle:8", "--faults", "0.05",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run_cli(&args).expect_err("non-execute sweep rejects exec flags");
        assert!(err.contains("--faults / --exec-seed only apply"), "{err}");
        // …while an execute sweep parses into the scenario's ExecSpec.
        let args: Vec<String> = ["--task", "execute", "--mode", "fd", "--net", "hypercube:3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let scenario = parse_sweep(&args).expect("execute sweeps parse");
        assert_eq!(scenario.task, Task::Execute);
    }

    #[test]
    fn faults_flag_validates_its_probability() {
        for bad in ["1.0", "-0.1", "lots"] {
            let args: Vec<String> = ["execute", "--faults", bad]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = split_flags(&args[1..], false).expect_err("bad probability rejected");
            assert!(err.contains("--faults"), "`{bad}`: {err}");
        }
    }

    #[test]
    fn execute_selects_exactly_the_execute_scenarios() {
        let picked = select_scenarios(&[], &flags_with_filter("exec-"), Some(Task::Execute))
            .expect("matching filter selects");
        assert_eq!(picked.len(), 4);
        assert!(picked.iter().all(|s| s.task == Task::Execute));
        // And a run-task scenario is refused by name.
        let err = select_scenarios(
            &["fig4".into()],
            &flags_with_filter("fig"),
            Some(Task::Execute),
        )
        .expect_err("non-execute scenario refused");
        assert!(
            err.contains("not a execute one") || err.contains("is a"),
            "{err}"
        );
    }

    /// Sweep-only flags stay sweep-only: `sg-bench run` rejects each
    /// one by name rather than silently ignoring it.
    #[test]
    fn sweep_only_flags_are_rejected_outside_sweep() {
        for spec in FLAG_TABLE.iter().filter(|s| s.sweep_only) {
            let mut args = vec![spec.name.to_string()];
            if spec.takes_value {
                args.push(valid_value(spec.name).to_string());
            }
            let err =
                split_flags(&args, false).expect_err("sweep-only flag must be rejected by `run`");
            assert!(
                err.contains("only applies to `sg-bench sweep`"),
                "`{}`: {err}",
                spec.name
            );
        }
    }

    #[test]
    fn sim_threads_rejects_non_integers() {
        let args: Vec<String> = ["run", "--sim-threads", "lots"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = split_flags(&args, false).expect_err("non-integer rejected");
        assert!(err.contains("--sim-threads takes an integer"), "{err}");
    }

    #[test]
    fn zero_match_filter_is_an_error_listing_valid_names() {
        // `sg-bench enumerate --filter zzz` must fail loudly, not run
        // nothing, and the error must teach the valid names.
        let err = select_scenarios(&[], &flags_with_filter("zzz"), Some(Task::Enumerate))
            .expect_err("a filter matching zero scenarios is an error");
        assert!(err.contains("no scenario matches `zzz`"), "{err}");
        for name in ["enum-hypercube", "enum-torus-3x3", "enum-knodel"] {
            assert!(err.contains(name), "error must list `{name}`: {err}");
        }
        // Only same-task names are suggested for a task-restricted
        // command.
        assert!(!err.contains("fig4"), "{err}");
    }

    #[test]
    fn zero_match_filter_fails_run_and_list_too() {
        let err = select_scenarios(&[], &flags_with_filter("zzz"), None)
            .expect_err("run --filter zzz is an error");
        assert!(
            err.contains("fig4"),
            "run suggests the whole registry: {err}"
        );
        let code = run_cli(&["list".into(), "--filter".into(), "zzz".into()]);
        assert!(code.is_err(), "list --filter zzz must exit non-zero");
    }

    #[test]
    fn matching_filter_still_selects() {
        let picked = select_scenarios(&[], &flags_with_filter("enum-"), Some(Task::Enumerate))
            .expect("matching filter selects");
        assert!(picked.len() >= 7);
        assert!(picked.iter().all(|s| s.task == Task::Enumerate));
    }
}
