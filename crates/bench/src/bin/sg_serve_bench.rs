//! `sg-serve-bench`: the load generator for the `sg-serve` query daemon.
//!
//! Drives `--connections` concurrent TCP connections, each issuing
//! `--queries` JSONL queries drawn from a fixed cross-family workload,
//! then writes the `BENCH_serve.json` trajectory file (queries/sec,
//! cache hit rate, latency percentiles, single-flight verification).
//!
//! With no `--addr`, an in-process server is started on a free port and
//! gracefully shut down (drain verified) at the end — the default for
//! local runs. With `--addr`, an already-running daemon is targeted and
//! drain is the caller's to verify (CI sends SIGTERM and checks the
//! exit code).
//!
//! Exits nonzero on any non-shed error reply, a failed drain, or a
//! single-flight violation (more computes than distinct queries).

use sg_serve::json::{self, Json};
use sg_serve::server::{Server, ServerConfig};
use sg_serve::Client;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// The query mix: small, cross-family, heavily repeated — the shape a
/// daemon fronting table lookups actually sees. Every line is valid, so
/// any error reply is a server defect (or load shedding, counted apart).
const WORKLOAD: &[&str] = &[
    r#"{"op":"bound","net":"hypercube:5","mode":"fd","period":4}"#,
    r#"{"op":"bound","net":"hypercube:5","mode":"fd","period":"inf"}"#,
    r#"{"op":"bound","net":"hypercube:6","mode":"hd","period":3}"#,
    r#"{"op":"bound","net":"cycle:16","mode":"fd","period":2}"#,
    r#"{"op":"bound","net":"cycle:16","mode":"fd","period":3}"#,
    r#"{"op":"bound","net":"path:32","mode":"hd","period":4}"#,
    r#"{"op":"bound","net":"complete:12","mode":"fd","period":3}"#,
    r#"{"op":"bound","net":"grid:6x6","mode":"hd","period":4}"#,
    r#"{"op":"bound","net":"torus:6x6","mode":"fd","period":4}"#,
    r#"{"op":"bound","net":"tree:2,5","mode":"hd","period":3}"#,
    r#"{"op":"bound","net":"db:2,6","mode":"hd","period":4}"#,
    r#"{"op":"bound","net":"dbdir:2,6","mode":"directed","period":4}"#,
    r#"{"op":"bound","net":"kautz:2,5","mode":"hd","period":4}"#,
    r#"{"op":"bound","net":"kautzdir:2,5","mode":"directed","period":3}"#,
    r#"{"op":"bound","net":"se:6","mode":"hd","period":4}"#,
    r#"{"op":"bound","net":"ccc:4","mode":"fd","period":4}"#,
    r#"{"op":"bound","net":"bf:2,4","mode":"hd","period":3}"#,
    r#"{"op":"bound","net":"wbf:2,4","mode":"fd","period":4}"#,
    r#"{"op":"bound","net":"wbfdir:2,4","mode":"directed","period":4}"#,
    r#"{"op":"bound","net":"knodel:3,16","mode":"fd","period":3}"#,
    r#"{"op":"bound","net":"rr:64,3,7","mode":"fd","period":4}"#,
    r#"{"op":"certificate","net":"path:16","mode":"hd"}"#,
    r#"{"op":"certificate","net":"cycle:16","mode":"fd"}"#,
    r#"{"op":"certificate","net":"hypercube:4","mode":"fd"}"#,
];

struct Opts {
    addr: Option<String>,
    connections: usize,
    queries: usize,
    max_inflight: usize,
    out: std::path::PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: sg-serve-bench [--addr HOST:PORT] [--connections N] [--queries N] \
         [--max-inflight N] [--out FILE]"
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: None,
        connections: 1000,
        queries: 6,
        max_inflight: 4096,
        out: match std::env::var("SG_BENCH_SERVE_JSON") {
            Ok(p) => p.into(),
            Err(_) => {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
            }
        },
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        let value = args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("sg-serve-bench: {flag} needs a value");
            usage()
        });
        let num = |v: &str| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("sg-serve-bench: {flag} needs a number, got `{v}`");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(value),
            "--connections" => opts.connections = num(&value),
            "--queries" => opts.queries = num(&value),
            "--max-inflight" => opts.max_inflight = num(&value),
            "--out" => opts.out = value.into(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("sg-serve-bench: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    if opts.connections == 0 || opts.queries == 0 {
        eprintln!("sg-serve-bench: --connections and --queries must be positive");
        usage()
    }
    opts
}

/// What one connection worker measured.
#[derive(Default)]
struct WorkerOutcome {
    latencies_us: Vec<u64>,
    errors: usize,
    shed: usize,
    io_failures: usize,
}

fn run_worker(addr: &str, queries: usize, offset: usize, barrier: &Barrier) -> WorkerOutcome {
    let mut out = WorkerOutcome::default();
    let mut client = match Client::connect_retry(addr, 100) {
        Ok(c) => c,
        Err(_) => {
            // Count the whole quota as I/O failures so the totals add up.
            barrier.wait();
            out.io_failures = queries;
            return out;
        }
    };
    let _ = client.set_timeout(Some(Duration::from_secs(60)));
    barrier.wait();
    for q in 0..queries {
        let line = WORKLOAD[(offset + q) % WORKLOAD.len()];
        let t0 = Instant::now();
        match client.roundtrip(line) {
            Ok(reply) => {
                out.latencies_us.push(t0.elapsed().as_micros() as u64);
                match json::parse(&reply).ok().and_then(|v| {
                    v.get("ok")
                        .and_then(Json::as_bool)
                        .map(|ok| (ok, v.get("error").and_then(Json::as_str).map(String::from)))
                }) {
                    Some((true, _)) => {}
                    Some((false, Some(e))) if e == "overloaded" => out.shed += 1,
                    _ => out.errors += 1,
                }
            }
            Err(_) => out.io_failures += 1,
        }
    }
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let opts = parse_opts();

    // In-process server unless an external address was given.
    let server = if opts.addr.is_none() {
        let cfg = ServerConfig {
            max_inflight: opts.max_inflight,
            ..ServerConfig::default()
        };
        Some(Server::bind(cfg).unwrap_or_else(|e| {
            eprintln!("sg-serve-bench: bind failed: {e}");
            std::process::exit(1);
        }))
    } else {
        None
    };
    let addr = opts
        .addr
        .clone()
        .unwrap_or_else(|| server.as_ref().unwrap().local_addr().to_string());
    println!(
        "sg-serve-bench: {} connections x {} queries against {addr}",
        opts.connections, opts.queries
    );

    // All workers connect, meet at the barrier, then fire together.
    let barrier = Barrier::new(opts.connections + 1);
    let mut outcomes: Vec<WorkerOutcome> = Vec::with_capacity(opts.connections);
    let elapsed = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|c| {
                let addr = addr.as_str();
                let barrier = &barrier;
                std::thread::Builder::new()
                    .name(format!("lg-{c}"))
                    .stack_size(128 * 1024)
                    .spawn_scoped(s, move || run_worker(addr, opts.queries, c, barrier))
                    .expect("spawn worker")
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        outcomes.extend(handles.into_iter().map(|h| h.join().expect("worker")));
        t0.elapsed()
    });

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let shed: usize = outcomes.iter().map(|o| o.shed).sum();
    let io_failures: usize = outcomes.iter().map(|o| o.io_failures).sum();
    let answered = latencies.len();
    let qps = answered as f64 / elapsed.as_secs_f64().max(1e-9);

    // Cache counters from the server itself.
    let stats_line = Client::connect_retry(addr.as_str(), 10)
        .and_then(|mut c| c.roundtrip(r#"{"op":"stats"}"#))
        .ok();
    let stat = |key: &str| -> i64 {
        stats_line
            .as_deref()
            .and_then(|l| json::parse(l).ok())
            .and_then(|v| v.get(key).and_then(Json::as_int))
            .unwrap_or(-1)
    };
    let sf_lookups = stat("singleflight_lookups");
    let sf_computes = stat("singleflight_computes");
    let oracle_computes = stat("oracle_computes");
    let cache_hit_rate = if sf_lookups > 0 {
        (sf_lookups - sf_computes) as f64 / sf_lookups as f64
    } else {
        0.0
    };
    // Single-flight end-to-end: thousands of concurrent identical
    // queries must collapse to at most one compute per distinct line.
    let distinct = WORKLOAD.len().min(opts.connections * opts.queries);
    let singleflight_ok = sf_computes >= 0 && (sf_computes as usize) <= distinct;

    // Graceful shutdown of the in-process server, drain verified.
    let graceful_drain = match server {
        Some(server) => {
            server.handle().shutdown();
            let report = server.join();
            report.drained
        }
        // External daemon: its own SIGTERM exit code certifies the drain.
        None => true,
    };

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json_out = format!(
        "{{\n  \"suite\": \"serve\",\n  \"generated_unix\": {unix_secs},\n  \
         \"connections\": {},\n  \"queries_per_connection\": {},\n  \
         \"total_queries\": {},\n  \"answered\": {answered},\n  \"errors\": {errors},\n  \
         \"shed\": {shed},\n  \"io_failures\": {io_failures},\n  \
         \"elapsed_ms\": {},\n  \"queries_per_sec\": {qps:.1},\n  \
         \"latency_p50_us\": {},\n  \"latency_p99_us\": {},\n  \"latency_max_us\": {},\n  \
         \"cache_hit_rate\": {cache_hit_rate:.4},\n  \
         \"singleflight_lookups\": {sf_lookups},\n  \
         \"singleflight_computes\": {sf_computes},\n  \
         \"distinct_queries\": {distinct},\n  \
         \"singleflight_ok\": {singleflight_ok},\n  \
         \"oracle_computes\": {oracle_computes},\n  \
         \"graceful_drain\": {graceful_drain}\n}}\n",
        opts.connections,
        opts.queries,
        opts.connections * opts.queries,
        elapsed.as_millis(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0),
    );
    if let Err(e) = std::fs::write(&opts.out, &json_out) {
        eprintln!("sg-serve-bench: writing {} failed: {e}", opts.out.display());
        std::process::exit(1);
    }
    print!("{json_out}");
    println!("sg-serve-bench: wrote {}", opts.out.display());

    if errors > 0 || io_failures > 0 || !graceful_drain || !singleflight_ok {
        eprintln!(
            "sg-serve-bench: FAILED (errors {errors}, io failures {io_failures}, \
             drained {graceful_drain}, single-flight ok {singleflight_ok})"
        );
        std::process::exit(1);
    }
}
