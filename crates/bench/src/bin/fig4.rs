//! Regenerates Fig. 4: the general systolic lower-bound coefficients
//! `e(s)` for the directed and half-duplex modes.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin fig4
//! ```

use systolic_gossip::sg_bounds::pfun::BoundMode;
use systolic_gossip::sg_bounds::{lambda_star, tables};

fn main() {
    println!("{}", tables::fig4().render());
    println!("fixpoints λ* of λ·√(p_⌈s/2⌉(λ))·√(p_⌊s/2⌋(λ)) = 1:");
    for p in tables::standard_periods() {
        let l = lambda_star(BoundMode::HalfDuplex, p);
        println!("  {:>5}: λ* = {:.10}", p.label(), l);
    }
    println!("\npaper values (Fig. 4): 2.8808 1.8133 1.6502 1.5363 1.5021 1.4721 | ∞: 1.4404");
}
