//! The Section 7 extension: matrix-norm lower bounds on weighted-digraph
//! diameters, compared against exact Dijkstra diameters.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin diameter_bounds
//! ```

use systolic_gossip::prelude::*;
use systolic_gossip::sg_delay::weighted::weighted_diameter_bound;
use systolic_gossip::sg_graphs::weighted::WeightedDigraph;

fn main() {
    println!(
        "{:<22} {:>6} {:>8} {:>9} {:>10}",
        "digraph", "n", "λ*", "bound", "true diam"
    );
    let cases: Vec<(String, WeightedDigraph)> = vec![
        (
            "DB->(2,8) unit".into(),
            WeightedDigraph::unit_weights(&Network::DeBruijnDirected { d: 2, dd: 8 }.build()),
        ),
        (
            "DB->(3,5) unit".into(),
            WeightedDigraph::unit_weights(&Network::DeBruijnDirected { d: 3, dd: 5 }.build()),
        ),
        (
            "K->(2,7) unit".into(),
            WeightedDigraph::unit_weights(&Network::KautzDirected { d: 2, dd: 7 }.build()),
        ),
        ("DB->(2,7) weights 1/3".into(), {
            let g = Network::DeBruijnDirected { d: 2, dd: 7 }.build();
            WeightedDigraph::from_arcs(
                g.vertex_count(),
                g.arcs()
                    .map(|a| (a.from as usize, a.to as usize, if a.to % 2 == 0 { 1 } else { 3 })),
            )
        }),
        (
            "WBF->(2,5) unit".into(),
            WeightedDigraph::unit_weights(
                &Network::WrappedButterflyDirected { d: 2, dd: 5 }.build(),
            ),
        ),
    ];
    for (name, wg) in cases {
        let b = weighted_diameter_bound(&wg, BoundOpts::default());
        let diam = wg.diameter();
        match (b, diam) {
            (Some(b), Some(d)) => {
                assert!(b.rounds <= d as f64 + 1e-9, "{name}: UNSOUND");
                println!(
                    "{:<22} {:>6} {:>8.4} {:>9.2} {:>10}",
                    name,
                    wg.vertex_count(),
                    b.lambda_star,
                    b.rounds,
                    d
                );
            }
            _ => println!("{:<22} — no bound / not strongly connected", name),
        }
    }
    println!("\nthe bound is nearly tight on the shift networks (λ* ≈ 1/d ⟹ bound ≈ log_d n = D).");
}
