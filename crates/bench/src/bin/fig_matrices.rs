//! Regenerates the matrix-construction figures: Fig. 1 (`Mx(λ)` with
//! k = 2), Fig. 2 (the rank-1 block `B_{i,j}`), Fig. 3 (`Nx(λ)` and
//! `Ox(λ)`), and Fig. 7 (the banded full-duplex `Mx(λ)` with s = 4).
//!
//! ```bash
//! cargo run -p sg-bench --release --bin fig_matrices
//! ```

use systolic_gossip::sg_delay::fullduplex::full_duplex_mx;
use systolic_gossip::sg_delay::local::LocalMatrices;
use systolic_gossip::sg_protocol::local::BlockPattern;

fn main() {
    // The paper's Fig. 1 uses a k = 2 local pattern; take
    // (l0, r0, l1, r1) = (2, 1, 1, 2), s = 6, h = 3 block repetitions.
    let pattern = BlockPattern::from_blocks(vec![2, 1], vec![1, 2]);
    let lm = LocalMatrices::new(pattern.clone(), 3);
    let lambda = 0.6;

    println!("Fig. 1 — Mx(λ) for k = 2, pattern l = {:?}, r = {:?}, λ = {lambda}", pattern.l, pattern.r);
    println!("(rows: left activations, block-major, reverse round order;");
    println!(" cols: right activations, block-major, forward round order)\n");
    print!("{}", lm.mx(lambda).render(4));

    println!("\nFig. 2 — the block B_{{i,j}} = λ^d_{{i,j}}·λ0_l (λ0_r)^T structure:");
    println!("d_(0,0) = {}, d_(0,1) = {}, d_(1,2) = {}", lm.d(0, 0), lm.d(0, 1), lm.d(1, 2));
    println!("every nonzero block above is λ^d · (1, λ, …)·(1, λ, …)^T — rank 1.\n");

    println!("Fig. 3 — Nx(λ) (left) and Ox(λ) (right):");
    println!("\nNx({lambda}):");
    print!("{}", lm.nx(lambda).render(4));
    println!("\nOx({lambda}):");
    print!("{}", lm.ox(lambda).render(4));

    println!("\nsemi-eigenvector e of Lemma 4.2: {:?}", lm.semi_eigenvector(lambda));
    println!(
        "semi-eigenvalues: Nx → λ·p_Σr = {:.6}, Ox → λ·p_Σl = {:.6}",
        lm.nx_semi_eigenvalue(lambda),
        lm.ox_semi_eigenvalue(lambda)
    );

    println!("\nFig. 7 — full-duplex Mx(λ) for s = 4 over 8 rounds, λ = {lambda}:");
    print!("{}", full_duplex_mx(4, 8, lambda).render(4));
    println!("\neach row carries λ, λ², λ³ on the superdiagonal band (delays 1..s−1).");
}
