//! Regenerates Fig. 6: non-systolic half-duplex lower bounds for the
//! specific networks, with the diameter comparison column.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin fig6
//! ```

use systolic_gossip::sg_bounds::tables;

fn main() {
    println!("{}", tables::fig6().render());
    println!("paper spot values: WBF(2,D) → 1.9750; DB(2,D) → 1.5876; baseline 1.4404.");
}
