//! Regenerates Fig. 8: full-duplex lower bounds. The general row solves
//! `λ + λ² + ⋯ + λ^{s−1} = 1` and coincides with the broadcasting
//! constants `c(s−1)` of \[22, 2\]; the separator rows strengthen it for
//! the undirected hypercube-like families.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin fig8
//! ```

use systolic_gossip::sg_bounds::{c_broadcast, tables};

fn main() {
    println!("{}", tables::fig8().render());
    println!("broadcast constants check: c(2) = {:.4}, c(3) = {:.4}, c(4) = {:.4}",
        c_broadcast(2), c_broadcast(3), c_broadcast(4));
    println!("paper cites 1.4404 / 1.1374 / 1.0562 for these.");
}
