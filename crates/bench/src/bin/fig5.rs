//! Regenerates Fig. 5: systolic half-duplex lower bounds for Butterfly,
//! Wrapped Butterfly (directed and undirected), de Bruijn and Kautz
//! networks.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin fig5            # d = 2,3, s = 3..8 (the paper's table)
//! cargo run -p sg-bench --release --bin fig5 -- 4,5 3 14  # degrees 4,5, s = 3..14
//! ```
//!
//! The paper remarks that for d = 4, 5 slight improvements over the
//! general bound appear only for s > 8 — the second invocation shows it.

use systolic_gossip::sg_bounds::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (ds, lo, hi): (Vec<usize>, usize, usize) = if args.len() >= 3 {
        (
            args[0]
                .split(',')
                .map(|t| t.parse().expect("degree list like 2,3"))
                .collect(),
            args[1].parse().expect("min period"),
            args[2].parse().expect("max period"),
        )
    } else {
        (vec![2, 3], 3, 8)
    };
    println!("{}", tables::fig5_custom(&ds, lo..=hi).render());
    println!("'*' entries coincide with the general bound of Fig. 4, as in the paper.");
    println!("paper spot values (d=2): WBF(2,D) s=4 → 2.0218; DB(2,D) s=4 → 1.8133 (∗).");
}
