//! Runs the complete experiment suite and prints an EXPERIMENTS.md-ready
//! report: every figure table, the paper-vs-computed deltas for every
//! value the paper states, and the validation experiments.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin experiments
//! ```

use systolic_gossip::prelude::*;
use systolic_gossip::sg_bounds::pfun::{BoundMode as BM, Period as P};
use systolic_gossip::sg_bounds::{c_broadcast, e_coefficient, tables};
use systolic_gossip::sg_graphs::separator::{params_de_bruijn, params_wbf_undirected};

fn check(label: &str, got: f64, paper: f64) {
    let delta = (got - paper).abs();
    let ok = if delta < 1.2e-4 { "match" } else { "MISMATCH" };
    println!("| {label} | {paper:.4} | {got:.4} | {ok} |");
}

fn main() {
    println!("# Experiment report\n");
    println!("## Paper-stated values vs computed\n");
    println!("| quantity | paper | computed | status |");
    println!("|---|---|---|---|");
    for (s, v) in [(3, 2.8808), (4, 1.8133), (5, 1.6502), (6, 1.5363), (7, 1.5021), (8, 1.4721)] {
        check(&format!("Fig.4 e({s})"), e_coefficient(BM::HalfDuplex, P::Systolic(s)), v);
    }
    check("Fig.4 e(∞)", e_coefficient(BM::HalfDuplex, P::NonSystolic), 1.4404);
    check(
        "Fig.5 WBF(2,D) s=4",
        e_separator(params_wbf_undirected(2), BM::HalfDuplex, P::Systolic(4)).e,
        2.0218,
    );
    check(
        "Fig.5 DB(2,D) s=4",
        e_separator(params_de_bruijn(2), BM::HalfDuplex, P::Systolic(4)).e,
        1.8133,
    );
    check(
        "Fig.6 WBF(2,D) s=∞",
        e_separator(params_wbf_undirected(2), BM::HalfDuplex, P::NonSystolic).e,
        1.9750,
    );
    check(
        "Fig.6 DB(2,D) s=∞",
        e_separator(params_de_bruijn(2), BM::HalfDuplex, P::NonSystolic).e,
        1.5876,
    );
    check("c(2) of [22,2]", c_broadcast(2), 1.4404);
    check("c(3) of [22,2]", c_broadcast(3), 1.1374);
    check("c(4) of [22,2]", c_broadcast(4), 1.0562);

    println!("\n## Full tables\n");
    for t in [tables::fig4(), tables::fig5(), tables::fig6(), tables::fig8()] {
        println!("```text\n{}```\n", t.render());
    }

    println!("## Protocol validation (measured gossip time vs bounds)\n");
    println!("| workload | n | s | measured | Thm 4.1 | Cor 4.4 | sound |");
    println!("|---|---|---|---|---|---|---|");
    for (name, net, sp) in sg_bench::half_duplex_workloads()
        .into_iter()
        .chain(sg_bench::full_duplex_workloads())
    {
        let a = audit(&net, &sp, 1_000_000, BoundOpts::default());
        println!(
            "| {name} | {} | {} | {} | {} | {:.1} | {} |",
            a.n,
            a.s,
            a.measured_rounds.map_or("—".into(), |t| t.to_string()),
            a.matrix_bound
                .as_ref()
                .map_or("—".into(), |b| format!("{:.1}", b.rounds)),
            a.closed_form_rounds,
            if a.is_sound() { "yes" } else { "NO" }
        );
    }
}
