//! Completion-curve series: per-round knowledge statistics for the
//! reference protocols — the executable "figure" contrasting protocol
//! progress against the paper's lower bounds.
//!
//! ```bash
//! cargo run -p sg-bench --release --bin curves
//! ```

use systolic_gossip::prelude::*;
use systolic_gossip::sg_sim::trace::knowledge_curve;

fn main() {
    for net in [
        Network::Hypercube { k: 6 },
        Network::WrappedButterfly { d: 2, dd: 4 },
        Network::DeBruijn { d: 2, dd: 6 },
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let sp = net.reference_protocol().expect("reference protocol");
        let report = bound_report(
            &net,
            sp.mode(),
            Period::Systolic(sp.s()),
        );
        println!(
            "\n{} — n = {}, s = {}, strongest lower bound {:.1} rounds",
            net.name(),
            n,
            sp.s(),
            report.best_rounds
        );
        println!("{:>6} {:>8} {:>8} {:>10}", "round", "min", "max", "mean");
        let curve = knowledge_curve(&sp, n, 100_000);
        // Print at most 25 evenly spaced samples plus the last.
        let step = (curve.len() / 25).max(1);
        for (i, s) in curve.iter().enumerate() {
            if i % step == 0 || i + 1 == curve.len() {
                println!("{:>6} {:>8} {:>8} {:>10.1}", s.round, s.min, s.max, s.mean);
            }
        }
        let done = curve.last().expect("nonempty").round;
        println!(
            "completed at round {done}; bound/measured ratio {:.2}",
            report.best_rounds / done as f64
        );
    }
}
