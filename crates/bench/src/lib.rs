//! Shared helpers for the benchmark harness.
//!
//! The former per-figure binaries were replaced by the `sg-bench` CLI
//! over [`sg_scenario::registry()`]; what remains here is the hand-curated
//! workload corpus the micro-benchmarks and the workload-validation test
//! use. Prefer the scenario registry for anything user-facing.

use systolic_gossip::prelude::*;

/// The standard half-duplex workload set: `(name, network, protocol)`
/// triples with an executable systolic protocol each.
pub fn half_duplex_workloads() -> Vec<(String, Network, SystolicProtocol)> {
    let mut out: Vec<(String, Network, SystolicProtocol)> = Vec::new();
    let path = Network::Path { n: 32 };
    out.push(("path RRLL".into(), path, builders::path_rrll(32)));
    let cyc = Network::Cycle { n: 32 };
    out.push(("cycle RRLL".into(), cyc, builders::cycle_rrll(32)));
    for net in [
        Network::WrappedButterfly { d: 2, dd: 5 },
        Network::DeBruijn { d: 2, dd: 7 },
        Network::Kautz { d: 2, dd: 6 },
        Network::Butterfly { d: 2, dd: 4 },
    ] {
        let g = net.build();
        out.push((
            format!("coloring {}", net.name()),
            net,
            builders::edge_coloring_periodic(&g),
        ));
    }
    out
}

/// The standard full-duplex workload set.
pub fn full_duplex_workloads() -> Vec<(String, Network, SystolicProtocol)> {
    use systolic_gossip::sg_protocol::builders::full_duplex_coloring_periodic;
    let mut out: Vec<(String, Network, SystolicProtocol)> = Vec::new();
    out.push((
        "hypercube sweep".into(),
        Network::Hypercube { k: 7 },
        builders::hypercube_sweep(7),
    ));
    out.push((
        "Knödel sweep".into(),
        Network::Knodel { delta: 7, n: 128 },
        builders::knodel_sweep(7, 128),
    ));
    out.push((
        "grid traffic light".into(),
        Network::Grid2d { w: 10, h: 10 },
        builders::grid_traffic_light(10, 10),
    ));
    for net in [
        Network::WrappedButterfly { d: 2, dd: 5 },
        Network::DeBruijn { d: 2, dd: 7 },
    ] {
        let g = net.build();
        out.push((
            format!("fd coloring {}", net.name()),
            net,
            full_duplex_coloring_periodic(&g),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_valid() {
        for (name, net, sp) in half_duplex_workloads()
            .into_iter()
            .chain(full_duplex_workloads())
        {
            sp.validate(&net.build())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
