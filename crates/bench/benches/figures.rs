//! Criterion benches for the figure-regeneration pipeline: the cost of
//! producing each table of the paper from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use systolic_gossip::sg_bounds::pfun::{BoundMode, Period};
use systolic_gossip::sg_bounds::{e_coefficient, e_separator, tables};
use systolic_gossip::sg_graphs::separator::params_wbf_undirected;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("fig4_table", |b| b.iter(|| black_box(tables::fig4())));
    c.bench_function("fig5_table", |b| b.iter(|| black_box(tables::fig5())));
    c.bench_function("fig6_table", |b| b.iter(|| black_box(tables::fig6())));
    c.bench_function("fig8_table", |b| b.iter(|| black_box(tables::fig8())));
}

fn bench_solvers(c: &mut Criterion) {
    c.bench_function("e_general_s8", |b| {
        b.iter(|| black_box(e_coefficient(BoundMode::HalfDuplex, Period::Systolic(8))))
    });
    c.bench_function("separator_optimizer_wbf_s4", |b| {
        b.iter(|| {
            black_box(e_separator(
                params_wbf_undirected(2),
                BoundMode::HalfDuplex,
                Period::Systolic(4),
            ))
        })
    });
}

criterion_group!(benches, bench_figures, bench_solvers);
criterion_main!(benches);
