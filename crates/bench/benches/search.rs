//! Criterion-shim bench for the protocol-synthesis subsystem, and the
//! second file of the repo's perf trajectory: alongside the stdout
//! report it serializes every recorded timing — plus the certificate of
//! the benchmarked search — into `BENCH_search.json` at the workspace
//! root (override with `SG_BENCH_SEARCH_JSON`), so the synthesis path
//! is diffable run-over-run just like the simulation hot path.
//!
//! The workload is the fixed-seed tiny search CI smokes on: `P_8` in
//! full-duplex mode at exact periods 2 and 4 (both certify `Optimal`
//! against the n − 1 diameter floor), plus the Q_3 doubling-floor
//! search. `SG_BENCH_FAST=1` shrinks sample counts for CI.

use criterion::{black_box, BenchmarkId, Criterion};
use sg_search::{search, SearchConfig, Verdict};
use systolic_gossip::prelude::*;

fn fast_mode() -> bool {
    std::env::var("SG_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// The benchmarked configuration: fixed seed, single thread (so the
/// numbers measure the annealer, not the scheduler), modest effort.
fn cfg(period: usize) -> SearchConfig {
    SearchConfig {
        restarts: 3,
        iterations: if fast_mode() { 80 } else { 200 },
        seed: 1997,
        threads: 1,
        ..Default::default()
    }
    .exact_period(period)
}

/// The one workload table both the timing pass and the outcome pinning
/// iterate — a single site to edit, so `results` and `searches` in the
/// JSON can never describe different workloads.
fn workloads() -> Vec<(&'static str, Network, usize)> {
    vec![
        ("path8_fd", Network::Path { n: 8 }, 2),
        ("path8_fd", Network::Path { n: 8 }, 4),
        ("hypercube3_fd", Network::Hypercube { k: 3 }, 3),
    ]
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_search");
    g.sample_size(if fast_mode() { 2 } else { 10 });
    for (label, net, period) in workloads() {
        g.bench_with_input(BenchmarkId::new(label, period), &period, |b, &p| {
            b.iter(|| black_box(search(&net, Mode::FullDuplex, &cfg(p))))
        });
    }
    g.finish();
}

/// Where the trajectory file goes: the workspace root, next to
/// `BENCH_sim.json`.
fn json_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("SG_BENCH_SEARCH_JSON") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_search.json")
}

fn write_bench_json(c: &Criterion) {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"search\",\n");
    out.push_str(&format!("  \"fast\": {},\n", fast_mode()));
    out.push_str(&format!("  \"generated_unix\": {unix_secs},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in c.results().iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            r.name,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == c.results().len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    // The benchmarked searches' outcomes, re-run once each: the perf
    // trajectory also pins *what* the timed work produced.
    let outcomes: Vec<(&str, usize, sg_search::SearchOutcome)> = workloads()
        .into_iter()
        .map(|(label, net, period)| (label, period, search(&net, Mode::FullDuplex, &cfg(period))))
        .collect();
    out.push_str("  \"searches\": [\n");
    for (i, (label, period, o)) in outcomes.iter().enumerate() {
        let (found, floor, verdict) = match (&o.certificate, o.best_rounds) {
            (Some(c), Some(t)) => (
                t.to_string(),
                c.floor_rounds.to_string(),
                c.verdict.label().to_string(),
            ),
            _ => ("null".into(), "null".into(), "incomplete".into()),
        };
        out.push_str(&format!(
            "    {{\"workload\": \"{label}\", \"period\": {period}, \"found_rounds\": {found}, \
             \"floor_rounds\": {floor}, \"verdict\": \"{verdict}\", \"evaluations\": {}}}{}\n",
            o.evaluations,
            if i + 1 == outcomes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = json_path();
    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
    for (label, period, o) in &outcomes {
        let verdict = o
            .certificate
            .as_ref()
            .map_or("incomplete", |c| c.verdict.label());
        println!(
            "  {label} s={period}: found {:?} — {verdict}",
            o.best_rounds
        );
        // A fixed-seed smoke search on P_8 must stay optimal; regressing
        // to a gap here means the synthesis stack broke.
        if *label == "path8_fd" {
            assert!(
                matches!(
                    o.certificate.as_ref().map(|c| c.verdict),
                    Some(Verdict::Optimal)
                ),
                "fixed-seed P_8 search no longer certifies Optimal"
            );
        }
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_search(&mut criterion);
    write_bench_json(&criterion);
}
