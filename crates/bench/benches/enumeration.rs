//! Criterion-shim bench for the exact-enumeration subsystem, and the
//! third file of the repo's perf trajectory: alongside the stdout report
//! it serializes every recorded timing — plus the settled optima of the
//! benchmarked enumerations — into `BENCH_enum.json` at the workspace
//! root (override with `SG_BENCH_ENUM_JSON`), uploaded by CI next to
//! `BENCH_sim.json` / `BENCH_search.json`.
//!
//! The workload is the registry's settled-theorem table: `Q₃` at `s = 2`
//! full-duplex (optimum 4), `C₈` at `s = 3` full-duplex (optimum 5),
//! directed `C₆` at `s = 2` (optimum 6), the provably infeasible
//! directed `P₆` at `s = 3`, plus the stabilizer-chain-era instances —
//! `Torus(3×3)` at `s = 3` full-duplex (optimum 5, |Aut| = 72),
//! `W(3,8)` at `s = 3` full-duplex (optimum 3, the doubling floor),
//! directed `DB(2,3)` at `s = 2` (optimum 8) and the parallel-era
//! heavyweight `W(4,16)` at `s = 2` full-duplex (optimum 8, twice the
//! doubling floor of 4). The run *fails* if any previously
//! `ProvenOptimal` point regresses to a different value or loses its
//! proven verdict — a settled theorem must stay settled.
//!
//! A second group, `enumeration_thread_scaling`, is the PR's ablation:
//! the retired sequential engine (`sg_search::reference`) against the
//! current engine at 1 and 8 threads on `Torus(3×3)`, with the medians
//! and speedups summarized in the JSON's `ablation` block. The run
//! fails if the 8-thread median loses its ≥ 2× edge over the retired
//! baseline.

use criterion::{black_box, BenchmarkId, Criterion};
use sg_search::{enumerate, EnumerateConfig, Verdict};
use systolic_gossip::prelude::*;

fn fast_mode() -> bool {
    std::env::var("SG_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// One settled workload: label, network, mode, period, proven optimum
/// (`None` = proven infeasible).
fn workloads() -> Vec<(&'static str, Network, Mode, usize, Option<usize>)> {
    vec![
        (
            "hypercube3_fd",
            Network::Hypercube { k: 3 },
            Mode::FullDuplex,
            2,
            Some(4),
        ),
        (
            "cycle8_fd",
            Network::Cycle { n: 8 },
            Mode::FullDuplex,
            3,
            Some(5),
        ),
        (
            "cycle6_dir",
            Network::Cycle { n: 6 },
            Mode::Directed,
            2,
            Some(6),
        ),
        (
            "path6_dir_infeasible",
            Network::Path { n: 6 },
            Mode::Directed,
            3,
            None,
        ),
        (
            "torus3x3_fd",
            Network::Torus2d { w: 3, h: 3 },
            Mode::FullDuplex,
            3,
            Some(5),
        ),
        (
            "knodel38_fd",
            Network::Knodel { delta: 3, n: 8 },
            Mode::FullDuplex,
            3,
            Some(3),
        ),
        (
            "debruijn23_dir",
            Network::DeBruijnDirected { d: 2, dd: 3 },
            Mode::Directed,
            2,
            Some(8),
        ),
        (
            "knodel_w416_fd",
            Network::Knodel { delta: 4, n: 16 },
            Mode::FullDuplex,
            2,
            Some(8),
        ),
    ]
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_enumeration");
    g.sample_size(if fast_mode() { 2 } else { 10 });
    for (label, net, mode, period, _) in workloads() {
        g.bench_with_input(BenchmarkId::new(label, period), &period, |b, &s| {
            b.iter(|| {
                black_box(enumerate(
                    &net,
                    mode,
                    &EnumerateConfig::default().exact_period(s),
                ))
            })
        });
    }
    g.finish();
}

/// The instance and period of the thread-scaling ablation (the heaviest
/// full-duplex point of the settled table).
const ABLATION: (Network, usize) = (Network::Torus2d { w: 3, h: 3 }, 3);

/// Three engines on the same instance: the retired sequential engine
/// (`sg_search::reference`, the honest pre-refinement baseline), the new
/// engine on one thread (isolating the signature/symmetry rework), and
/// the new engine on eight (adding the fan-out). All three settle the
/// identical optimum; only wall-clock differs.
fn bench_thread_ablation(c: &mut Criterion) {
    let (net, s) = ABLATION;
    let mut g = c.benchmark_group("enumeration_thread_scaling");
    g.sample_size(if fast_mode() { 2 } else { 10 });
    g.bench_function("torus3x3_fd/reference", |b| {
        b.iter(|| {
            black_box(sg_search::reference::enumerate_serial(
                &net,
                Mode::FullDuplex,
                &EnumerateConfig::default().exact_period(s),
            ))
        })
    });
    for threads in [1usize, 8] {
        g.bench_function(&format!("torus3x3_fd/threads{threads}"), |b| {
            b.iter(|| {
                black_box(enumerate(
                    &net,
                    Mode::FullDuplex,
                    &EnumerateConfig::default().exact_period(s).threads(threads),
                ))
            })
        });
    }
    g.finish();
}

/// Where the trajectory file goes: the workspace root, next to
/// `BENCH_sim.json` and `BENCH_search.json`.
fn json_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("SG_BENCH_ENUM_JSON") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_enum.json")
}

fn write_bench_json(c: &Criterion) {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"enumeration\",\n");
    out.push_str(&format!("  \"fast\": {},\n", fast_mode()));
    out.push_str(&format!("  \"generated_unix\": {unix_secs},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in c.results().iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            r.name,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == c.results().len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    // The thread-scaling ablation in one digestible block: medians of
    // the three engines plus the speedups the PR claims — the new engine
    // must hold a ≥ 2× median improvement over the retired serial
    // baseline at 8 threads, or the run fails.
    let median_of = |name: &str| -> u128 {
        c.results()
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("ablation bench {name} missing"))
            .median_ns
    };
    let reference = median_of("enumeration_thread_scaling/torus3x3_fd/reference");
    let t1 = median_of("enumeration_thread_scaling/torus3x3_fd/threads1");
    let t8 = median_of("enumeration_thread_scaling/torus3x3_fd/threads8");
    let speedup = |base: u128, new: u128| base as f64 / new.max(1) as f64;
    out.push_str(&format!(
        "  \"ablation\": {{\"workload\": \"torus3x3_fd\", \"period\": {}, \
         \"reference_median_ns\": {reference}, \"t1_median_ns\": {t1}, \"t8_median_ns\": {t8}, \
         \"speedup_t1_vs_reference\": {:.2}, \"speedup_t8_vs_reference\": {:.2}}},\n",
        ABLATION.1,
        speedup(reference, t1),
        speedup(reference, t8),
    ));
    assert!(
        speedup(reference, t8) >= 2.0,
        "thread-scaling regression: torus3x3_fd at 8 threads is only {:.2}x \
         the retired serial baseline (reference {reference} ns, t8 {t8} ns)",
        speedup(reference, t8),
    );

    // The settled outcomes, re-run once each: the trajectory pins *what*
    // the timed work proved, and regressing a settled theorem fails the
    // run.
    let outcomes: Vec<(&str, usize, Option<usize>, sg_search::EnumerateOutcome)> = workloads()
        .into_iter()
        .map(|(label, net, mode, period, want)| {
            (
                label,
                period,
                want,
                enumerate(&net, mode, &EnumerateConfig::default().exact_period(period)),
            )
        })
        .collect();
    out.push_str("  \"enumerations\": [\n");
    for (i, (label, period, _, o)) in outcomes.iter().enumerate() {
        let (optimal, floor, verdict) = match (&o.certificate, o.best_rounds) {
            (Some(c), Some(t)) => (
                t.to_string(),
                c.floor_rounds.to_string(),
                c.verdict.label().to_string(),
            ),
            _ => ("null".into(), "null".into(), "infeasible".into()),
        };
        out.push_str(&format!(
            "    {{\"workload\": \"{label}\", \"period\": {period}, \"optimal_rounds\": {optimal}, \
             \"floor_rounds\": {floor}, \"verdict\": \"{verdict}\", \"enumerated\": {}, \
             \"pruned\": {}}}{}\n",
            o.enumerated,
            o.pruned,
            if i + 1 == outcomes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = json_path();
    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
    for (label, period, want, o) in &outcomes {
        let verdict = o
            .certificate
            .as_ref()
            .map_or("infeasible", |c| c.verdict.label());
        println!(
            "  {label} s={period}: optimum {:?} — {verdict}",
            o.best_rounds
        );
        // A settled theorem must stay settled: same optimum, proven
        // verdict (or exact infeasibility where that is the theorem).
        assert_eq!(
            o.best_rounds, *want,
            "{label}: settled optimum changed — enumeration or bound regression"
        );
        match want {
            Some(_) => assert!(
                matches!(
                    o.certificate.as_ref().map(|c| c.verdict),
                    Some(Verdict::ProvenOptimal { .. })
                ),
                "{label}: previously ProvenOptimal point regressed to a weaker verdict"
            ),
            None => assert!(
                o.proven_infeasible,
                "{label}: previously proven-infeasible point regressed"
            ),
        }
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_enumeration(&mut criterion);
    bench_thread_ablation(&mut criterion);
    write_bench_json(&criterion);
}
