//! Criterion-shim bench for the distributed execution subsystem, and
//! the fourth file of the repo's perf trajectory: alongside the stdout
//! report it serializes every recorded timing — plus the deterministic
//! rounds-to-completion of each workload at fault rates 0, 0.01 and
//! 0.05 — into `BENCH_exec.json` at the workspace root (override with
//! `SG_BENCH_EXEC_JSON`), uploaded by CI next to `BENCH_sim.json` /
//! `BENCH_search.json` / `BENCH_enum.json`.
//!
//! The workload is four proven-optimal reference schedules — `P₈`,
//! `Q₃`, `W(3,8)` and `Torus(4×4)` — each executed as a per-vertex
//! message-passing node fleet under a seeded `FaultPlan`. Fault
//! sampling is a pure counter-based function of the seed, so every
//! recorded round count is bit-deterministic. The run *fails* if a
//! fault-free execution diverges from the simulator's exact optimum —
//! the conformance theorem the exec layer is built on must stay
//! settled.

use criterion::{black_box, BenchmarkId, Criterion};
use sg_exec::{execute_protocol, DriverConfig, FaultPlan, RunReport};
use systolic_gossip::prelude::*;
use systolic_gossip::sg_sim::run_systolic;

fn fast_mode() -> bool {
    std::env::var("SG_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// The fault seed every recorded point uses: fixed, so the trajectory
/// compares like with like across commits.
const FAULT_SEED: u64 = 1997;

/// Per-link drop probabilities of the recorded sweep.
const DROP_RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// One executed workload: label and network (the schedule is the
/// network's proven-optimal reference protocol).
fn workloads() -> Vec<(&'static str, Network)> {
    vec![
        ("path8", Network::Path { n: 8 }),
        ("hypercube3", Network::Hypercube { k: 3 }),
        ("knodel38", Network::Knodel { delta: 3, n: 8 }),
        ("torus4x4", Network::Torus2d { w: 4, h: 4 }),
    ]
}

/// The simulator's exact completion round for the network's reference
/// protocol — the baseline every execution is judged against.
fn optimum(net: &Network) -> (usize, usize) {
    let n = net.build().vertex_count();
    let sp = net.reference_protocol().expect("reference protocol");
    let t = run_systolic(&sp, n, 40 * n + 200, false)
        .completed_at
        .expect("reference protocol completes");
    (n, t)
}

/// Executes the network's reference schedule under `drop_prob`.
fn execute(net: &Network, n: usize, drop_prob: f64) -> RunReport {
    let sp = net.reference_protocol().expect("reference protocol");
    let plan = if drop_prob > 0.0 {
        FaultPlan::lossy(FAULT_SEED, drop_prob)
    } else {
        FaultPlan::fault_free()
    };
    execute_protocol(
        &sp,
        n,
        plan,
        DriverConfig {
            max_rounds: (400 * n + 2000) as u64,
            ..DriverConfig::default()
        },
    )
}

fn bench_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("execution");
    g.sample_size(if fast_mode() { 2 } else { 10 });
    for (label, net) in workloads() {
        let (n, _) = optimum(&net);
        g.bench_with_input(BenchmarkId::new(label, "fault_free"), &net, |b, net| {
            b.iter(|| black_box(execute(net, n, 0.0)))
        });
        g.bench_with_input(BenchmarkId::new(label, "lossy_0.05"), &net, |b, net| {
            b.iter(|| black_box(execute(net, n, 0.05)))
        });
    }
    g.finish();
}

/// Where the trajectory file goes: the workspace root, next to the
/// other `BENCH_*.json` files.
fn json_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("SG_BENCH_EXEC_JSON") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_exec.json")
}

fn write_bench_json(c: &Criterion) {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"execution\",\n");
    out.push_str(&format!("  \"fast\": {},\n", fast_mode()));
    out.push_str(&format!("  \"fault_seed\": {FAULT_SEED},\n"));
    out.push_str(&format!("  \"generated_unix\": {unix_secs},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in c.results().iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            r.name,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == c.results().len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    // The deterministic fault sweep: every workload at every drop rate,
    // re-run once each. The trajectory pins *what* the timed machinery
    // computes, and a fault-free divergence from the proven optimum
    // fails the run.
    let mut points: Vec<(String, usize, usize, f64, RunReport)> = Vec::new();
    for (label, net) in workloads() {
        let (n, opt) = optimum(&net);
        for p in DROP_RATES {
            points.push((label.to_string(), n, opt, p, execute(&net, n, p)));
        }
    }
    out.push_str("  \"executions\": [\n");
    for (i, (label, n, opt, p, r)) in points.iter().enumerate() {
        let rounds = r.completed_at.map_or("null".to_string(), |t| t.to_string());
        out.push_str(&format!(
            "    {{\"workload\": \"{label}\", \"n\": {n}, \"drop_prob\": {p}, \
             \"completed_rounds\": {rounds}, \"optimum_rounds\": {opt}, \
             \"gossip_sent\": {}, \"dropped\": {}, \"retransmissions\": {}}}{}\n",
            r.gossip_sent,
            r.dropped,
            r.retransmissions,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = json_path();
    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
    for (label, _, opt, p, r) in &points {
        println!(
            "  {label} drop={p}: rounds {:?} (optimum {opt}, dropped {}, retx {})",
            r.completed_at, r.dropped, r.retransmissions
        );
        let rounds = r.completed_at.unwrap_or_else(|| {
            panic!("{label} drop={p}: execution did not complete within budget")
        });
        if *p == 0.0 {
            // The conformance theorem: a fault-free fleet finishes in
            // exactly the simulator's proven round count.
            assert_eq!(
                rounds as usize, *opt,
                "{label}: fault-free execution diverged from the proven optimum"
            );
            assert_eq!(r.dropped, 0, "{label}: fault-free run dropped messages");
        } else {
            // Faults cost rounds, never correctness.
            assert!(
                rounds as usize >= *opt,
                "{label} drop={p}: beat the proven optimum — fault sampling broken"
            );
        }
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_execution(&mut criterion);
    write_bench_json(&criterion);
}
