//! Criterion-shim benches for the dissemination engine, and the start of
//! the repo's perf trajectory: alongside the usual stdout report this
//! harness serializes every recorded timing — plus
//! reference-vs-optimized speedups — into `BENCH_sim.json` at the
//! workspace root (override with `SG_BENCH_JSON`), so regressions in the
//! simulation hot path become diffable.
//!
//! The headline ablation pits the six engines against each other on
//! n ≥ 1024 gossip executions: the retained naive `reference` oracle,
//! the `compiled` schedule hot path, the `frontier` delta engine, the
//! row-`parallel` engine, the persistent work-stealing `pool` engine,
//! and the run-compressed `sparse` delta engine. A second group,
//! `sim_large`, records the sparse engine's production sizes — up to
//! the n ≈ 10⁶ Knödel gossip point that dense engines cannot represent
//! (the n × n bit table alone would be 125 GB). `SG_BENCH_FAST=1`
//! shrinks sample counts and sizes for CI smoke runs;
//! `SG_BENCH_ENFORCE_POOL=1` turns the pool-vs-reference speedup on
//! hypercube n = 2048 into a hard floor (≥ 1.0× or the harness panics).

use criterion::{black_box, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use systolic_gossip::prelude::*;
use systolic_gossip::sg_sim::frontier::systolic_gossip_time_frontier;
use systolic_gossip::sg_sim::parallel::systolic_gossip_time_parallel;
use systolic_gossip::sg_sim::pool::PoolEngine;
use systolic_gossip::sg_sim::reference::systolic_gossip_time_reference;
use systolic_gossip::sg_sim::sparse::systolic_gossip_time_sparse;

fn fast_mode() -> bool {
    std::env::var("SG_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// Thread count for the pool-engine entries: one per core, capped —
/// beyond 8 workers the n ≈ 2048 rows are too few to amortize handoff.
fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The engine ablation: one workload, four engines, identical results —
/// only the wall time differs. Labels are `engine_ablation/<engine>/<n>`.
fn bench_engine_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_ablation");
    g.sample_size(if fast_mode() { 3 } else { 10 });

    // Hypercube sweep, n = 2048: full-duplex dimension rounds, the
    // snapshot-heavy case (every source is also a target).
    let k = 11;
    let n = 1usize << k;
    let sp = builders::hypercube_sweep(k);
    let budget = 4 * k;
    g.bench_with_input(BenchmarkId::new("reference/hypercube", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_reference(sp, n, budget)))
    });
    g.bench_with_input(BenchmarkId::new("compiled/hypercube", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time(sp, n, budget)))
    });
    g.bench_with_input(BenchmarkId::new("frontier/hypercube", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_frontier(sp, n, budget)))
    });
    g.bench_with_input(BenchmarkId::new("parallel4/hypercube", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_parallel(sp, n, budget, 4)))
    });
    // The pool engine's whole point is reuse: built once outside the
    // timing loop, amortized across every gossip execution — exactly
    // how the scenario runner drives it.
    let mut engine = PoolEngine::for_protocol(&sp, n, pool_threads());
    g.bench_with_input(BenchmarkId::new("pool/hypercube", n), &(), |b, _| {
        b.iter(|| black_box(engine.gossip_time(budget)))
    });
    g.bench_with_input(BenchmarkId::new("sparse/hypercube", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_sparse(sp, n, budget)))
    });

    // De Bruijn edge-coloring, n = 1024: half-duplex matchings, the
    // snapshot-free case with a long round count.
    let dd = 10;
    let net = Network::DeBruijn { d: 2, dd };
    let graph = net.build();
    let sp = builders::edge_coloring_periodic(&graph);
    let n = graph.vertex_count();
    let budget = 200 * dd;
    g.bench_with_input(BenchmarkId::new("reference/debruijn", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_reference(sp, n, budget)))
    });
    g.bench_with_input(BenchmarkId::new("compiled/debruijn", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time(sp, n, budget)))
    });
    g.bench_with_input(BenchmarkId::new("frontier/debruijn", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_frontier(sp, n, budget)))
    });
    g.bench_with_input(BenchmarkId::new("parallel4/debruijn", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_parallel(sp, n, budget, 4)))
    });
    let mut engine = PoolEngine::for_protocol(&sp, n, pool_threads());
    g.bench_with_input(BenchmarkId::new("pool/debruijn", n), &(), |b, _| {
        b.iter(|| black_box(engine.gossip_time(budget)))
    });
    g.bench_with_input(BenchmarkId::new("sparse/debruijn", n), &sp, |b, sp| {
        b.iter(|| black_box(systolic_gossip_time_sparse(sp, n, budget)))
    });
    g.finish();
}

/// The sparse engine's production sizes: networks whose dense bit table
/// would not fit in memory. Each entry times one full gossip execution
/// (protocol construction excluded); the headline is the n = 2²⁰ Knödel
/// graph — a million-vertex gossip measured in seconds. Labels are
/// `sim_large/<family>/<n>`.
fn bench_sim_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_large");
    g.sample_size(if fast_mode() { 1 } else { 2 });

    let workloads: Vec<(&str, Network)> = if fast_mode() {
        // CI smoke: one mid-size Knödel point keeps the group's labels
        // (and the JSON shape) exercised without the multi-second runs.
        vec![(
            "knodel",
            Network::Knodel {
                delta: 16,
                n: 65_536,
            },
        )]
    } else {
        vec![
            (
                "knodel",
                Network::Knodel {
                    delta: 16,
                    n: 100_000,
                },
            ),
            (
                "knodel",
                Network::Knodel {
                    delta: 20,
                    n: 1_048_576,
                },
            ),
            (
                "rr3",
                Network::RandomRegular {
                    n: 100_000,
                    d: 3,
                    seed: 1997,
                },
            ),
        ]
    };
    for (family, net) in workloads {
        let n = net
            .order_hint()
            .expect("sim_large nets have closed-form orders");
        let sp = net
            .reference_protocol()
            .expect("sim_large nets have reference protocols");
        // Generous: every workload either completes or reaches the
        // sparse engine's fixed-point early exit well within this.
        let budget = 64 * sp.s() + 4096;
        g.bench_with_input(BenchmarkId::new(family, n), &sp, |b, sp| {
            b.iter(|| black_box(systolic_gossip_time_sparse(sp, n, budget)))
        });
    }
    g.finish();
}

fn bench_gossip_executions(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_execution");
    g.sample_size(if fast_mode() { 3 } else { 30 });
    for k in [8usize, 10] {
        let sp = builders::hypercube_sweep(k);
        let n = 1usize << k;
        g.bench_with_input(BenchmarkId::new("hypercube_sweep", n), &sp, |b, sp| {
            b.iter(|| black_box(systolic_gossip_time(sp, n, 4 * k)))
        });
    }
    for dd in [8usize, 10] {
        let net = Network::DeBruijn { d: 2, dd };
        let graph = net.build();
        let sp = builders::edge_coloring_periodic(&graph);
        let n = graph.vertex_count();
        g.bench_with_input(BenchmarkId::new("db_coloring", n), &sp, |b, sp| {
            b.iter(|| black_box(systolic_gossip_time(sp, n, 200 * dd)))
        });
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_generation");
    g.sample_size(if fast_mode() { 2 } else { 10 });
    let net = Network::WrappedButterfly { d: 2, dd: 5 };
    let graph = net.build();
    g.bench_function("wbf25_half_duplex", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(greedy_gossip(&graph, Mode::HalfDuplex, 10_000, &mut rng))
        })
    });
    g.finish();
}

/// Where the trajectory file goes: the workspace root, next to
/// `Cargo.lock` (cargo runs benches with the package dir as CWD).
fn json_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("SG_BENCH_JSON") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim.json")
}

fn median_of(c: &Criterion, name: &str) -> Option<u128> {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.median_ns)
}

fn write_bench_json(c: &Criterion) -> Vec<(&'static str, &'static str, f64)> {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"sim\",\n");
    out.push_str(&format!("  \"fast\": {},\n", fast_mode()));
    out.push_str(&format!("  \"generated_unix\": {unix_secs},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in c.results().iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            r.name,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == c.results().len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    // Reference-vs-optimized speedups on the n >= 1024 workloads.
    let mut speedups = Vec::new();
    for workload in ["hypercube/2048", "debruijn/1024"] {
        let Some(reference) = median_of(c, &format!("engine_ablation/reference/{workload}")) else {
            continue;
        };
        for engine in ["compiled", "frontier", "parallel4", "pool", "sparse"] {
            if let Some(t) = median_of(c, &format!("engine_ablation/{engine}/{workload}")) {
                speedups.push((workload, engine, reference as f64 / t.max(1) as f64));
            }
        }
    }
    out.push_str("  \"speedups\": [\n");
    for (i, (workload, engine, s)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"baseline\": \"reference\", \"engine\": \"{engine}\", \"speedup_median\": {s:.3}}}{}\n",
            if i + 1 == speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = json_path();
    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
    for (workload, engine, s) in &speedups {
        println!("  {engine:>9} vs reference on {workload}: {s:.2}x");
    }
    speedups
}

fn main() {
    let mut criterion = Criterion::default();
    bench_engine_ablation(&mut criterion);
    bench_sim_large(&mut criterion);
    if !fast_mode() {
        bench_gossip_executions(&mut criterion);
        bench_greedy(&mut criterion);
    }
    let speedups = write_bench_json(&criterion);

    // CI perf floor: with SG_BENCH_ENFORCE_POOL=1 the pool engine must
    // beat the naive reference on the snapshot-heavy hypercube workload
    // — the regression the persistent pool exists to prevent.
    if std::env::var("SG_BENCH_ENFORCE_POOL").is_ok_and(|v| v == "1") {
        let pool = speedups
            .iter()
            .find(|(w, e, _)| *w == "hypercube/2048" && *e == "pool")
            .map(|(_, _, s)| *s)
            .expect("enforce: pool hypercube/2048 speedup missing from results");
        assert!(
            pool >= 1.0,
            "pool engine regressed below the reference on hypercube/2048: {pool:.3}x"
        );
        println!("enforce: pool vs reference on hypercube/2048 = {pool:.2}x (floor 1.0x) ok");
    }
}
