//! Criterion benches for the dissemination engine: sequential vs
//! crossbeam-parallel rounds (the DESIGN.md simulation ablation), greedy
//! protocol generation, and full gossip executions on the paper's
//! networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use systolic_gossip::prelude::*;
use systolic_gossip::sg_sim::parallel::systolic_gossip_time_parallel;

fn bench_gossip_executions(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_execution");
    for k in [8usize, 10] {
        let sp = builders::hypercube_sweep(k);
        let n = 1usize << k;
        g.bench_with_input(BenchmarkId::new("hypercube_sweep", n), &sp, |b, sp| {
            b.iter(|| black_box(systolic_gossip_time(sp, n, 4 * k)))
        });
    }
    for dd in [8usize, 10] {
        let net = Network::DeBruijn { d: 2, dd };
        let graph = net.build();
        let sp = builders::edge_coloring_periodic(&graph);
        let n = graph.vertex_count();
        g.bench_with_input(BenchmarkId::new("db_coloring", n), &sp, |b, sp| {
            b.iter(|| black_box(systolic_gossip_time(sp, n, 200 * dd)))
        });
    }
    g.finish();
}

fn bench_parallel_ablation(c: &mut Criterion) {
    let k = 11; // n = 2048
    let sp = builders::hypercube_sweep(k);
    let n = 1usize << k;
    let mut g = c.benchmark_group("parallel_rounds");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(systolic_gossip_time(&sp, n, 4 * k)))
    });
    for threads in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("crossbeam", threads), &threads, |b, &t| {
            b.iter(|| black_box(systolic_gossip_time_parallel(&sp, n, 4 * k, t)))
        });
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_generation");
    g.sample_size(10);
    let net = Network::WrappedButterfly { d: 2, dd: 5 };
    let graph = net.build();
    g.bench_function("wbf25_half_duplex", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(greedy_gossip(&graph, Mode::HalfDuplex, 10_000, &mut rng))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gossip_executions, bench_parallel_ablation, bench_greedy
}
criterion_main!(benches);
