//! Criterion benches for the delay-matrix machinery: digraph
//! construction, norm evaluation, λ* search, and the periodic-vs-unrolled
//! ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use systolic_gossip::prelude::*;
use systolic_gossip::sg_delay::bound::lambda_star;

fn workload(dd: usize) -> SystolicProtocol {
    let net = Network::DeBruijn { d: 2, dd };
    builders::edge_coloring_periodic(&net.build())
}

fn bench_delay_digraph(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay_digraph_build");
    for dd in [5usize, 7, 9] {
        let sp = workload(dd);
        g.bench_with_input(BenchmarkId::new("periodic", 1 << dd), &sp, |b, sp| {
            b.iter(|| black_box(DelayDigraph::periodic(sp)))
        });
    }
    g.finish();
}

fn bench_norm(c: &mut Criterion) {
    let mut g = c.benchmark_group("delay_matrix_norm");
    for dd in [5usize, 7, 9] {
        let sp = workload(dd);
        let dg = DelayDigraph::periodic(&sp);
        g.bench_with_input(BenchmarkId::new("norm_at_0.7", 1 << dd), &dg, |b, dg| {
            b.iter(|| black_box(dg.norm(0.7, Default::default())))
        });
    }
    g.finish();
}

fn bench_lambda_star(c: &mut Criterion) {
    let sp = workload(6);
    let dg = DelayDigraph::periodic(&sp);
    c.bench_function("lambda_star_db26_coloring", |b| {
        b.iter(|| black_box(lambda_star(&dg, BoundOpts::default())))
    });
}

/// Ablation: unrolled delay matrices for increasing t vs the periodic
/// fold (DESIGN.md §4) — measures the cost of the literal Definition 3.3
/// object as the prefix grows.
fn bench_unrolled_ablation(c: &mut Criterion) {
    let sp = workload(6);
    let mut g = c.benchmark_group("unrolled_vs_periodic");
    for periods in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("unrolled_norm", periods),
            &periods,
            |b, &p| {
                b.iter(|| {
                    let dg = DelayDigraph::unrolled(&sp, p * sp.s());
                    black_box(dg.norm(0.7, Default::default()))
                })
            },
        );
    }
    g.bench_function("periodic_norm", |b| {
        b.iter(|| {
            let dg = DelayDigraph::periodic(&sp);
            black_box(dg.norm(0.7, Default::default()))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_delay_digraph, bench_norm, bench_lambda_star, bench_unrolled_ablation
}
criterion_main!(benches);
