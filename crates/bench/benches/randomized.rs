//! Criterion-shim bench for the randomized-gossip baselines, and the
//! sixth file of the repo's perf trajectory: alongside the stdout
//! report it serializes every recorded timing — plus the deterministic
//! push/pull/exchange comparison table (mean/median/p95/max stopping
//! times and the ratio to the systolic optimum or lower-bound floor) —
//! into `BENCH_rand.json` at the workspace root (override with
//! `SG_BENCH_RAND_JSON`), uploaded by CI next to the other trajectory
//! files.
//!
//! The workload is four topologies spanning the repo's yardstick
//! spectrum: `C₆₄` (Θ(n) stopping times, where randomized Exchange
//! legitimately lands *under* the non-optimal s = 4 reference
//! schedule), the proven-optimal `Q₈` and `W(6,64)` (randomized can
//! never beat those), and a random 3-regular graph at n = 10⁵ run
//! through the sparse row table against the ⌈lg n⌉ doubling floor.
//! Trials are pure counter-based functions of `(seed, trial, round)`,
//! so every recorded stopping time is bit-deterministic. The run
//! *fails* if any mean lands under the universal floor, or under a
//! proven optimum — the soundness theorems the comparison is built on
//! must stay settled.

use criterion::{black_box, BenchmarkId, Criterion};
use systolic_gossip::ceil_log2;
use systolic_gossip::prelude::*;
use systolic_gossip::sg_graphs::traversal::diameter;
use systolic_gossip::sg_sim::random::{
    run_randomized, summarize, ActivationModel, RandomizedConfig, RandomizedSummary,
};
use systolic_gossip::sg_sim::run_systolic;

fn fast_mode() -> bool {
    std::env::var("SG_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// The master seed every recorded point uses: fixed, so the trajectory
/// compares like with like across commits.
const RAND_SEED: u64 = 1997;

/// Per-trial sparse-state ceiling, matching the batch runner's
/// large-sim budget.
const MEM_LIMIT: usize = 6 << 30;

/// One compared workload.
struct Workload {
    label: &'static str,
    net: Network,
    /// Independent trials per activation model.
    trials: usize,
    /// Exact measured time of the network's deterministic reference
    /// protocol (absent at large n, where running it densely is off
    /// the table).
    optimum: Option<usize>,
    /// Universal lower bound on *any* gossip in this model:
    /// max(diameter, ⌈lg n⌉) — items travel one hop per round and
    /// knowledge at best doubles. Sound for randomized protocols too,
    /// unlike the systolic-specific bounds.
    floor: usize,
}

fn workloads() -> Vec<Workload> {
    let small_trials = if fast_mode() { 25 } else { 100 };
    let large_trials = if fast_mode() { 1 } else { 2 };
    let mut out = Vec::new();
    for (label, net) in [
        ("cycle64", Network::Cycle { n: 64 }),
        ("hypercube8", Network::Hypercube { k: 8 }),
        ("knodel64", Network::Knodel { delta: 6, n: 64 }),
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let sp = net.reference_protocol().expect("reference protocol");
        let optimum = run_systolic(&sp, n, 40 * n + 200, false)
            .completed_at
            .expect("reference protocol completes");
        let floor = (diameter(&g).expect("connected") as usize).max(ceil_log2(n));
        out.push(Workload {
            label,
            net,
            trials: small_trials,
            optimum: Some(optimum),
            floor,
        });
    }
    // The n = 10⁵ point: no dense reference run, no Ω(n²) diameter —
    // the ⌈lg n⌉ doubling floor is the yardstick.
    out.push(Workload {
        label: "rr100k",
        net: Network::RandomRegular {
            n: 100_000,
            d: 3,
            seed: 1997,
        },
        trials: large_trials,
        optimum: None,
        floor: ceil_log2(100_000),
    });
    out
}

fn batch_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

fn run_batch_for(g: &Digraph, model: ActivationModel, trials: usize) -> Option<RandomizedSummary> {
    let cfg = RandomizedConfig {
        model,
        trials,
        seed: RAND_SEED,
        max_rounds: 1_000_000,
        threads: batch_threads(),
        mem_limit: Some(MEM_LIMIT),
    };
    summarize(&run_randomized(g, &cfg))
}

fn bench_randomized(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomized");
    group.sample_size(if fast_mode() { 2 } else { 10 });
    // Timed points stay on the small workloads (a single trial each);
    // the n = 10⁵ point is recorded once in the comparison table below,
    // not timed in a loop.
    for (label, net) in [
        ("cycle64", Network::Cycle { n: 64 }),
        ("hypercube8", Network::Hypercube { k: 8 }),
    ] {
        let g = net.build();
        for model in ActivationModel::ALL {
            group.bench_with_input(BenchmarkId::new(label, model.label()), &g, |b, g| {
                b.iter(|| {
                    black_box(systolic_gossip::sg_sim::random::run_trial(
                        g, model, RAND_SEED, 0, 1_000_000, None,
                    ))
                })
            });
        }
    }
    group.finish();
}

/// Where the trajectory file goes: the workspace root, next to the
/// other `BENCH_*.json` files.
fn json_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("SG_BENCH_RAND_JSON") {
        return p.into();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_rand.json")
}

fn write_bench_json(c: &Criterion) {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"randomized\",\n");
    out.push_str(&format!("  \"fast\": {},\n", fast_mode()));
    out.push_str(&format!("  \"seed\": {RAND_SEED},\n"));
    out.push_str(&format!("  \"generated_unix\": {unix_secs},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in c.results().iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            r.name,
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == c.results().len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    // The deterministic comparison table: every workload × activation
    // model, with the ratio to the exact systolic optimum (small n) or
    // the universal floor (the n = 10⁵ point). The trajectory pins
    // *what* the timed machinery computes; a mean under the universal
    // floor — or under a proven optimum — fails the run.
    struct CompRow {
        label: &'static str,
        n: usize,
        model: &'static str,
        trials: usize,
        optimum: Option<usize>,
        floor: usize,
        s: RandomizedSummary,
    }
    let mut rows: Vec<CompRow> = Vec::new();
    for w in workloads() {
        let g = w.net.build();
        let n = g.vertex_count();
        for model in ActivationModel::ALL {
            let s = run_batch_for(&g, model, w.trials)
                .unwrap_or_else(|| panic!("{}/{}: no trial completed", w.label, model.label()));
            rows.push(CompRow {
                label: w.label,
                n,
                model: model.label(),
                trials: w.trials,
                optimum: w.optimum,
                floor: w.floor,
                s,
            });
        }
    }
    out.push_str("  \"comparison\": [\n");
    for (
        i,
        CompRow {
            label,
            n,
            model,
            trials,
            optimum,
            floor,
            s,
        },
    ) in rows.iter().enumerate()
    {
        let denominator = optimum.map_or(*floor as f64, |t| t as f64);
        out.push_str(&format!(
            "    {{\"workload\": \"{label}\", \"n\": {n}, \"model\": \"{model}\", \
             \"trials\": {trials}, \"completed\": {}, \"mean_rounds\": {:.2}, \
             \"median_rounds\": {}, \"p95_rounds\": {}, \"max_rounds\": {}, \
             \"optimum_rounds\": {}, \"floor_rounds\": {floor}, \
             \"ratio_to_optimum\": {:.3}}}{}\n",
            s.completed,
            s.mean,
            s.median,
            s.p95,
            s.max,
            optimum.map_or("null".to_string(), |t| t.to_string()),
            s.mean / denominator,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = json_path();
    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
    for CompRow {
        label,
        model,
        trials,
        optimum,
        floor,
        s,
        ..
    } in &rows
    {
        println!(
            "  {label}/{model}: mean {:.1} median {} p95 {} max {} (optimum {:?}, floor {floor})",
            s.mean, s.median, s.p95, s.max, optimum
        );
        assert_eq!(
            s.completed, *trials,
            "{label}/{model}: not every trial completed"
        );
        // Universal soundness: no gossip — randomized or not — beats
        // max(diameter, ⌈lg n⌉).
        assert!(
            s.mean >= *floor as f64,
            "{label}/{model}: mean {:.2} under the universal floor {floor}",
            s.mean
        );
        // Proven optima stay unbeaten: where the reference schedule
        // meets the universal floor it is exactly optimal (Q₈ and
        // W(6,64)), and an oblivious randomized mean can never land
        // under it. (C₆₄'s s = 4 reference is *not* optimal —
        // Exchange lands under it, which is the interesting row.)
        if let Some(opt) = optimum {
            if opt == floor {
                assert!(
                    s.mean >= *opt as f64,
                    "{label}/{model}: mean {:.2} beat the proven optimum {opt}",
                    s.mean
                );
            }
        }
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_randomized(&mut criterion);
    write_bench_json(&criterion);
}
