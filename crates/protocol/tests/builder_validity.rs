//! Property audit of every builder in `sg_protocol::builders`: across a
//! sweep of parameters, each builder must emit only arcs that are edges
//! of its intended topology (plus the mode's matching condition — both
//! enforced by `SystolicProtocol::validate`, the same audit the
//! `sg-search` mutation kernel runs on every candidate) and must declare
//! exactly the period it constructs.

use proptest::prelude::*;
use sg_graphs::digraph::Digraph;
use sg_graphs::generators;
use sg_protocol::builders;
use sg_protocol::protocol::SystolicProtocol;

/// The shared audit: valid on `g`, declared period `s`, and every arc of
/// the period inside the graph's arc set (re-checked directly so the test
/// does not rely on `validate` alone).
fn audit(label: &str, g: &Digraph, sp: &SystolicProtocol, expect_s: usize) {
    sp.validate(g)
        .unwrap_or_else(|e| panic!("{label}: invalid — {e}"));
    assert_eq!(sp.s(), expect_s, "{label}: declared period");
    for (i, r) in sp.period().iter().enumerate() {
        for a in r.arcs() {
            assert!(
                g.has_arc(a.from as usize, a.to as usize),
                "{label}: round {i} activates {a}, not an arc of the topology"
            );
        }
    }
    // The declared period really is a period of the unrolled execution.
    assert!(
        sp.unroll(2 * expect_s).is_systolic_with_period(expect_s),
        "{label}: unrolled protocol is not {expect_s}-systolic"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn path_rrll_valid_on_its_path(n in 2usize..40) {
        audit("path_rrll", &generators::path(n), &builders::path_rrll(n), 4);
    }

    #[test]
    fn cycle_builders_valid_on_their_cycle(half in 2usize..20) {
        let n = 2 * half;
        let g = generators::cycle(n);
        audit("cycle_two_color_directed", &g, &builders::cycle_two_color_directed(n), 2);
        audit("cycle_rrll", &g, &builders::cycle_rrll(n), 4);
    }

    #[test]
    fn hypercube_sweep_valid_on_its_cube(k in 1usize..8) {
        audit("hypercube_sweep", &generators::hypercube(k), &builders::hypercube_sweep(k), k);
    }

    #[test]
    fn knodel_sweep_valid_on_its_graph(delta in 1usize..7, extra in 0usize..20) {
        let n = (1usize << delta) + 2 * extra;
        let g = generators::knodel(delta, n);
        audit("knodel_sweep", &g, &builders::knodel_sweep(delta, n), delta);
    }

    #[test]
    fn grid_traffic_light_valid_on_its_grid(w in 2usize..9, h in 2usize..9) {
        audit(
            "grid_traffic_light",
            &generators::grid2d(w, h),
            &builders::grid_traffic_light(w, h),
            4,
        );
    }

    #[test]
    fn wbf_shift_valid_on_directed_wrapped_butterfly(d in 2usize..4, dd in 2usize..5) {
        audit(
            "wbf_shift_protocol",
            &generators::wrapped_butterfly_directed(d, dd),
            &builders::wbf_shift_protocol(d, dd),
            d * dd,
        );
    }

    #[test]
    fn complete_round_robin_valid_on_its_clique(half in 1usize..12) {
        let n = 2 * half;
        audit(
            "complete_round_robin",
            &generators::complete(n),
            &builders::complete_round_robin(n),
            n - 1,
        );
    }

    #[test]
    fn coloring_protocols_valid_on_arbitrary_zoo_graphs(pick in 0usize..6, scale in 0usize..3) {
        let g = match pick {
            0 => generators::path(5 + 3 * scale),
            1 => generators::cycle(5 + 2 * scale),
            2 => generators::complete_dary_tree(2 + scale.min(1), 2 + scale),
            3 => generators::de_bruijn(2, 3 + scale),
            4 => generators::kautz(2, 3 + scale),
            _ => generators::wrapped_butterfly(2, 3 + scale),
        };
        let hd = builders::edge_coloring_periodic(&g);
        audit("edge_coloring_periodic", &g, &hd, hd.s());
        let fd = builders::full_duplex_coloring_periodic(&g);
        audit("full_duplex_coloring_periodic", &g, &fd, fd.s());
        // The half-duplex protocol splits each full-duplex round in two.
        prop_assert_eq!(hd.s(), 2 * fd.s());
    }

    #[test]
    fn path_two_sweep_valid_and_sized(n in 2usize..40) {
        let g = generators::path(n);
        let p = builders::path_two_sweep(n);
        p.validate(&g).expect("valid finite protocol");
        prop_assert_eq!(p.len(), 2 * (n - 1));
        for r in p.rounds() {
            for a in r.arcs() {
                prop_assert!(g.has_arc(a.from as usize, a.to as usize));
            }
        }
    }
}
