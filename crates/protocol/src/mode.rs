//! Communication modes (Section 1 and Section 3 of the paper).
//!
//! The whispering / processor-bound model admits three variants:
//!
//! * **Directed** — the network is an arbitrary digraph; a round activates
//!   a set of arcs no two of which share an endpoint.
//! * **Half-duplex** — the network is a symmetric digraph (an undirected
//!   graph); a round again activates an endpoint-disjoint set of arcs, so
//!   each active link carries its message in one direction only.
//! * **Full-duplex** — the network is symmetric and arcs are activated in
//!   opposite pairs: an active link carries messages both ways at once.

/// The communication mode of a protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Arbitrary digraph, one-way activations (endpoint-disjoint arcs).
    Directed,
    /// Symmetric digraph, one-way activations (endpoint-disjoint arcs).
    HalfDuplex,
    /// Symmetric digraph, two-way activations (opposite arc pairs).
    FullDuplex,
}

impl Mode {
    /// `true` for the modes that require the underlying digraph to be
    /// symmetric.
    pub fn requires_symmetric_graph(self) -> bool {
        matches!(self, Mode::HalfDuplex | Mode::FullDuplex)
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Directed => "directed",
            Mode::HalfDuplex => "half-duplex",
            Mode::FullDuplex => "full-duplex",
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetry_requirements() {
        assert!(!Mode::Directed.requires_symmetric_graph());
        assert!(Mode::HalfDuplex.requires_symmetric_graph());
        assert!(Mode::FullDuplex.requires_symmetric_graph());
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Directed.to_string(), "directed");
        assert_eq!(Mode::HalfDuplex.to_string(), "half-duplex");
        assert_eq!(Mode::FullDuplex.to_string(), "full-duplex");
    }
}
