//! The local view of a systolic protocol at one vertex (Section 4).
//!
//! At a vertex `x`, each round of the period either activates an arc *into*
//! `x` (a **left activation** in the paper's row/column language), an arc
//! *out of* `x` (a **right activation**), both (full-duplex), or neither.
//! For a *complete* half-duplex local protocol — one activation every
//! round — the periodic pattern decomposes into alternating maximal blocks
//! `⟨(l_j), (r_j)⟩_{j<k}` of left and right activations with
//! `Σ_j (l_j + r_j) = s` (the paper's Definition 4.1), which is exactly
//! the data from which the matrices `Mx(λ)`, `Nx(λ)`, `Ox(λ)` are built.

use crate::protocol::SystolicProtocol;
use sg_graphs::digraph::Arc;

/// What happens at a vertex during one round of the period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No incident arc is active.
    Idle,
    /// An arc into the vertex is active (the vertex receives).
    Left(Arc),
    /// An arc out of the vertex is active (the vertex sends).
    Right(Arc),
    /// Both directions at once (full-duplex rounds).
    Both(Arc, Arc),
}

impl Activation {
    /// `true` for [`Activation::Left`] or [`Activation::Both`].
    pub fn has_left(self) -> bool {
        matches!(self, Activation::Left(_) | Activation::Both(_, _))
    }

    /// `true` for [`Activation::Right`] or [`Activation::Both`].
    pub fn has_right(self) -> bool {
        matches!(self, Activation::Right(_) | Activation::Both(_, _))
    }
}

/// The per-round activations of one vertex over one systolic period.
#[derive(Debug, Clone)]
pub struct LocalSchedule {
    /// The vertex this schedule describes.
    pub vertex: usize,
    /// Activation at each round `0..s` of the period.
    pub per_round: Vec<Activation>,
}

impl LocalSchedule {
    /// Extracts the schedule of `v` from a systolic protocol.
    pub fn of(sp: &SystolicProtocol, v: usize) -> Self {
        let per_round = sp
            .period()
            .iter()
            .map(|round| {
                let inc = round.arc_into(v);
                let out = round.arc_out_of(v);
                match (inc, out) {
                    (None, None) => Activation::Idle,
                    (Some(a), None) => Activation::Left(a),
                    (None, Some(a)) => Activation::Right(a),
                    (Some(a), Some(b)) => Activation::Both(a, b),
                }
            })
            .collect();
        Self {
            vertex: v,
            per_round,
        }
    }

    /// `true` when the vertex is active every round with a single
    /// direction — the "complete local protocol" of Section 4.
    pub fn is_complete_half_duplex(&self) -> bool {
        self.per_round
            .iter()
            .all(|a| matches!(a, Activation::Left(_) | Activation::Right(_)))
            && !self.per_round.is_empty()
    }

    /// `true` when the vertex is active every round in both directions —
    /// a complete full-duplex schedule (Section 6).
    pub fn is_complete_full_duplex(&self) -> bool {
        !self.per_round.is_empty()
            && self
                .per_round
                .iter()
                .all(|a| matches!(a, Activation::Both(_, _)))
    }

    /// Decomposes a complete half-duplex schedule into the alternating
    /// block pattern of Definition 4.1. Returns `None` when the schedule
    /// is not complete half-duplex or never alternates (all-left /
    /// all-right vertices forward nothing and have an empty local matrix).
    pub fn block_pattern(&self) -> Option<BlockPattern> {
        if !self.is_complete_half_duplex() {
            return None;
        }
        let s = self.per_round.len();
        let left: Vec<bool> = self.per_round.iter().map(|a| a.has_left()).collect();
        if left.iter().all(|&b| b) || left.iter().all(|&b| !b) {
            return None;
        }
        // Rotate so the period starts at a left activation preceded
        // (cyclically) by a right activation: the start of a left block.
        let start = (0..s)
            .find(|&i| left[i] && !left[(i + s - 1) % s])
            .expect("mixed pattern has a left-block boundary");
        let mut l = Vec::new();
        let mut r = Vec::new();
        let mut i = 0;
        while i < s {
            let mut run_l = 0;
            while i < s && left[(start + i) % s] {
                run_l += 1;
                i += 1;
            }
            let mut run_r = 0;
            while i < s && !left[(start + i) % s] {
                run_r += 1;
                i += 1;
            }
            // The rotation guarantees the pattern starts with a left run
            // and ends with a right run, so both runs are nonzero here.
            l.push(run_l);
            r.push(run_r);
        }
        Some(BlockPattern {
            l,
            r,
            rotation: start,
        })
    }
}

/// The alternating block pattern `⟨(l_j), (r_j)⟩` of Definition 4.1:
/// `l[j]` consecutive left activations followed by `r[j]` consecutive
/// right activations, cyclically, with `Σ (l[j] + r[j]) = s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPattern {
    /// Left-block lengths `l_0, …, l_{k−1}` (all ≥ 1).
    pub l: Vec<usize>,
    /// Right-block lengths `r_0, …, r_{k−1}` (all ≥ 1).
    pub r: Vec<usize>,
    /// The round of the period at which block 0 starts (the canonical
    /// rotation chosen by [`LocalSchedule::block_pattern`]).
    pub rotation: usize,
}

impl BlockPattern {
    /// Number of blocks `k` per period.
    pub fn k(&self) -> usize {
        self.l.len()
    }

    /// The systolic period `s = Σ (l_j + r_j)`.
    pub fn s(&self) -> usize {
        self.l.iter().sum::<usize>() + self.r.iter().sum::<usize>()
    }

    /// Sum of left-block lengths (the exponent of `p_{Σl}` in Lemma 4.2).
    pub fn total_left(&self) -> usize {
        self.l.iter().sum()
    }

    /// Sum of right-block lengths.
    pub fn total_right(&self) -> usize {
        self.r.iter().sum()
    }

    /// Builds a pattern directly from block lengths (for tests and the
    /// paper's worked examples). Panics unless both vectors are nonempty,
    /// equally long and all-positive.
    pub fn from_blocks(l: Vec<usize>, r: Vec<usize>) -> Self {
        assert!(!l.is_empty() && l.len() == r.len());
        assert!(l.iter().all(|&x| x >= 1) && r.iter().all(|&x| x >= 1));
        Self { l, r, rotation: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Mode;
    use crate::round::Round;
    use sg_graphs::digraph::Arc;

    /// Period on a path 0—1—2 around vertex 1:
    /// round 0: 0→1 (left), round 1: 2→1 (left), round 2: 1→0 (right),
    /// round 3: 1→2 (right).
    fn llrr_protocol() -> SystolicProtocol {
        SystolicProtocol::new(
            vec![
                Round::new(vec![Arc::new(0, 1)]),
                Round::new(vec![Arc::new(2, 1)]),
                Round::new(vec![Arc::new(1, 0)]),
                Round::new(vec![Arc::new(1, 2)]),
            ],
            Mode::HalfDuplex,
        )
    }

    #[test]
    fn schedule_extraction() {
        let sp = llrr_protocol();
        let sched = LocalSchedule::of(&sp, 1);
        assert!(sched.is_complete_half_duplex());
        assert!(sched.per_round[0].has_left());
        assert!(sched.per_round[2].has_right());
        // Vertex 0 is idle at rounds 1 and 3.
        let s0 = LocalSchedule::of(&sp, 0);
        assert!(!s0.is_complete_half_duplex());
        assert_eq!(s0.per_round[1], Activation::Idle);
    }

    #[test]
    fn block_pattern_llrr() {
        let sp = llrr_protocol();
        let p = LocalSchedule::of(&sp, 1).block_pattern().expect("complete");
        assert_eq!(p.l, vec![2]);
        assert_eq!(p.r, vec![2]);
        assert_eq!(p.k(), 1);
        assert_eq!(p.s(), 4);
        assert_eq!(p.rotation, 0);
    }

    #[test]
    fn block_pattern_rotated() {
        // Pattern R L L R around vertex 1 → canonical rotation starts at
        // round 1, giving l = [2], r = [2].
        let sp = SystolicProtocol::new(
            vec![
                Round::new(vec![Arc::new(1, 0)]),
                Round::new(vec![Arc::new(0, 1)]),
                Round::new(vec![Arc::new(2, 1)]),
                Round::new(vec![Arc::new(1, 2)]),
            ],
            Mode::HalfDuplex,
        );
        let p = LocalSchedule::of(&sp, 1).block_pattern().expect("complete");
        assert_eq!((p.l.clone(), p.r.clone()), (vec![2], vec![2]));
        assert_eq!(p.rotation, 1);
    }

    #[test]
    fn alternating_lrlr() {
        // L R L R: k = 2 blocks of (1,1).
        let sp = SystolicProtocol::new(
            vec![
                Round::new(vec![Arc::new(0, 1)]),
                Round::new(vec![Arc::new(1, 0)]),
                Round::new(vec![Arc::new(2, 1)]),
                Round::new(vec![Arc::new(1, 2)]),
            ],
            Mode::HalfDuplex,
        );
        let p = LocalSchedule::of(&sp, 1).block_pattern().expect("complete");
        assert_eq!(p.l, vec![1, 1]);
        assert_eq!(p.r, vec![1, 1]);
        assert_eq!(p.k(), 2);
    }

    #[test]
    fn all_left_has_no_pattern() {
        let sp = SystolicProtocol::new(
            vec![
                Round::new(vec![Arc::new(0, 1)]),
                Round::new(vec![Arc::new(2, 1)]),
            ],
            Mode::HalfDuplex,
        );
        assert!(LocalSchedule::of(&sp, 1).block_pattern().is_none());
    }

    #[test]
    fn full_duplex_schedule() {
        let sp = SystolicProtocol::new(
            vec![Round::full_duplex_from_edges([(0, 1)])],
            Mode::FullDuplex,
        );
        let s = LocalSchedule::of(&sp, 0);
        assert!(s.is_complete_full_duplex());
        assert!(!s.is_complete_half_duplex());
        assert!(s.block_pattern().is_none());
    }

    #[test]
    fn from_blocks_invariants() {
        let p = BlockPattern::from_blocks(vec![1, 2], vec![3, 1]);
        assert_eq!(p.s(), 7);
        assert_eq!(p.total_left(), 3);
        assert_eq!(p.total_right(), 4);
    }
}
