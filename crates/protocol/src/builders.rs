//! Hand-built protocols for the classical networks.
//!
//! These supply the *upper-bound* side of every experiment: the paper's
//! lower bounds are checked against executions of real protocols. Paths,
//! cycles, trees and grids have systolic protocols in the literature
//! (\[8\], \[11\], \[20\], \[14\]); hypercubes, complete graphs and Knödel graphs
//! have the classical dimension-sweep gossip; and any connected network
//! gets a universal edge-coloring periodic protocol à la Liestman–Richards
//! \[20\].

use crate::mode::Mode;
use crate::protocol::SystolicProtocol;
use crate::round::Round;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::matching::greedy_edge_coloring;

/// Period-4 half-duplex path protocol ("RRLL"): even edges rightward, odd
/// edges rightward, even edges leftward, odd edges leftward. Items travel
/// two hops per period in each direction; gossip completes in `≈ 2n`
/// rounds (systolization of paths costs a constant factor, cf. \[8\]).
pub fn path_rrll(n: usize) -> SystolicProtocol {
    assert!(n >= 2);
    let right = |parity: usize| {
        Round::new(
            (0..n - 1)
                .filter(|i| i % 2 == parity)
                .map(|i| Arc::new(i, i + 1))
                .collect(),
        )
    };
    let left = |parity: usize| {
        Round::new(
            (0..n - 1)
                .filter(|i| i % 2 == parity)
                .map(|i| Arc::new(i + 1, i))
                .collect(),
        )
    };
    SystolicProtocol::new(vec![right(0), right(1), left(0), left(1)], Mode::HalfDuplex)
}

/// Period-2 half-duplex protocol on an even cycle whose two rounds form a
/// directed Hamiltonian cycle (all arcs clockwise). This is exactly the
/// degenerate `s = 2` situation discussed at the start of Section 4: items
/// travel at one arc per round along the cycle, and gossip takes `n − 1`
/// rounds — meeting the paper's `s = 2` lower bound.
pub fn cycle_two_color_directed(n: usize) -> SystolicProtocol {
    assert!(n >= 4 && n.is_multiple_of(2), "needs an even cycle");
    let cw = |parity: usize| {
        Round::new(
            (0..n)
                .filter(|i| i % 2 == parity)
                .map(|i| Arc::new(i, (i + 1) % n))
                .collect(),
        )
    };
    SystolicProtocol::new(vec![cw(0), cw(1)], Mode::HalfDuplex)
}

/// Period-4 half-duplex cycle protocol: two clockwise rounds then two
/// counter-clockwise rounds; information flows both ways at half speed, so
/// gossip completes in `≈ n` rounds (cf. the optimal cycle protocols of
/// \[11\]).
pub fn cycle_rrll(n: usize) -> SystolicProtocol {
    assert!(n >= 4 && n.is_multiple_of(2), "needs an even cycle");
    let cw = |parity: usize| {
        Round::new(
            (0..n)
                .filter(|i| i % 2 == parity)
                .map(|i| Arc::new(i, (i + 1) % n))
                .collect(),
        )
    };
    let ccw = |parity: usize| {
        Round::new(
            (0..n)
                .filter(|i| i % 2 == parity)
                .map(|i| Arc::new((i + 1) % n, i))
                .collect(),
        )
    };
    SystolicProtocol::new(vec![cw(0), cw(1), ccw(0), ccw(1)], Mode::HalfDuplex)
}

/// Full-duplex dimension sweep on the hypercube `Q_k` (also the classic
/// `log n`-round gossip on `K_{2^k}` restricted to hypercube edges):
/// round `i` activates every dimension-`i` edge. Gossip completes in
/// exactly `k` rounds.
pub fn hypercube_sweep(k: usize) -> SystolicProtocol {
    assert!(k >= 1);
    let n = 1usize << k;
    let rounds = (0..k)
        .map(|b| {
            Round::full_duplex_from_edges(
                (0..n)
                    .filter(|x| x & (1 << b) == 0)
                    .map(|x| (x, x | (1 << b))),
            )
        })
        .collect();
    SystolicProtocol::new(rounds, Mode::FullDuplex)
}

/// Full-duplex dimension sweep on the Knödel graph `W_{Δ,n}`: round `k`
/// activates the dimension-`k` perfect matching. The classical protocol
/// gossips in `≈ log₂ n` rounds for `Δ = ⌊log₂ n⌋`.
pub fn knodel_sweep(delta: usize, n: usize) -> SystolicProtocol {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "knodel_sweep: Knödel graphs are defined on an even number of \
         vertices >= 2, got n = {n}"
    );
    assert!(
        delta >= 1,
        "knodel_sweep: the dimension sweep needs delta >= 1 matchings, got delta = 0"
    );
    assert!(
        (1usize << delta) <= n,
        "knodel_sweep: W(delta, n) needs 2^delta <= n, got delta = {delta}, n = {n}"
    );
    let half = n / 2;
    let rounds = (0..delta)
        .map(|k| {
            Round::full_duplex_from_edges(
                (0..half).map(move |j| (j, half + (j + (1usize << k) - 1) % half)),
            )
        })
        .collect();
    SystolicProtocol::new(rounds, Mode::FullDuplex)
}

/// Period-4 full-duplex "traffic light" protocol on the `w × h` grid
/// (Kortsarz–Peleg style \[14\]): even row edges, odd row edges, even column
/// edges, odd column edges.
pub fn grid_traffic_light(w: usize, h: usize) -> SystolicProtocol {
    assert!(w >= 2 && h >= 2);
    let id = |x: usize, y: usize| y * w + x;
    let row = |parity: usize| {
        Round::full_duplex_from_edges((0..h).flat_map(move |y| {
            (0..w - 1)
                .filter(move |x| x % 2 == parity)
                .map(move |x| (id(x, y), id(x + 1, y)))
        }))
    };
    let col = |parity: usize| {
        Round::full_duplex_from_edges((0..w).flat_map(move |x| {
            (0..h - 1)
                .filter(move |y| y % 2 == parity)
                .map(move |y| (id(x, y), id(x, y + 1)))
        }))
    };
    SystolicProtocol::new(vec![row(0), row(1), col(0), col(1)], Mode::FullDuplex)
}

/// Universal half-duplex periodic protocol from a proper edge coloring
/// (Liestman–Richards \[20\]): for each color class `c`, one round sends
/// every color-`c` edge "forward" (low → high endpoint) and a later round
/// sends it "backward", giving period `2·χ'`. Gossips on every connected
/// graph because each period moves information across every edge in both
/// directions.
pub fn edge_coloring_periodic(g: &Digraph) -> SystolicProtocol {
    assert!(g.is_symmetric(), "needs an undirected network");
    let (ncolors, colors) = greedy_edge_coloring(g);
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut rounds = Vec::with_capacity(2 * ncolors);
    for c in 0..ncolors {
        let fwd = edges
            .iter()
            .zip(&colors)
            .filter(|(_, &ec)| ec == c)
            .map(|(&(u, v), _)| Arc::new(u, v))
            .collect();
        rounds.push(Round::new(fwd));
        let bwd = edges
            .iter()
            .zip(&colors)
            .filter(|(_, &ec)| ec == c)
            .map(|(&(u, v), _)| Arc::new(v, u))
            .collect();
        rounds.push(Round::new(bwd));
    }
    SystolicProtocol::new(rounds, Mode::HalfDuplex)
}

/// Universal full-duplex periodic protocol: one round per color class,
/// every edge of the class active in both directions; period `χ'`.
pub fn full_duplex_coloring_periodic(g: &Digraph) -> SystolicProtocol {
    assert!(g.is_symmetric(), "needs an undirected network");
    let (ncolors, colors) = greedy_edge_coloring(g);
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let rounds = (0..ncolors)
        .map(|c| {
            Round::full_duplex_from_edges(
                edges
                    .iter()
                    .zip(&colors)
                    .filter(|(_, &ec)| ec == c)
                    .map(|(&e, _)| e),
            )
        })
        .collect();
    SystolicProtocol::new(rounds, Mode::FullDuplex)
}

/// Structured systolic protocol for the Wrapped Butterfly: period `D·d`
/// rounds. Round `(l, k)` activates, for every word `x`, the arc from
/// `(x, l)` to the level below (cyclically) substituting the changed digit
/// by `x_p + k (mod d)` — a perfect matching between consecutive levels.
/// All `D·d^{D+1}` arcs of `WBF→(d, D)` are covered once per period, so
/// the protocol gossips on the directed wrapped butterfly and (as a
/// half-duplex protocol) on the undirected one.
pub fn wbf_shift_protocol(d: usize, dd: usize) -> SystolicProtocol {
    use sg_graphs::codec::{digit, pow, with_digit};
    assert!(
        d >= 2,
        "wbf_shift_protocol: the digit base d must be >= 2 (d = 0 has no \
         digits and d = 1 degenerates to a cycle of levels), got d = {d}"
    );
    assert!(
        dd >= 2,
        "wbf_shift_protocol: the wrapped butterfly needs >= 2 levels, got D = {dd}"
    );
    let words = pow(d, dd);
    let vertex = |w: usize, l: usize| l * words + w;
    let mut rounds = Vec::with_capacity(dd * d);
    // Descend the levels so information pipelines around the level ring.
    for l in (0..dd).rev() {
        let (pos, nl) = if l > 0 {
            (l - 1, l - 1)
        } else {
            (dd - 1, dd - 1)
        };
        for k in 0..d {
            let arcs = (0..words)
                .map(|w| {
                    let digit_now = digit(w, pos, d);
                    let target = with_digit(w, pos, d, (digit_now + k) % d);
                    Arc::new(vertex(w, l), vertex(target, nl))
                })
                .collect();
            rounds.push(Round::new(arcs));
        }
    }
    SystolicProtocol::new(rounds, Mode::Directed)
}

/// Non-systolic path gossip by two sequential sweeps: accumulate
/// everything at the right end (`n − 1` rounds of one arc each), then
/// broadcast back (`n − 1` more). `2(n−1)` rounds total — the baseline
/// that the *systolic* RRLL protocol is measured against, following the
/// systolization-cost question of \[8\].
pub fn path_two_sweep(n: usize) -> crate::protocol::Protocol {
    assert!(n >= 2);
    let mut rounds = Vec::with_capacity(2 * (n - 1));
    for i in 0..n - 1 {
        rounds.push(Round::new(vec![Arc::new(i, i + 1)]));
    }
    for i in (0..n - 1).rev() {
        rounds.push(Round::new(vec![Arc::new(i + 1, i)]));
    }
    crate::protocol::Protocol::new(rounds, Mode::HalfDuplex)
}

/// Round-robin tournament on `K_n` (even `n`), full-duplex: the classical
/// circle method produces `n − 1` perfect matchings, one per round;
/// vertex `n − 1` stays fixed, the others rotate.
pub fn complete_round_robin(n: usize) -> SystolicProtocol {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "needs an even complete graph"
    );
    let m = n - 1;
    let rounds = (0..m)
        .map(|r| {
            let mut edges = vec![(m, r)];
            for i in 1..n / 2 {
                let a = (r + i) % m;
                let b = (r + m - i) % m;
                edges.push((a, b));
            }
            Round::full_duplex_from_edges(edges)
        })
        .collect();
    SystolicProtocol::new(rounds, Mode::FullDuplex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;

    #[test]
    fn path_rrll_valid() {
        let g = generators::path(7);
        let sp = path_rrll(7);
        assert_eq!(sp.s(), 4);
        sp.validate(&g).expect("valid protocol");
    }

    #[test]
    fn cycle_protocols_valid() {
        let g = generators::cycle(8);
        cycle_two_color_directed(8).validate(&g).expect("2-color");
        cycle_rrll(8).validate(&g).expect("rrll");
    }

    #[test]
    fn hypercube_sweep_valid() {
        let g = generators::hypercube(4);
        let sp = hypercube_sweep(4);
        assert_eq!(sp.s(), 4);
        sp.validate(&g).expect("valid");
        // Every round is a perfect matching: n/2 edges = n arcs.
        for r in sp.period() {
            assert_eq!(r.len(), 16);
        }
    }

    #[test]
    fn knodel_sweep_valid() {
        let g = generators::knodel(4, 16);
        let sp = knodel_sweep(4, 16);
        sp.validate(&g).expect("valid");
        for r in sp.period() {
            assert_eq!(r.len(), 16); // perfect matching, both directions
        }
    }

    #[test]
    fn grid_traffic_light_valid() {
        let g = generators::grid2d(5, 4);
        let sp = grid_traffic_light(5, 4);
        assert_eq!(sp.s(), 4);
        sp.validate(&g).expect("valid");
    }

    #[test]
    fn edge_coloring_periodic_valid_on_many_graphs() {
        for g in [
            generators::path(9),
            generators::cycle(7),
            generators::complete_dary_tree(3, 2),
            generators::wrapped_butterfly(2, 3),
            generators::de_bruijn(2, 4),
            generators::kautz(2, 3),
        ] {
            let sp = edge_coloring_periodic(&g);
            sp.validate(&g).expect("valid half-duplex");
            let fd = full_duplex_coloring_periodic(&g);
            fd.validate(&g).expect("valid full-duplex");
            assert_eq!(sp.s(), 2 * fd.s());
        }
    }

    #[test]
    fn every_edge_covered_each_period() {
        let g = generators::de_bruijn(2, 3);
        let sp = edge_coloring_periodic(&g);
        let mut seen = std::collections::HashSet::new();
        for r in sp.period() {
            for a in r.arcs() {
                seen.insert(*a);
            }
        }
        // Both directions of every edge appear in each period.
        assert_eq!(seen.len(), g.arc_count());
    }

    #[test]
    fn wbf_shift_protocol_valid_and_covers_all_arcs() {
        for (d, dd) in [(2usize, 3usize), (2, 4), (3, 3)] {
            let g = generators::wrapped_butterfly_directed(d, dd);
            let sp = wbf_shift_protocol(d, dd);
            assert_eq!(sp.s(), dd * d);
            sp.validate(&g).expect("valid directed protocol");
            // Every arc of WBF→ appears exactly once per period.
            let mut seen = std::collections::HashSet::new();
            for r in sp.period() {
                for a in r.arcs() {
                    assert!(seen.insert(*a), "arc {a} repeated in period");
                }
            }
            assert_eq!(seen.len(), g.arc_count());
            // And it is valid as a half-duplex protocol on the undirected
            // wrapped butterfly.
            let gu = generators::wrapped_butterfly(d, dd);
            let hd = SystolicProtocol::new(sp.period().to_vec(), Mode::HalfDuplex);
            hd.validate(&gu).expect("valid half-duplex protocol");
        }
    }

    #[test]
    #[should_panic(expected = "even number of vertices")]
    fn knodel_sweep_rejects_odd_n() {
        let _ = knodel_sweep(3, 15);
    }

    #[test]
    #[should_panic(expected = "delta >= 1")]
    fn knodel_sweep_rejects_zero_delta() {
        let _ = knodel_sweep(0, 16);
    }

    #[test]
    #[should_panic(expected = "2^delta <= n")]
    fn knodel_sweep_rejects_oversized_delta() {
        let _ = knodel_sweep(5, 16);
    }

    #[test]
    #[should_panic(expected = "digit base d must be >= 2")]
    fn wbf_shift_rejects_degenerate_base() {
        let _ = wbf_shift_protocol(0, 3);
    }

    #[test]
    #[should_panic(expected = ">= 2 levels")]
    fn wbf_shift_rejects_single_level() {
        let _ = wbf_shift_protocol(2, 1);
    }

    #[test]
    fn path_two_sweep_shape() {
        let p = path_two_sweep(5);
        assert_eq!(p.len(), 8);
        p.validate(&generators::path(5)).expect("valid");
        // Not systolic with any small period (rounds differ).
        assert!(!p.is_systolic_with_period(1));
        assert!(!p.is_systolic_with_period(2));
    }

    #[test]
    fn round_robin_is_perfect_matchings() {
        let n = 8;
        let g = generators::complete(n);
        let sp = complete_round_robin(n);
        assert_eq!(sp.s(), n - 1);
        sp.validate(&g).expect("valid");
        for r in sp.period() {
            assert_eq!(r.len(), n, "perfect matching = n/2 edges = n arcs");
        }
        // Every edge of K_n appears exactly once per period.
        let mut seen = std::collections::HashSet::new();
        for r in sp.period() {
            for a in r.arcs() {
                if a.from < a.to {
                    assert!(seen.insert((a.from, a.to)));
                }
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }
}
