//! Gossip-protocol representation for the systolic-gossip reproduction.
//!
//! Implements Definitions 3.1 and 3.2 of the paper: protocols are finite
//! sequences of rounds, each round an endpoint-disjoint set of active arcs
//! (with the full-duplex opposite-pair variant), and systolic protocols
//! are periodic repetitions of `s` such rounds. The [`local`] module
//! extracts the per-vertex activation patterns `⟨(l_j), (r_j)⟩` on which
//! the paper's Section 4 analysis operates, and [`builders`] provides the
//! classical protocols used as experimental upper bounds.

pub mod builders;
pub mod local;
pub mod mode;
pub mod protocol;
pub mod round;

pub use local::{Activation, BlockPattern, LocalSchedule};
pub use mode::Mode;
pub use protocol::{Protocol, SystolicProtocol};
pub use round::{ProtocolError, Round};
