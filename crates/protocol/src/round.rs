//! A single communication round: the set of arcs active at one time step.

use crate::mode::Mode;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::matching::{is_full_duplex_round, is_matching};

/// One communication round — the set `A_i` of Definition 3.1, stored
/// sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Round {
    arcs: Vec<Arc>,
}

/// Why a round (or protocol) fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// An activated arc is not an arc of the network.
    ArcNotInGraph { round: usize, arc: Arc },
    /// The round violates the endpoint-disjointness (matching) condition.
    NotAMatching { round: usize },
    /// Full-duplex rounds must consist of endpoint-disjoint opposite pairs.
    NotFullDuplexPairs { round: usize },
    /// Half- and full-duplex protocols need a symmetric digraph.
    GraphNotSymmetric,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::ArcNotInGraph { round, arc } => {
                write!(f, "round {round}: arc {arc} is not in the network")
            }
            ProtocolError::NotAMatching { round } => {
                write!(f, "round {round}: active arcs are not endpoint-disjoint")
            }
            ProtocolError::NotFullDuplexPairs { round } => {
                write!(
                    f,
                    "round {round}: full-duplex rounds need endpoint-disjoint opposite pairs"
                )
            }
            ProtocolError::GraphNotSymmetric => {
                write!(f, "half/full-duplex protocols need an undirected network")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl Round {
    /// Builds a round from arcs (sorted, deduplicated; no validation — see
    /// [`Round::validate`]).
    pub fn new(mut arcs: Vec<Arc>) -> Self {
        arcs.sort_unstable();
        arcs.dedup();
        Self { arcs }
    }

    /// An empty (idle) round.
    pub fn empty() -> Self {
        Self { arcs: Vec::new() }
    }

    /// Builds a full-duplex round from undirected edges: each edge
    /// contributes both arcs.
    pub fn full_duplex_from_edges(edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut arcs = Vec::new();
        for (u, v) in edges {
            arcs.push(Arc::new(u, v));
            arcs.push(Arc::new(v, u));
        }
        Self::new(arcs)
    }

    /// The active arcs, sorted.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Number of active arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` when no arc is active.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Validates this round against a network and mode; `round_index` is
    /// only used for error reporting.
    pub fn validate(
        &self,
        g: &Digraph,
        mode: Mode,
        round_index: usize,
    ) -> Result<(), ProtocolError> {
        for a in &self.arcs {
            let in_range =
                (a.from as usize) < g.vertex_count() && (a.to as usize) < g.vertex_count();
            if !in_range || !g.has_arc(a.from as usize, a.to as usize) {
                return Err(ProtocolError::ArcNotInGraph {
                    round: round_index,
                    arc: *a,
                });
            }
        }
        match mode {
            Mode::Directed | Mode::HalfDuplex => {
                if !is_matching(g.vertex_count(), &self.arcs) {
                    return Err(ProtocolError::NotAMatching { round: round_index });
                }
            }
            Mode::FullDuplex => {
                if !is_full_duplex_round(g.vertex_count(), &self.arcs) {
                    return Err(ProtocolError::NotFullDuplexPairs { round: round_index });
                }
            }
        }
        Ok(())
    }

    /// The arc entering `v` in this round, if any. Under the matching
    /// condition there is at most one (full-duplex included).
    pub fn arc_into(&self, v: usize) -> Option<Arc> {
        self.arcs.iter().copied().find(|a| a.to as usize == v)
    }

    /// The arc leaving `v` in this round, if any.
    pub fn arc_out_of(&self, v: usize) -> Option<Arc> {
        // Arcs are sorted by (from, to): binary search the block.
        let i = self.arcs.partition_point(|a| (a.from as usize) < v);
        self.arcs.get(i).copied().filter(|a| a.from as usize == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;

    #[test]
    fn round_sorts_and_dedups() {
        let r = Round::new(vec![Arc::new(2, 3), Arc::new(0, 1), Arc::new(2, 3)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.arcs()[0], Arc::new(0, 1));
    }

    #[test]
    fn validate_matching_modes() {
        let g = generators::path(4);
        let ok = Round::new(vec![Arc::new(0, 1), Arc::new(2, 3)]);
        assert!(ok.validate(&g, Mode::HalfDuplex, 0).is_ok());
        let clash = Round::new(vec![Arc::new(0, 1), Arc::new(1, 2)]);
        assert_eq!(
            clash.validate(&g, Mode::HalfDuplex, 3),
            Err(ProtocolError::NotAMatching { round: 3 })
        );
    }

    #[test]
    fn validate_arc_membership() {
        let g = generators::path(4);
        let bad = Round::new(vec![Arc::new(0, 2)]);
        assert!(matches!(
            bad.validate(&g, Mode::Directed, 1),
            Err(ProtocolError::ArcNotInGraph { round: 1, .. })
        ));
    }

    #[test]
    fn validate_full_duplex() {
        let g = generators::path(4);
        let fd = Round::full_duplex_from_edges([(0, 1), (2, 3)]);
        assert!(fd.validate(&g, Mode::FullDuplex, 0).is_ok());
        // One-way arc is invalid in full-duplex.
        let hd = Round::new(vec![Arc::new(0, 1)]);
        assert_eq!(
            hd.validate(&g, Mode::FullDuplex, 0),
            Err(ProtocolError::NotFullDuplexPairs { round: 0 })
        );
        // But the full-duplex pair is invalid as a half-duplex matching.
        assert_eq!(
            fd.validate(&g, Mode::HalfDuplex, 0),
            Err(ProtocolError::NotAMatching { round: 0 })
        );
    }

    #[test]
    fn arc_lookup() {
        let r = Round::new(vec![Arc::new(0, 1), Arc::new(3, 2)]);
        assert_eq!(r.arc_into(1), Some(Arc::new(0, 1)));
        assert_eq!(r.arc_into(0), None);
        assert_eq!(r.arc_out_of(3), Some(Arc::new(3, 2)));
        assert_eq!(r.arc_out_of(2), None);
    }

    #[test]
    fn empty_round_is_valid() {
        let g = generators::path(3);
        let r = Round::empty();
        assert!(r.is_empty());
        assert!(r.validate(&g, Mode::HalfDuplex, 0).is_ok());
        assert!(r.validate(&g, Mode::FullDuplex, 0).is_ok());
    }
}
