//! A single communication round: the set of arcs active at one time step.

use crate::mode::Mode;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::matching::{is_full_duplex_round, is_matching};

/// One communication round — the set `A_i` of Definition 3.1, stored
/// sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Round {
    arcs: Vec<Arc>,
}

/// Why a round (or protocol) fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// An activated arc is not an arc of the network.
    ArcNotInGraph { round: usize, arc: Arc },
    /// The round violates the endpoint-disjointness (matching) condition.
    NotAMatching { round: usize },
    /// Full-duplex rounds must consist of endpoint-disjoint opposite pairs.
    NotFullDuplexPairs { round: usize },
    /// Half- and full-duplex protocols need a symmetric digraph.
    GraphNotSymmetric,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::ArcNotInGraph { round, arc } => {
                write!(f, "round {round}: arc {arc} is not in the network")
            }
            ProtocolError::NotAMatching { round } => {
                write!(f, "round {round}: active arcs are not endpoint-disjoint")
            }
            ProtocolError::NotFullDuplexPairs { round } => {
                write!(
                    f,
                    "round {round}: full-duplex rounds need endpoint-disjoint opposite pairs"
                )
            }
            ProtocolError::GraphNotSymmetric => {
                write!(f, "half/full-duplex protocols need an undirected network")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl Round {
    /// Builds a round from arcs (sorted, deduplicated; no validation — see
    /// [`Round::validate`]).
    pub fn new(mut arcs: Vec<Arc>) -> Self {
        arcs.sort_unstable();
        arcs.dedup();
        Self { arcs }
    }

    /// An empty (idle) round.
    pub fn empty() -> Self {
        Self { arcs: Vec::new() }
    }

    /// Builds a full-duplex round from undirected edges: each edge
    /// contributes both arcs.
    pub fn full_duplex_from_edges(edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut arcs = Vec::new();
        for (u, v) in edges {
            arcs.push(Arc::new(u, v));
            arcs.push(Arc::new(v, u));
        }
        Self::new(arcs)
    }

    /// The active arcs, sorted.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Number of active arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` when no arc is active.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Validates this round against a network and mode; `round_index` is
    /// only used for error reporting.
    pub fn validate(
        &self,
        g: &Digraph,
        mode: Mode,
        round_index: usize,
    ) -> Result<(), ProtocolError> {
        for a in &self.arcs {
            let in_range =
                (a.from as usize) < g.vertex_count() && (a.to as usize) < g.vertex_count();
            if !in_range || !g.has_arc(a.from as usize, a.to as usize) {
                return Err(ProtocolError::ArcNotInGraph {
                    round: round_index,
                    arc: *a,
                });
            }
        }
        match mode {
            Mode::Directed | Mode::HalfDuplex => {
                if !is_matching(g.vertex_count(), &self.arcs) {
                    return Err(ProtocolError::NotAMatching { round: round_index });
                }
            }
            Mode::FullDuplex => {
                if !is_full_duplex_round(g.vertex_count(), &self.arcs) {
                    return Err(ProtocolError::NotFullDuplexPairs { round: round_index });
                }
            }
        }
        Ok(())
    }

    /// The highest vertex index any arc of this round touches, or `None`
    /// for an empty round. Engines use it to size per-round scratch
    /// without knowing the network size.
    pub fn max_vertex(&self) -> Option<usize> {
        self.arcs
            .iter()
            .map(|a| (a.from as usize).max(a.to as usize))
            .max()
    }

    /// The sorted, distinct sources of this round that are *also* targets
    /// of the round. Exactly these rows need a beginning-of-round snapshot
    /// under the semantics of Definition 3.1 (every other source row is
    /// immutable for the whole round), so this is the schedule compiler's
    /// key per-round datum. Empty for every half-duplex matching round.
    pub fn snapshot_sources(&self) -> Vec<usize> {
        let Some(max_v) = self.max_vertex() else {
            return Vec::new();
        };
        let mut is_target = vec![false; max_v + 1];
        for a in &self.arcs {
            is_target[a.to as usize] = true;
        }
        // Arcs are sorted by (from, to): the `from` stream is
        // non-decreasing, so consecutive dedup yields a sorted set.
        let mut out = Vec::new();
        for a in &self.arcs {
            let u = a.from as usize;
            if is_target[u] && out.last() != Some(&u) {
                out.push(u);
            }
        }
        out
    }

    /// `true` when some vertex is the target of two or more arcs — the
    /// round then violates the matching condition and row-parallel
    /// engines must fall back to sequential application.
    pub fn has_duplicate_targets(&self) -> bool {
        let Some(max_v) = self.max_vertex() else {
            return false;
        };
        let mut seen = vec![false; max_v + 1];
        for a in &self.arcs {
            let t = a.to as usize;
            if seen[t] {
                return true;
            }
            seen[t] = true;
        }
        false
    }

    /// The arc entering `v` in this round, if any. Under the matching
    /// condition there is at most one (full-duplex included).
    pub fn arc_into(&self, v: usize) -> Option<Arc> {
        self.arcs.iter().copied().find(|a| a.to as usize == v)
    }

    /// The arc leaving `v` in this round, if any.
    pub fn arc_out_of(&self, v: usize) -> Option<Arc> {
        // Arcs are sorted by (from, to): binary search the block.
        let i = self.arcs.partition_point(|a| (a.from as usize) < v);
        self.arcs.get(i).copied().filter(|a| a.from as usize == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;

    #[test]
    fn round_sorts_and_dedups() {
        let r = Round::new(vec![Arc::new(2, 3), Arc::new(0, 1), Arc::new(2, 3)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.arcs()[0], Arc::new(0, 1));
    }

    #[test]
    fn validate_matching_modes() {
        let g = generators::path(4);
        let ok = Round::new(vec![Arc::new(0, 1), Arc::new(2, 3)]);
        assert!(ok.validate(&g, Mode::HalfDuplex, 0).is_ok());
        let clash = Round::new(vec![Arc::new(0, 1), Arc::new(1, 2)]);
        assert_eq!(
            clash.validate(&g, Mode::HalfDuplex, 3),
            Err(ProtocolError::NotAMatching { round: 3 })
        );
    }

    #[test]
    fn validate_arc_membership() {
        let g = generators::path(4);
        let bad = Round::new(vec![Arc::new(0, 2)]);
        assert!(matches!(
            bad.validate(&g, Mode::Directed, 1),
            Err(ProtocolError::ArcNotInGraph { round: 1, .. })
        ));
    }

    #[test]
    fn validate_full_duplex() {
        let g = generators::path(4);
        let fd = Round::full_duplex_from_edges([(0, 1), (2, 3)]);
        assert!(fd.validate(&g, Mode::FullDuplex, 0).is_ok());
        // One-way arc is invalid in full-duplex.
        let hd = Round::new(vec![Arc::new(0, 1)]);
        assert_eq!(
            hd.validate(&g, Mode::FullDuplex, 0),
            Err(ProtocolError::NotFullDuplexPairs { round: 0 })
        );
        // But the full-duplex pair is invalid as a half-duplex matching.
        assert_eq!(
            fd.validate(&g, Mode::HalfDuplex, 0),
            Err(ProtocolError::NotAMatching { round: 0 })
        );
    }

    #[test]
    fn arc_lookup() {
        let r = Round::new(vec![Arc::new(0, 1), Arc::new(3, 2)]);
        assert_eq!(r.arc_into(1), Some(Arc::new(0, 1)));
        assert_eq!(r.arc_into(0), None);
        assert_eq!(r.arc_out_of(3), Some(Arc::new(3, 2)));
        assert_eq!(r.arc_out_of(2), None);
    }

    #[test]
    fn snapshot_sources_are_sources_that_are_also_targets() {
        // 0→1, 1→2: 1 is both a source and a target; 0 is not a target.
        let r = Round::new(vec![Arc::new(0, 1), Arc::new(1, 2)]);
        assert_eq!(r.snapshot_sources(), vec![1]);
        // Full-duplex pair: both endpoints send and receive.
        let fd = Round::full_duplex_from_edges([(0, 1)]);
        assert_eq!(fd.snapshot_sources(), vec![0, 1]);
        // A matching round needs no snapshots at all.
        let m = Round::new(vec![Arc::new(0, 1), Arc::new(2, 3)]);
        assert!(m.snapshot_sources().is_empty());
        assert!(Round::empty().snapshot_sources().is_empty());
    }

    #[test]
    fn duplicate_target_detection() {
        assert!(!Round::new(vec![Arc::new(0, 1), Arc::new(2, 3)]).has_duplicate_targets());
        assert!(Round::new(vec![Arc::new(0, 2), Arc::new(1, 2)]).has_duplicate_targets());
        assert!(!Round::empty().has_duplicate_targets());
    }

    #[test]
    fn max_vertex_bounds_the_round() {
        assert_eq!(Round::empty().max_vertex(), None);
        let r = Round::new(vec![Arc::new(0, 7), Arc::new(3, 1)]);
        assert_eq!(r.max_vertex(), Some(7));
    }

    #[test]
    fn empty_round_is_valid() {
        let g = generators::path(3);
        let r = Round::empty();
        assert!(r.is_empty());
        assert!(r.validate(&g, Mode::HalfDuplex, 0).is_ok());
        assert!(r.validate(&g, Mode::FullDuplex, 0).is_ok());
    }
}
