//! Protocols and systolic protocols (Definitions 3.1 and 3.2).

use crate::mode::Mode;
use crate::round::{ProtocolError, Round};
use sg_graphs::digraph::Digraph;

/// A gossip/broadcast protocol: a finite sequence of rounds under a
/// communication mode (Definition 3.1; whether it actually *gossips* is a
/// semantic property checked by the simulator in `sg-sim`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protocol {
    rounds: Vec<Round>,
    mode: Mode,
}

impl Protocol {
    /// Builds a protocol from rounds.
    pub fn new(rounds: Vec<Round>, mode: Mode) -> Self {
        Self { rounds, mode }
    }

    /// The rounds, in execution order.
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// The communication mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Protocol length `t` (number of rounds).
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` when there are no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Validates every round against the network: arc membership, the
    /// matching condition of Definition 3.1 (or its full-duplex variant)
    /// and graph symmetry for the undirected modes.
    pub fn validate(&self, g: &Digraph) -> Result<(), ProtocolError> {
        if self.mode.requires_symmetric_graph() && !g.is_symmetric() {
            return Err(ProtocolError::GraphNotSymmetric);
        }
        for (i, r) in self.rounds.iter().enumerate() {
            r.validate(g, self.mode, i)?;
        }
        Ok(())
    }

    /// `true` when the protocol is `s`-systolic in the sense of
    /// Definition 3.2: `A_i = A_{i+s}` for every `i ≤ t − s`.
    pub fn is_systolic_with_period(&self, s: usize) -> bool {
        if s == 0 {
            return false;
        }
        self.rounds
            .iter()
            .zip(self.rounds.iter().skip(s))
            .all(|(a, b)| a == b)
    }

    /// The smallest `s ≥ 1` for which the protocol is `s`-systolic
    /// (`t` itself when the protocol has no shorter period).
    pub fn minimal_period(&self) -> usize {
        (1..=self.rounds.len())
            .find(|&s| self.is_systolic_with_period(s))
            .unwrap_or(self.rounds.len().max(1))
    }

    /// Total number of activations `m = Σ_i |A_i|` (the dimension of the
    /// unrolled delay matrix).
    pub fn activation_count(&self) -> usize {
        self.rounds.iter().map(Round::len).sum()
    }
}

/// An infinite periodic (systolic) protocol: one period of `s` rounds that
/// repeats (Definition 3.2). Finite prefixes are obtained with
/// [`SystolicProtocol::unroll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystolicProtocol {
    period: Vec<Round>,
    mode: Mode,
}

impl SystolicProtocol {
    /// Builds from one period of rounds.
    pub fn new(period: Vec<Round>, mode: Mode) -> Self {
        assert!(!period.is_empty(), "a systolic protocol needs s >= 1");
        Self { period, mode }
    }

    /// The systolic period `s`.
    pub fn s(&self) -> usize {
        self.period.len()
    }

    /// The rounds of one period.
    pub fn period(&self) -> &[Round] {
        &self.period
    }

    /// The communication mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The round active at (0-based) time `i` of the infinite execution.
    pub fn round_at(&self, i: usize) -> &Round {
        &self.period[i % self.period.len()]
    }

    /// The finite prefix of length `t` as a plain [`Protocol`].
    pub fn unroll(&self, t: usize) -> Protocol {
        let rounds = (0..t).map(|i| self.round_at(i).clone()).collect();
        Protocol::new(rounds, self.mode)
    }

    /// Validates one period (and hence the whole infinite execution).
    pub fn validate(&self, g: &Digraph) -> Result<(), ProtocolError> {
        self.unroll(self.s()).validate(g)
    }

    /// Activations per period, `Σ_{i<s} |A_i|` — the dimension of the
    /// periodic delay matrix.
    pub fn activations_per_period(&self) -> usize {
        self.period.iter().map(Round::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::digraph::Arc;
    use sg_graphs::generators;

    fn ab() -> Round {
        Round::new(vec![Arc::new(0, 1)])
    }
    fn ba() -> Round {
        Round::new(vec![Arc::new(1, 0)])
    }

    #[test]
    fn protocol_basics() {
        let p = Protocol::new(vec![ab(), ba(), ab(), ba()], Mode::HalfDuplex);
        assert_eq!(p.len(), 4);
        assert_eq!(p.activation_count(), 4);
        assert!(p.is_systolic_with_period(2));
        assert!(!p.is_systolic_with_period(1));
        assert_eq!(p.minimal_period(), 2);
        // Any protocol is trivially t-systolic.
        assert!(p.is_systolic_with_period(4));
    }

    #[test]
    fn validate_against_graph() {
        let g = generators::path(2);
        let p = Protocol::new(vec![ab(), ba()], Mode::HalfDuplex);
        assert!(p.validate(&g).is_ok());
        // Directed path misses the reverse arc.
        let directed = sg_graphs::Digraph::from_arcs(2, [Arc::new(0, 1)]);
        assert!(p.validate(&directed).is_err());
        // Half-duplex on an asymmetric graph is rejected outright.
        let p2 = Protocol::new(vec![ab()], Mode::HalfDuplex);
        assert_eq!(
            p2.validate(&directed),
            Err(crate::round::ProtocolError::GraphNotSymmetric)
        );
        // But the directed mode accepts it.
        let p3 = Protocol::new(vec![ab()], Mode::Directed);
        assert!(p3.validate(&directed).is_ok());
    }

    #[test]
    fn systolic_unroll() {
        let sp = SystolicProtocol::new(vec![ab(), ba()], Mode::HalfDuplex);
        assert_eq!(sp.s(), 2);
        let p = sp.unroll(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.rounds()[4], ab());
        assert!(p.is_systolic_with_period(2));
        assert_eq!(sp.activations_per_period(), 2);
    }

    #[test]
    fn round_at_wraps() {
        let sp = SystolicProtocol::new(vec![ab(), ba(), Round::empty()], Mode::HalfDuplex);
        assert_eq!(sp.round_at(0), &ab());
        assert_eq!(sp.round_at(4), &ba());
        assert_eq!(sp.round_at(5), &Round::empty());
    }

    #[test]
    #[should_panic(expected = "s >= 1")]
    fn empty_period_panics() {
        let _ = SystolicProtocol::new(vec![], Mode::HalfDuplex);
    }

    #[test]
    fn minimal_period_of_constant_protocol() {
        let p = Protocol::new(vec![ab(), ab(), ab()], Mode::Directed);
        assert_eq!(p.minimal_period(), 1);
    }
}
