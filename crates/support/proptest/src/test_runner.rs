//! Deterministic case streams for [`crate::proptest!`].

use rand::prelude::*;

/// The generator handed to strategies: one independent, reproducible
/// stream per (test function, case index) pair.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The stream for `case` of the test identified by `fn_seed`.
    pub fn for_case(fn_seed: u64, case: u32) -> Self {
        Self {
            inner: StdRng::seed_from_u64(
                fn_seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform integer in `[lo, hi]`.
    #[inline]
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// A stable 64-bit seed for a test function, derived from its fully
/// qualified name (FNV-1a).
pub fn fn_seed(qualified_name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in qualified_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_seed_distinguishes_names() {
        assert_ne!(fn_seed("a::x"), fn_seed("a::y"));
        assert_eq!(fn_seed("a::x"), fn_seed("a::x"));
    }

    #[test]
    fn case_streams_are_independent_and_stable() {
        let s = fn_seed("m::t");
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(s, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::for_case(s, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(s, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
