//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values (`proptest::strategy::Strategy`
/// subset; generation only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Always produces a clone of its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between two strategies (`prop_oneof!` with two arms).
#[derive(Debug, Clone, Copy)]
pub struct OneOf2<A, B>(pub A, pub B);

impl<V, A, B> Strategy for OneOf2<A, B>
where
    A: Strategy<Value = V>,
    B: Strategy<Value = V>,
{
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        match rng.usize_inclusive(0, 1) {
            0 => self.0.generate(rng),
            _ => self.1.generate(rng),
        }
    }
}

/// Uniform choice among three strategies (`prop_oneof!` with three arms).
#[derive(Debug, Clone, Copy)]
pub struct OneOf3<A, B, C>(pub A, pub B, pub C);

impl<V, A, B, C> Strategy for OneOf3<A, B, C>
where
    A: Strategy<Value = V>,
    B: Strategy<Value = V>,
    C: Strategy<Value = V>,
{
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        match rng.usize_inclusive(0, 2) {
            0 => self.0.generate(rng),
            1 => self.1.generate(rng),
            _ => self.2.generate(rng),
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}
