//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range / tuple /
//! [`strategy::Just`] / [`collection::vec()`] strategies, `prop_oneof!`, the
//! [`proptest!`] test macro with `#![proptest_config(…)]`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros. Consumers depend
//! on it renamed (`proptest = { package = "sg-proptest", … }`), so
//! `use proptest::prelude::*` compiles unchanged.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its deterministic seed and
//!   case index instead of a minimized input;
//! * **deterministic by construction** — each test function derives its
//!   stream from an FNV hash of its module path, so failures reproduce
//!   across runs without a persistence file.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`proptest::collection` subset).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each `proptest!` test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed `prop_assert!` / `prop_assert_eq!`, carrying its message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod prelude {
    //! The usual glob import, as `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Non-fatal assertion: fails the current case with location and message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(),
                line!(),
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Non-fatal equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                file!(),
                line!(),
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($a:expr, $b:expr $(,)?) => {
        $crate::strategy::OneOf2($a, $b)
    };
    ($a:expr, $b:expr, $c:expr $(,)?) => {
        $crate::strategy::OneOf3($a, $b, $c)
    };
}

/// Declares deterministic property tests.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(…)]` inner attribute followed by `#[test]`
/// functions whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let fn_seed = $crate::test_runner::fn_seed(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(fn_seed, case);
                $(let $pat = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut __proptest_rng,
                );)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {} of {} (fn seed {:#x}):\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        fn_seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_land_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case(2, 0);
        let s = (1usize..=3)
            .prop_flat_map(|k| crate::collection::vec(0usize..10, k).prop_map(|v| (v.len(), v)));
        for _ in 0..200 {
            let (len, v) = s.generate(&mut rng);
            assert_eq!(len, v.len());
            assert!((1..=3).contains(&len));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_hits_both_arms() {
        let mut rng = TestRng::for_case(3, 0);
        let s = prop_oneof![Just(1u8), Just(2u8)];
        let draws: Vec<u8> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&1));
        assert!(draws.contains(&2));
    }

    #[test]
    fn deterministic_per_case() {
        let seed = crate::test_runner::fn_seed("a::b::c");
        let s = crate::collection::vec(0usize..100, 0..20);
        let a = s.generate(&mut TestRng::for_case(seed, 7));
        let b = s.generate(&mut TestRng::for_case(seed, 7));
        assert_eq!(a, b);
        // And different cases give different draws somewhere in 20 tries.
        let other: Vec<_> = (0..20)
            .map(|c| s.generate(&mut TestRng::for_case(seed, c)))
            .collect();
        assert!(other.iter().any(|v| *v != a) || a.is_empty());
    }

    // The macro path itself, including config, multiple params and a
    // trailing comma.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments on cases must parse.
        #[test]
        fn macro_generates_runnable_tests(
            a in 0usize..50,
            b in crate::collection::vec(0u64..10, 1..5),
        ) {
            prop_assert!(a < 50);
            prop_assert!(!b.is_empty(), "len = {}", b.len());
            prop_assert_eq!(b.len(), b.len());
        }
    }
}
