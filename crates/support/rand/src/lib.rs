//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the exact slice of the `rand` 0.8 API the workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], [`seq::SliceRandom`] and the
//! [`prelude`] — backed by a deterministic splitmix64/xoshiro-style
//! stream. Consumers depend on it renamed (`rand = { package = "sg-rand",
//! … }`), so `use rand::…` paths compile unchanged. Determinism under a
//! fixed seed is guaranteed (and tested), which is all the workspace
//! relies on: reproducible shuffles and uniform draws, not
//! cryptographic quality or bit-compatibility with upstream `rand`.

/// Core random-source trait: the subset of `rand::Rng` the workspace
/// calls (`gen`, `gen_range` over `usize`, and the raw 64-bit stream).
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of type `T` (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can sample uniformly.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator seeded through splitmix64.
    ///
    /// The name mirrors `rand::rngs::StdRng` so call sites compile
    /// unchanged; the stream itself is this workspace's own.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One splitmix64 step decorrelates small consecutive seeds and
            // maps 0 away from the xorshift fixpoint.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    //! Sequence helpers (`rand::seq` subset).

    use super::Rng;

    /// In-place Fisher–Yates shuffling, as `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! The usual glob import, as `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle leaving everything fixed is (astronomically)
        // unlikely; treat it as a generator failure.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_through_mut_ref_impl() {
        // greedy_gossip passes `&mut impl Rng`; make sure the blanket
        // `impl Rng for &mut R` keeps that call shape working.
        fn takes_impl(rng: &mut impl super::Rng) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(3);
        let _ = takes_impl(&mut r);
        let mut v = [1u8, 2, 3, 4, 5, 6, 7, 8];
        v.shuffle(&mut r);
    }

    /// Pearson χ² goodness-of-fit smoke test on `gen_range`: the
    /// randomized-gossip engine draws every neighbor choice through it,
    /// so gross bucket bias (a broken modulus, a stuck bit) would skew
    /// all the measured stopping distributions. Deterministic at the
    /// fixed seeds: the asserted threshold is the 99.9 % quantile of
    /// the χ² distribution, far above any healthy sample's statistic.
    #[test]
    fn gen_range_buckets_pass_a_chi_square_smoke_test() {
        // (buckets, χ²₀.₉₉₉ for df = buckets − 1)
        for (seed, k, threshold) in [(1997u64, 16usize, 37.70), (42, 10, 27.88)] {
            let mut r = StdRng::seed_from_u64(seed);
            let draws = 10_000usize;
            let mut counts = vec![0usize; k];
            for _ in 0..draws {
                counts[r.gen_range(0..k)] += 1;
            }
            let expected = draws as f64 / k as f64;
            let chi2: f64 = counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - expected;
                    d * d / expected
                })
                .sum();
            assert!(
                chi2 < threshold,
                "seed {seed}, {k} buckets: χ² = {chi2:.2} ≥ {threshold} — \
                 gen_range is grossly non-uniform ({counts:?})"
            );
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(11);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([7u8].choose(&mut r).is_some());
    }
}
