//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate keeps the
//! workspace's benches compiling and runnable with the same call surface
//! (`Criterion`, `benchmark_group`, `bench_with_input`, [`BenchmarkId`],
//! [`criterion_group!`], [`criterion_main!`]) on top of a plain
//! `std::time::Instant` harness: per benchmark it runs a short warmup,
//! times `sample_size` iterations, and prints min / median / mean wall
//! times. No statistical analysis, plots or baselines.

use std::time::Instant;

/// Recorded outcome of one benchmark — what real criterion would write
/// into `target/criterion`; here it is kept in memory so harness mains
/// can serialize a `BENCH_*.json` perf trajectory.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full label, `group/name[/param]`.
    pub name: String,
    /// Fastest timed iteration, nanoseconds.
    pub min_ns: u128,
    /// Median timed iteration, nanoseconds.
    pub median_ns: u128,
    /// Mean timed iteration, nanoseconds.
    pub mean_ns: u128,
    /// Number of timed iterations.
    pub samples: usize,
}

/// Top-level harness state (`criterion::Criterion` subset).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
    results: Vec<BenchResult>,
}

impl Criterion {
    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(20)
    }

    /// Sets the number of timed iterations per benchmark (builder form,
    /// as used in `criterion_group!` configs).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.effective_sample_size();
        if let Some(r) = run_one(name, samples, &mut f) {
            self.results.push(r);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// All results recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A benchmark group (`criterion::BenchmarkGroup` subset).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        if let Some(r) = run_one(&label, self.sample_size, &mut f) {
            self.parent.results.push(r);
        }
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        if let Some(r) = run_one(&label, self.sample_size, &mut |b| f(b, input)) {
            self.parent.results.push(r);
        }
        self
    }

    /// Ends the group (kept for call-site compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name` with a display-able parameter, rendered `name/param`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per timed iteration, filled by `iter`.
    timings_ns: Vec<u128>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warmup call, then the timed samples.
        std::hint::black_box(routine());
        self.timings_ns.clear();
        self.timings_ns.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.timings_ns.push(t0.elapsed().as_nanos());
        }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) -> Option<BenchResult> {
    let mut b = Bencher {
        samples,
        timings_ns: Vec::new(),
    };
    f(&mut b);
    if b.timings_ns.is_empty() {
        println!("{label:<44} (no iterations recorded)");
        return None;
    }
    b.timings_ns.sort_unstable();
    let min = b.timings_ns[0];
    let median = b.timings_ns[b.timings_ns.len() / 2];
    let mean = b.timings_ns.iter().sum::<u128>() / b.timings_ns.len() as u128;
    println!(
        "{label:<44} min {} | median {} | mean {} ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        b.timings_ns.len()
    );
    Some(BenchResult {
        name: label.to_string(),
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
        samples: b.timings_ns.len(),
    })
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export for call sites that import it from criterion.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group, as
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_records() {
        benches();
        let mut b = Bencher {
            samples: 5,
            timings_ns: Vec::new(),
        };
        b.iter(|| 42);
        assert_eq!(b.timings_ns.len(), 5);
    }

    #[test]
    fn results_are_recorded_for_json_emission() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("alpha", |b| b.iter(|| 2 * 2));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("beta", 7), &7u64, |b, &n| b.iter(|| n + 1));
        g.finish();
        let names: Vec<&str> = c.results().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "grp/beta/7"]);
        for r in c.results() {
            assert_eq!(r.samples, 3);
            assert!(r.min_ns <= r.median_ns);
        }
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(12).ends_with("ns"));
        assert!(fmt_ns(12_000).ends_with("µs"));
        assert!(fmt_ns(12_000_000).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000).ends_with(" s"));
    }
}
