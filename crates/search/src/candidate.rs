//! The unit the search manipulates: one systolic period as a mutable
//! round list, bound to a communication mode.

use sg_graphs::digraph::Digraph;
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::{ProtocolError, Round};

/// A candidate systolic schedule: one period of rounds under a mode.
///
/// Unlike [`SystolicProtocol`] this is freely editable — the mutation
/// kernel rewrites rounds in place — and carries no validity guarantee
/// of its own; the kernel maintains validity *by construction* and
/// [`Candidate::validate`] re-runs the same audit the protocol layer
/// applies to the hand-built schedules (arc membership plus the mode's
/// matching condition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The period's rounds, in execution order. Never empty.
    pub rounds: Vec<Round>,
    /// The communication mode the candidate must respect.
    pub mode: Mode,
}

impl Candidate {
    /// Builds a candidate from a round list (at least one round).
    pub fn new(rounds: Vec<Round>, mode: Mode) -> Self {
        assert!(!rounds.is_empty(), "a candidate needs s >= 1 rounds");
        Self { rounds, mode }
    }

    /// A candidate copying one period of an existing protocol.
    pub fn from_protocol(sp: &SystolicProtocol) -> Self {
        Self::new(sp.period().to_vec(), sp.mode())
    }

    /// The period length `s`.
    pub fn s(&self) -> usize {
        self.rounds.len()
    }

    /// The candidate as an executable [`SystolicProtocol`].
    pub fn to_protocol(&self) -> SystolicProtocol {
        SystolicProtocol::new(self.rounds.clone(), self.mode)
    }

    /// Full validity audit against the network — the same check the
    /// builder property tests run on every hand-built protocol.
    pub fn validate(&self, g: &Digraph) -> Result<(), ProtocolError> {
        self.to_protocol().validate(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;
    use sg_protocol::builders;

    #[test]
    fn round_trips_through_protocol() {
        let sp = builders::path_rrll(6);
        let c = Candidate::from_protocol(&sp);
        assert_eq!(c.s(), 4);
        assert_eq!(c.to_protocol(), sp);
        c.validate(&generators::path(6)).expect("valid");
    }

    #[test]
    #[should_panic(expected = "s >= 1")]
    fn empty_candidate_panics() {
        let _ = Candidate::new(Vec::new(), Mode::HalfDuplex);
    }
}
