//! The mutation kernel: mode-respecting local edits on a candidate's
//! round list.
//!
//! Every operator preserves validity *by construction*: arcs are only
//! drawn from the network's arc set, additions evict conflicting arcs
//! first (so each round stays an endpoint-disjoint matching), and in
//! full-duplex mode arcs are always inserted and removed as opposite
//! pairs. The operators are exactly the moves named by the search issue:
//! arc flips (add / remove / redirect), round swaps, round resampling,
//! and period grow / shrink within the configured band.

use crate::candidate::Candidate;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use sg_graphs::digraph::{Arc, Digraph};
use sg_protocol::mode::Mode;
use sg_protocol::round::Round;

/// Precomputed move tables for one `(network, mode)` pair, plus the
/// period band mutations must stay inside.
#[derive(Debug, Clone)]
pub struct MutationKernel {
    /// All arcs of the network (the add-pool in directed/half-duplex).
    arcs: Vec<Arc>,
    /// All undirected edges (the add-pool in full-duplex).
    edges: Vec<(usize, usize)>,
    n: usize,
    mode: Mode,
    min_period: usize,
    max_period: usize,
}

impl MutationKernel {
    /// Builds the kernel. `min_period >= 1`, `min_period <= max_period`;
    /// set them equal for an exact-period search.
    pub fn new(g: &Digraph, mode: Mode, min_period: usize, max_period: usize) -> Self {
        assert!(
            1 <= min_period && min_period <= max_period,
            "period band must satisfy 1 <= min <= max, got {min_period}..={max_period}"
        );
        if mode.requires_symmetric_graph() {
            assert!(g.is_symmetric(), "{mode} mode needs an undirected network");
        }
        Self {
            arcs: g.arcs().filter(|a| !a.is_loop()).collect(),
            // `edges()` is defined for symmetric digraphs only; the
            // directed mode never draws from the edge pool.
            edges: if g.is_symmetric() {
                g.edges().collect()
            } else {
                Vec::new()
            },
            n: g.vertex_count(),
            mode,
            min_period,
            max_period,
        }
    }

    /// The mode the kernel mutates under.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// A fresh random round: a maximal matching drawn in shuffled arc
    /// order (full-duplex: a maximal set of endpoint-disjoint opposite
    /// pairs in shuffled edge order).
    pub fn random_round(&self, rng: &mut StdRng) -> Round {
        let mut used = vec![false; self.n];
        match self.mode {
            Mode::Directed | Mode::HalfDuplex => {
                let mut order: Vec<usize> = (0..self.arcs.len()).collect();
                order.shuffle(rng);
                let mut picked = Vec::new();
                for i in order {
                    let a = self.arcs[i];
                    let (u, v) = (a.from as usize, a.to as usize);
                    if !used[u] && !used[v] {
                        used[u] = true;
                        used[v] = true;
                        picked.push(a);
                    }
                }
                Round::new(picked)
            }
            Mode::FullDuplex => {
                let mut order: Vec<usize> = (0..self.edges.len()).collect();
                order.shuffle(rng);
                let mut picked = Vec::new();
                for i in order {
                    let (u, v) = self.edges[i];
                    if !used[u] && !used[v] {
                        used[u] = true;
                        used[v] = true;
                        picked.push((u, v));
                    }
                }
                Round::full_duplex_from_edges(picked)
            }
        }
    }

    /// A full random candidate of period `s`.
    pub fn random_candidate(&self, s: usize, rng: &mut StdRng) -> Candidate {
        Candidate::new((0..s).map(|_| self.random_round(rng)).collect(), self.mode)
    }

    /// Applies one random mutation to `cand`, respecting the mode's
    /// matching structure and the period band.
    pub fn mutate(&self, cand: &mut Candidate, rng: &mut StdRng) {
        // Operator mix: arc-level edits dominate (they are the fine-
        // grained moves), with occasional round- and period-level jumps.
        // An exact-period band renormalizes the mix over the first four
        // operators instead of wasting ~10% of rolls on guaranteed
        // no-ops the driver would still pay a full evaluation for.
        let span = if self.min_period == self.max_period {
            90
        } else {
            100
        };
        let roll = rng.gen_range(0..span);
        match roll {
            0..=44 => self.add_activation(cand, rng),
            45..=69 => self.remove_activation(cand, rng),
            70..=79 => self.swap_rounds(cand, rng),
            80..=89 => self.resample_round(cand, rng),
            90..=94 => self.grow_period(cand, rng),
            _ => self.shrink_period(cand, rng),
        }
    }

    /// Adds a random activation to a random round, evicting whatever
    /// conflicts with its endpoints (an "arc flip" toward the new arc).
    fn add_activation(&self, cand: &mut Candidate, rng: &mut StdRng) {
        let r = rng.gen_range(0..cand.rounds.len());
        let mut arcs = cand.rounds[r].arcs().to_vec();
        match self.mode {
            Mode::Directed | Mode::HalfDuplex => {
                if self.arcs.is_empty() {
                    return;
                }
                let a = self.arcs[rng.gen_range(0..self.arcs.len())];
                arcs.retain(|b| !shares_endpoint(*b, a));
                arcs.push(a);
            }
            Mode::FullDuplex => {
                if self.edges.is_empty() {
                    return;
                }
                let (u, v) = self.edges[rng.gen_range(0..self.edges.len())];
                let pair = Arc::new(u, v);
                arcs.retain(|b| !shares_endpoint(*b, pair));
                arcs.push(pair);
                arcs.push(pair.reversed());
            }
        }
        cand.rounds[r] = Round::new(arcs);
    }

    /// Removes a random activation from a random non-empty round (in
    /// full-duplex, the whole opposite pair goes).
    fn remove_activation(&self, cand: &mut Candidate, rng: &mut StdRng) {
        let r = rng.gen_range(0..cand.rounds.len());
        let mut arcs = cand.rounds[r].arcs().to_vec();
        if arcs.is_empty() {
            return;
        }
        let victim = arcs[rng.gen_range(0..arcs.len())];
        arcs.retain(|b| *b != victim && (self.mode != Mode::FullDuplex || *b != victim.reversed()));
        cand.rounds[r] = Round::new(arcs);
    }

    /// Swaps two rounds of the period.
    fn swap_rounds(&self, cand: &mut Candidate, rng: &mut StdRng) {
        if cand.rounds.len() < 2 {
            return;
        }
        let i = rng.gen_range(0..cand.rounds.len());
        let j = rng.gen_range(0..cand.rounds.len());
        cand.rounds.swap(i, j);
    }

    /// Replaces a random round with a fresh random matching.
    fn resample_round(&self, cand: &mut Candidate, rng: &mut StdRng) {
        let r = rng.gen_range(0..cand.rounds.len());
        cand.rounds[r] = self.random_round(rng);
    }

    /// Inserts a round (copy of an existing one, or fresh) at a random
    /// position, if the band allows a longer period.
    fn grow_period(&self, cand: &mut Candidate, rng: &mut StdRng) {
        if cand.rounds.len() >= self.max_period {
            return;
        }
        let at = rng.gen_range(0..cand.rounds.len() + 1);
        let round = if rng.gen::<bool>() {
            cand.rounds[rng.gen_range(0..cand.rounds.len())].clone()
        } else {
            self.random_round(rng)
        };
        cand.rounds.insert(at, round);
    }

    /// Removes a random round, if the band allows a shorter period.
    fn shrink_period(&self, cand: &mut Candidate, rng: &mut StdRng) {
        if cand.rounds.len() <= self.min_period {
            return;
        }
        let at = rng.gen_range(0..cand.rounds.len());
        cand.rounds.remove(at);
    }
}

/// `true` when the two arcs share an endpoint in the matching sense
/// (tails and heads both count).
fn shares_endpoint(a: Arc, b: Arc) -> bool {
    a.from == b.from || a.from == b.to || a.to == b.from || a.to == b.to
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sg_graphs::generators;

    /// Across many mutations, candidates must stay valid — the invariant
    /// the whole search relies on (and the same audit the builder
    /// property suite applies to the hand-built protocols).
    #[test]
    fn mutations_preserve_validity_half_duplex() {
        let g = generators::cycle(8);
        let kernel = MutationKernel::new(&g, Mode::HalfDuplex, 2, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let mut cand = kernel.random_candidate(3, &mut rng);
        for i in 0..500 {
            kernel.mutate(&mut cand, &mut rng);
            assert!(
                (2..=5).contains(&cand.s()),
                "period left the band at step {i}"
            );
            cand.validate(&g)
                .unwrap_or_else(|e| panic!("step {i}: {e}"));
        }
    }

    #[test]
    fn mutations_preserve_validity_full_duplex() {
        let g = generators::hypercube(3);
        let kernel = MutationKernel::new(&g, Mode::FullDuplex, 2, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let mut cand = kernel.random_candidate(2, &mut rng);
        for i in 0..500 {
            kernel.mutate(&mut cand, &mut rng);
            cand.validate(&g)
                .unwrap_or_else(|e| panic!("step {i}: {e}"));
        }
    }

    #[test]
    fn mutations_preserve_validity_directed() {
        let g = generators::de_bruijn_directed(2, 3);
        let kernel = MutationKernel::new(&g, Mode::Directed, 2, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut cand = kernel.random_candidate(2, &mut rng);
        for i in 0..300 {
            kernel.mutate(&mut cand, &mut rng);
            cand.validate(&g)
                .unwrap_or_else(|e| panic!("step {i}: {e}"));
        }
    }

    #[test]
    fn exact_period_band_is_fixed() {
        let g = generators::path(6);
        let kernel = MutationKernel::new(&g, Mode::HalfDuplex, 3, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut cand = kernel.random_candidate(3, &mut rng);
        for _ in 0..200 {
            kernel.mutate(&mut cand, &mut rng);
            assert_eq!(cand.s(), 3);
        }
    }

    #[test]
    fn random_rounds_are_nonempty_matchings_on_connected_graphs() {
        let g = generators::knodel(3, 16);
        let kernel = MutationKernel::new(&g, Mode::FullDuplex, 2, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let r = kernel.random_round(&mut rng);
            assert!(!r.is_empty());
            r.validate(&g, Mode::FullDuplex, 0).expect("valid round");
        }
    }

    #[test]
    #[should_panic(expected = "undirected network")]
    fn full_duplex_kernel_rejects_directed_graphs() {
        let g = generators::de_bruijn_directed(2, 3);
        let _ = MutationKernel::new(&g, Mode::FullDuplex, 2, 2);
    }
}
