//! Certificates: what the best found schedule proves, measured against
//! the paper's lower bounds.
//!
//! Three kinds of bound feed a certificate, all served by the shared
//! [`BoundOracle`]:
//!
//! * **Exact floors**, valid at every finite `n`: the diameter, the
//!   doubling bound `⌈log₂ n⌉` (each processor receives from at most one
//!   neighbour per round in every mode), and the linear `n − 1` bound of
//!   the paper's degenerate `s = 2` analysis (directed / half-duplex).
//!   A found time *equal* to the strongest floor certifies the schedule
//!   optimal among all `s`-periodic protocols in that mode.
//! * **Asymptotic coefficients** (`e(s)`, the separator bound of
//!   Theorem 5.1): `coefficient · log₂ n` holds only up to the paper's
//!   `−O(log log n)` slack, so at the small `n` the search sweeps it can
//!   legitimately *exceed* a measured gossip time. When that happens the
//!   verdict is [`Verdict::BoundSlack`] — the gap against the exact floor
//!   is still reported, never dropped, but it cannot be blamed on the
//!   schedule.
//! * **Protocol-specific delay-matrix bounds** (Theorem 4.1 on the best
//!   schedule's own delay digraph): exact for executions of *that*
//!   schedule, surfaced so a certificate also says how close the found
//!   schedule runs to its own information-theoretic limit.
//!
//! A fourth verdict, [`Verdict::ProvenOptimal`], is issued only by the
//! exact enumerator (`crate::enumerate`): the found time is the true
//! optimum over **all** valid period-`s` schedules, established by
//! oracle-pruned exhaustion — even when it sits strictly above the
//! strongest floor.

use sg_bounds::pfun::Period;
use sg_graphs::digraph::Digraph;
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use systolic_gossip::{BoundOracle, Network};

pub use systolic_gossip::{ceil_log2, FloorSource};

/// The verdict of one search: how the best found gossip time relates to
/// the lower bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Found time equals the strongest exact lower bound: the schedule is
    /// optimal for this network, mode and period.
    Optimal,
    /// Found time exceeds the certified floor by `rounds`; every
    /// applicable bound is below the found time, so the gap is real
    /// (either the schedule or the paper's bounds are loose here).
    Gap {
        /// `found − floor`, in rounds.
        rounds: usize,
    },
    /// The asymptotic coefficient bound exceeds the measured time — its
    /// `O(log log n)` slack dominates at this `n`, so only the exact
    /// floor certifies and the residual gap is attributed to the bound,
    /// not the schedule.
    BoundSlack {
        /// The overshooting `coefficient · log₂ n` figure.
        asymptotic_rounds: f64,
    },
    /// The found time is the exact optimum over every valid period-`s`
    /// schedule, proved by exhaustive oracle-pruned enumeration — a
    /// settled theorem for this `(network, mode, period)`, even when the
    /// optimum sits above the strongest floor.
    ProvenOptimal {
        /// Complete schedules the enumerator evaluated (after symmetry
        /// breaking and pruning).
        enumerated: usize,
    },
}

impl Verdict {
    /// Stable lowercase label (row streaming / CLI surface).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Optimal => "optimal",
            Verdict::Gap { .. } => "gap",
            Verdict::BoundSlack { .. } => "bound-slack",
            Verdict::ProvenOptimal { .. } => "proven-optimal",
        }
    }

    /// The label set [`Verdict::label`] draws from — pinned so the
    /// JSON/CSV row surface stays parseable release over release.
    pub fn all_labels() -> &'static [&'static str] {
        &["optimal", "gap", "bound-slack", "proven-optimal"]
    }

    /// `true` for the two verdicts that certify the found time cannot be
    /// improved at this period.
    pub fn is_settled(&self) -> bool {
        matches!(self, Verdict::Optimal | Verdict::ProvenOptimal { .. })
    }
}

/// Everything one search proved about `(network, mode, period)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Network name (paper notation).
    pub network: String,
    /// Number of processors.
    pub n: usize,
    /// Communication mode of the searched schedules.
    pub mode: Mode,
    /// Systolic period of the best schedule.
    pub period: usize,
    /// Measured gossip time of the best found schedule.
    pub found_rounds: usize,
    /// The strongest exact lower bound at this `n`, in rounds.
    pub floor_rounds: usize,
    /// Which bound supplied the floor.
    pub floor_source: FloorSource,
    /// `max(e(s), separator) · log₂ n` — the paper's asymptotic figure,
    /// `None` for the degenerate `s = 2` (where `e(2)` blows up and the
    /// linear bound replaces it).
    pub asymptotic_rounds: Option<f64>,
    /// The matrix-norm root `λ*` behind the asymptotic figure.
    pub lambda_star: Option<f64>,
    /// Theorem 4.1 evaluated on the best found schedule's own delay
    /// matrix — exact for executions of that schedule.
    pub protocol_bound_rounds: Option<f64>,
    /// The `λ*` of the delay-matrix bound.
    pub protocol_lambda_star: Option<f64>,
    /// How found and bounds relate.
    pub verdict: Verdict,
}

impl Certificate {
    /// `found − floor`: the gap against the certified floor (0 when
    /// optimal). Reported for every verdict, including
    /// [`Verdict::BoundSlack`] and [`Verdict::ProvenOptimal`].
    pub fn gap_rounds(&self) -> usize {
        self.found_rounds - self.floor_rounds
    }
}

/// Issues the certificate for a measured best-found gossip time,
/// resolving every bound through the shared memoizing oracle. When the
/// best schedule itself is given, its Theorem 4.1 delay-matrix bound is
/// evaluated and surfaced.
///
/// # Panics
/// Panics when `found` undercuts an exact bound — a verified execution
/// beating an exact lower bound means the engine or the bound is broken,
/// and that must never pass silently.
#[allow(clippy::too_many_arguments)]
pub fn certify_with(
    oracle: &BoundOracle,
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    period: usize,
    found: usize,
    best: Option<&SystolicProtocol>,
) -> Certificate {
    let n = g.vertex_count();
    let ob = oracle.bounds_on(net, g, diameter, mode, Period::Systolic(period));
    let floor = ob.floor_rounds;
    let source = ob.floor_source;
    // The asymptotic coefficients (degenerate at s = 2, absent there).
    let (asymptotic, ls) = (ob.asymptotic_rounds, ob.lambda_star);
    assert!(
        found >= floor,
        "{}: measured gossip time {found} beats the exact {} lower bound {floor} — \
         engine or bound bug",
        net.name(),
        source.label()
    );
    let pb = best.and_then(|sp| oracle.protocol_bound(sp, n));
    if let Some(pb) = &pb {
        assert!(
            pb.rounds <= found as f64 + 1e-9,
            "{}: measured gossip time {found} beats the schedule's own Thm 4.1 bound {:.2} — \
             engine or delay-matrix bug",
            net.name(),
            pb.rounds
        );
    }
    let verdict = if found == floor {
        Verdict::Optimal
    } else if let Some(a) = asymptotic.filter(|&a| a > found as f64) {
        Verdict::BoundSlack {
            asymptotic_rounds: a,
        }
    } else {
        Verdict::Gap {
            rounds: found - floor,
        }
    };
    Certificate {
        network: net.name(),
        n,
        mode,
        period,
        found_rounds: found,
        floor_rounds: floor,
        floor_source: source,
        asymptotic_rounds: asymptotic,
        lambda_star: ls,
        protocol_bound_rounds: pb.map(|b| b.rounds),
        protocol_lambda_star: pb.map(|b| b.lambda_star),
        verdict,
    }
}

/// [`certify_with`] on a throwaway oracle, without a concrete schedule —
/// the convenience entry point for one-off certifications.
pub fn certify(
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    period: usize,
    found: usize,
) -> Certificate {
    certify_with(
        &BoundOracle::new(),
        net,
        g,
        diameter,
        mode,
        period,
        found,
        None,
    )
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (n = {}), {} mode, s = {}: found {} rounds vs floor {} ({})",
            self.network,
            self.n,
            self.mode,
            self.period,
            self.found_rounds,
            self.floor_rounds,
            self.floor_source.label()
        )?;
        if let Some(a) = self.asymptotic_rounds {
            write!(f, ", coefficient bound {a:.1}")?;
        }
        if let Some(p) = self.protocol_bound_rounds {
            write!(f, ", own Thm 4.1 bound {p:.1}")?;
        }
        match self.verdict {
            Verdict::Optimal => write!(f, " — OPTIMAL"),
            Verdict::Gap { rounds } => write!(f, " — gap {rounds} rounds"),
            Verdict::BoundSlack { asymptotic_rounds } => write!(
                f,
                " — gap {} rounds (asymptotic bound {asymptotic_rounds:.1} overshoots at this n)",
                self.gap_rounds()
            ),
            Verdict::ProvenOptimal { enumerated } => write!(
                f,
                " — PROVEN OPTIMAL over all period-{} schedules ({} enumerated)",
                self.period, enumerated
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1023), 10);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn hypercube_sweep_time_is_optimal() {
        let net = Network::Hypercube { k: 3 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let c = certify(&net, &g, d, Mode::FullDuplex, 3, 3);
        assert_eq!(c.verdict, Verdict::Optimal);
        assert_eq!(c.floor_rounds, 3);
        assert_eq!(c.gap_rounds(), 0);
        assert!(c.to_string().contains("OPTIMAL"));
    }

    #[test]
    fn s2_half_duplex_uses_the_linear_floor() {
        let net = Network::Cycle { n: 8 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let c = certify(&net, &g, d, Mode::HalfDuplex, 2, 8);
        assert_eq!(c.floor_rounds, 7);
        assert_eq!(c.floor_source, FloorSource::LinearPeriodTwo);
        assert_eq!(c.verdict, Verdict::Gap { rounds: 1 });
        assert!(c.asymptotic_rounds.is_none());
    }

    #[test]
    fn small_n_overshoot_is_bound_slack_not_gap() {
        // Path n = 8, half-duplex, s = 3: e(3)·log₂ 8 ≈ 8.6 > diameter 7,
        // and any measured time in 8..9 rounds sits between floor and the
        // asymptotic figure.
        let net = Network::Path { n: 8 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let c = certify(&net, &g, d, Mode::HalfDuplex, 3, 8);
        assert_eq!(c.floor_rounds, 7);
        assert!(matches!(c.verdict, Verdict::BoundSlack { .. }));
        assert_eq!(c.gap_rounds(), 1, "gap still reported");
        assert!(c.lambda_star.is_some());
    }

    #[test]
    fn certificates_carry_the_schedules_own_delay_matrix_bound() {
        // Certify the RRLL path protocol's measured time with the
        // protocol attached: Theorem 4.1 must reach the certificate.
        let n = 12;
        let net = Network::Path { n };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let sp = sg_protocol::builders::path_rrll(n);
        let measured = sg_sim::engine::systolic_gossip_time(&sp, n, 100 * n).expect("completes");
        let oracle = BoundOracle::new();
        let c = certify_with(
            &oracle,
            &net,
            &g,
            d,
            Mode::HalfDuplex,
            sp.s(),
            measured,
            Some(&sp),
        );
        let pb = c.protocol_bound_rounds.expect("Thm 4.1 bound present");
        assert!(pb > 1.0 && pb <= measured as f64 + 1e-9);
        assert!(c.protocol_lambda_star.is_some());
        assert!(c.to_string().contains("own Thm 4.1 bound"));
    }

    #[test]
    fn verdict_labels_are_stable_and_settledness_is_correct() {
        let v = [
            Verdict::Optimal,
            Verdict::Gap { rounds: 2 },
            Verdict::BoundSlack {
                asymptotic_rounds: 9.5,
            },
            Verdict::ProvenOptimal { enumerated: 42 },
        ];
        let labels: Vec<&str> = v.iter().map(Verdict::label).collect();
        assert_eq!(labels, Verdict::all_labels());
        assert!(v[0].is_settled());
        assert!(!v[1].is_settled());
        assert!(!v[2].is_settled());
        assert!(v[3].is_settled());
    }

    #[test]
    #[should_panic(expected = "beats the exact")]
    fn undercutting_the_floor_panics() {
        let net = Network::Path { n: 8 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let _ = certify(&net, &g, d, Mode::FullDuplex, 4, 3);
    }
}
