//! Certificates: what the best found schedule proves, measured against
//! the paper's lower bounds.
//!
//! Two kinds of bound feed a certificate:
//!
//! * **Exact floors**, valid at every finite `n`: the diameter, the
//!   doubling bound `⌈log₂ n⌉` (each processor receives from at most one
//!   neighbour per round in every mode), and the linear `n − 1` bound of
//!   the paper's degenerate `s = 2` analysis (directed / half-duplex).
//!   A found time *equal* to the strongest floor certifies the schedule
//!   optimal among all `s`-periodic protocols in that mode.
//! * **Asymptotic coefficients** (`e(s)`, the separator bound of
//!   Theorem 5.1): `coefficient · log₂ n` holds only up to the paper's
//!   `−O(log log n)` slack, so at the small `n` the search sweeps it can
//!   legitimately *exceed* a measured gossip time. When that happens the
//!   verdict is [`Verdict::BoundSlack`] — the gap against the exact floor
//!   is still reported, never dropped, but it cannot be blamed on the
//!   schedule.

use sg_bounds::lambda_star;
use sg_bounds::pfun::Period;
use sg_graphs::digraph::Digraph;
use sg_protocol::mode::Mode;
use systolic_gossip::{bound_mode, bound_report_on, Network};

/// Which exact bound supplied the certified floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorSource {
    /// Graph diameter: no item crosses the network faster.
    Diameter,
    /// `⌈log₂ n⌉`: knowledge at most doubles per round.
    Doubling,
    /// The paper's degenerate `s = 2` analysis: `t ≥ n − 1`.
    LinearPeriodTwo,
}

impl FloorSource {
    /// Stable lowercase label (row streaming / CLI surface).
    pub fn label(self) -> &'static str {
        match self {
            FloorSource::Diameter => "diameter",
            FloorSource::Doubling => "doubling",
            FloorSource::LinearPeriodTwo => "linear-s2",
        }
    }
}

/// The verdict of one search: how the best found gossip time relates to
/// the lower bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Found time equals the strongest exact lower bound: the schedule is
    /// optimal for this network, mode and period.
    Optimal,
    /// Found time exceeds the certified floor by `rounds`; every
    /// applicable bound is below the found time, so the gap is real
    /// (either the schedule or the paper's bounds are loose here).
    Gap {
        /// `found − floor`, in rounds.
        rounds: usize,
    },
    /// The asymptotic coefficient bound exceeds the measured time — its
    /// `O(log log n)` slack dominates at this `n`, so only the exact
    /// floor certifies and the residual gap is attributed to the bound,
    /// not the schedule.
    BoundSlack {
        /// The overshooting `coefficient · log₂ n` figure.
        asymptotic_rounds: f64,
    },
}

impl Verdict {
    /// Stable lowercase label (row streaming / CLI surface).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Optimal => "optimal",
            Verdict::Gap { .. } => "gap",
            Verdict::BoundSlack { .. } => "bound-slack",
        }
    }
}

/// Everything one search proved about `(network, mode, period)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Network name (paper notation).
    pub network: String,
    /// Number of processors.
    pub n: usize,
    /// Communication mode of the searched schedules.
    pub mode: Mode,
    /// Systolic period of the best schedule.
    pub period: usize,
    /// Measured gossip time of the best found schedule.
    pub found_rounds: usize,
    /// The strongest exact lower bound at this `n`, in rounds.
    pub floor_rounds: usize,
    /// Which bound supplied the floor.
    pub floor_source: FloorSource,
    /// `max(e(s), separator) · log₂ n` — the paper's asymptotic figure,
    /// `None` for the degenerate `s = 2` (where `e(2)` blows up and the
    /// linear bound replaces it).
    pub asymptotic_rounds: Option<f64>,
    /// The matrix-norm root `λ*` behind the asymptotic figure.
    pub lambda_star: Option<f64>,
    /// How found and bounds relate.
    pub verdict: Verdict,
}

impl Certificate {
    /// `found − floor`: the gap against the certified floor (0 when
    /// optimal). Reported for every verdict, including
    /// [`Verdict::BoundSlack`].
    pub fn gap_rounds(&self) -> usize {
        self.found_rounds - self.floor_rounds
    }
}

/// `⌈log₂ n⌉` (0 for `n ≤ 1`): the doubling floor.
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (n - 1).ilog2() as usize + 1
    }
}

/// Issues the certificate for a measured best-found gossip time.
///
/// # Panics
/// Panics when `found` undercuts the exact floor — a verified execution
/// beating an exact lower bound means the engine or the bound is broken,
/// and that must never pass silently.
pub fn certify(
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    period: usize,
    found: usize,
) -> Certificate {
    let n = g.vertex_count();
    // Exact floors.
    let mut floor = ceil_log2(n);
    let mut source = FloorSource::Doubling;
    if let Some(d) = diameter {
        if d as usize > floor {
            floor = d as usize;
            source = FloorSource::Diameter;
        }
    }
    if period == 2 && mode != Mode::FullDuplex && n >= 1 && n - 1 > floor {
        floor = n - 1;
        source = FloorSource::LinearPeriodTwo;
    }
    // The asymptotic coefficients (degenerate at s = 2, skipped there).
    let (asymptotic, ls) = if period >= 3 {
        let report = bound_report_on(net, g, diameter, mode, Period::Systolic(period));
        let coeff_rounds = report
            .separator_rounds
            .map_or(report.general_rounds, |s| s.max(report.general_rounds));
        let ls = lambda_star(bound_mode(mode), Period::Systolic(period));
        (Some(coeff_rounds), Some(ls))
    } else {
        (None, None)
    };
    assert!(
        found >= floor,
        "{}: measured gossip time {found} beats the exact {} lower bound {floor} — \
         engine or bound bug",
        net.name(),
        source.label()
    );
    let verdict = if found == floor {
        Verdict::Optimal
    } else if let Some(a) = asymptotic.filter(|&a| a > found as f64) {
        Verdict::BoundSlack {
            asymptotic_rounds: a,
        }
    } else {
        Verdict::Gap {
            rounds: found - floor,
        }
    };
    Certificate {
        network: net.name(),
        n,
        mode,
        period,
        found_rounds: found,
        floor_rounds: floor,
        floor_source: source,
        asymptotic_rounds: asymptotic,
        lambda_star: ls,
        verdict,
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (n = {}), {} mode, s = {}: found {} rounds vs floor {} ({})",
            self.network,
            self.n,
            self.mode,
            self.period,
            self.found_rounds,
            self.floor_rounds,
            self.floor_source.label()
        )?;
        if let Some(a) = self.asymptotic_rounds {
            write!(f, ", coefficient bound {a:.1}")?;
        }
        match self.verdict {
            Verdict::Optimal => write!(f, " — OPTIMAL"),
            Verdict::Gap { rounds } => write!(f, " — gap {rounds} rounds"),
            Verdict::BoundSlack { asymptotic_rounds } => write!(
                f,
                " — gap {} rounds (asymptotic bound {asymptotic_rounds:.1} overshoots at this n)",
                self.gap_rounds()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1023), 10);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn hypercube_sweep_time_is_optimal() {
        let net = Network::Hypercube { k: 3 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let c = certify(&net, &g, d, Mode::FullDuplex, 3, 3);
        assert_eq!(c.verdict, Verdict::Optimal);
        assert_eq!(c.floor_rounds, 3);
        assert_eq!(c.gap_rounds(), 0);
        assert!(c.to_string().contains("OPTIMAL"));
    }

    #[test]
    fn s2_half_duplex_uses_the_linear_floor() {
        let net = Network::Cycle { n: 8 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let c = certify(&net, &g, d, Mode::HalfDuplex, 2, 8);
        assert_eq!(c.floor_rounds, 7);
        assert_eq!(c.floor_source, FloorSource::LinearPeriodTwo);
        assert_eq!(c.verdict, Verdict::Gap { rounds: 1 });
        assert!(c.asymptotic_rounds.is_none());
    }

    #[test]
    fn small_n_overshoot_is_bound_slack_not_gap() {
        // Path n = 8, half-duplex, s = 3: e(3)·log₂ 8 ≈ 8.6 > diameter 7,
        // and any measured time in 8..9 rounds sits between floor and the
        // asymptotic figure.
        let net = Network::Path { n: 8 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let c = certify(&net, &g, d, Mode::HalfDuplex, 3, 8);
        assert_eq!(c.floor_rounds, 7);
        assert!(matches!(c.verdict, Verdict::BoundSlack { .. }));
        assert_eq!(c.gap_rounds(), 1, "gap still reported");
        assert!(c.lambda_star.is_some());
    }

    #[test]
    #[should_panic(expected = "beats the exact")]
    fn undercutting_the_floor_panics() {
        let net = Network::Path { n: 8 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let _ = certify(&net, &g, d, Mode::FullDuplex, 4, 3);
    }
}
