//! # sg-search
//!
//! Protocol synthesis for the systolic-gossip reproduction: where
//! `sg-bounds` proves what systolic gossip *cannot* beat, this crate
//! hunts for schedules that *meet* those bounds — closing the loop
//! between the paper's lower bounds and executable upper bounds, the way
//! explicit scheme construction complements analysis in the gossip
//! literature.
//!
//! * [`candidate`] — the editable period-`p` round schedule;
//! * [`kernel`] — the mode-respecting mutation kernel (arc flips, round
//!   swaps and resampling, period grow/shrink) that keeps every candidate
//!   valid by construction;
//! * [`seeds`] — restart seeds from `sg_protocol::builders` and the
//!   universal edge colorings, refitted to the requested period;
//! * [`driver`] — the multi-start simulated-annealing driver: one
//!   deterministic chain per `(period, restart)`, evaluated through the
//!   compiled-schedule engine with an incumbent-based horizon cutoff,
//!   bit-identical across thread counts;
//! * [`certificate`] — the verdict against the paper's bounds (served
//!   by the shared `BoundOracle`): `Optimal` when the found time meets
//!   the strongest exact floor, `Gap(δ)` when it does not, `BoundSlack`
//!   when only the asymptotic coefficient bound overshoots the measured
//!   time, `ProvenOptimal` when exhaustive enumeration certified the
//!   exact optimum;
//! * [`mod@enumerate`] — oracle-pruned exact branch-and-bound over every
//!   valid period-`s` schedule: maximal-round dominance, exact symmetry
//!   breaking at every depth (element lists or stabilizer chains),
//!   canonical-signature memoization (orbit minima or
//!   individualization–refinement forms), relaxation cuts, and a
//!   deterministic parallel fixed-cap pass — the machinery that turns a
//!   reported gap into a settled theorem;
//! * [`mod@reference`] — the retired sequential pre-refinement enumerator,
//!   kept as the differential-conformance oracle and the serial
//!   baseline of the enumeration bench.

pub mod candidate;
pub mod certificate;
pub mod driver;
pub mod enumerate;
pub mod kernel;
pub mod reference;
pub mod seeds;

pub use candidate::Candidate;
pub use certificate::{ceil_log2, certify, certify_with, Certificate, FloorSource, Verdict};
pub use driver::{search, search_on, search_with_oracle, SearchConfig, SearchOutcome};
pub use enumerate::{
    enumerate, enumerate_with_group, enumerate_with_oracle, maximal_rounds, EnumerateConfig,
    EnumerateOutcome,
};
pub use kernel::MutationKernel;
pub use seeds::{fit_to_period, seed_protocols};
