//! Search seeds: where the annealer starts from.
//!
//! Restarts are seeded from the repo's existing upper-bound constructions
//! — the network's hand-built reference protocol when its mode matches,
//! and the universal edge-coloring periodic protocols — refitted to the
//! requested period, plus fully random candidates for the remaining
//! restarts. Starting from schedules that already gossip gives every
//! restart a completing incumbent, which is what makes the horizon
//! cutoff effective from the first iteration.

use crate::candidate::Candidate;
use sg_graphs::digraph::Digraph;
use sg_protocol::builders::{edge_coloring_periodic, full_duplex_coloring_periodic};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::Round;
use systolic_gossip::Network;

/// The deterministic seed protocols for `(net, g, mode)`: the reference
/// protocol when it runs in `mode`, then the matching universal coloring
/// protocol. May be empty (directed shift networks in full-duplex mode).
pub fn seed_protocols(net: &Network, g: &Digraph, mode: Mode) -> Vec<SystolicProtocol> {
    let mut out = Vec::new();
    if let Some(sp) = net.reference_protocol() {
        if sp.mode() == mode {
            out.push(sp);
        }
    }
    if g.is_symmetric() {
        match mode {
            Mode::FullDuplex => out.push(full_duplex_coloring_periodic(g)),
            Mode::Directed | Mode::HalfDuplex => out.push(edge_coloring_periodic(g)),
        }
    }
    out
}

/// Refits a protocol's period to exactly `s` rounds under the *search's*
/// mode: a longer period is truncated, a shorter one is extended
/// cyclically. Per-round validity is untouched (each round is still a
/// matching of the same graph); only the schedule's rhythm changes, and
/// the annealer repairs the rest. `mode` is taken explicitly rather than
/// copied from the seed because a Directed search may legitimately seed
/// from a half-duplex coloring — the candidate must carry the mode it
/// will be mutated and certified under.
pub fn fit_to_period(sp: &SystolicProtocol, s: usize, mode: Mode) -> Candidate {
    assert!(s >= 1, "cannot fit to an empty period");
    let rounds: Vec<Round> = (0..s).map(|i| sp.round_at(i).clone()).collect();
    Candidate::new(rounds, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_protocol::builders;

    #[test]
    fn seeds_match_the_requested_mode() {
        let net = Network::Hypercube { k: 3 };
        let g = net.build();
        for mode in [Mode::HalfDuplex, Mode::FullDuplex] {
            let seeds = seed_protocols(&net, &g, mode);
            assert!(!seeds.is_empty());
            for sp in &seeds {
                assert_eq!(sp.mode(), mode);
                sp.validate(&g).expect("valid seed");
            }
        }
        // The full-duplex list leads with the reference dimension sweep.
        let fd = seed_protocols(&net, &g, Mode::FullDuplex);
        assert_eq!(fd[0].s(), 3);
    }

    #[test]
    fn directed_shift_networks_have_no_full_duplex_seed() {
        let net = Network::DeBruijnDirected { d: 2, dd: 3 };
        let g = net.build();
        assert!(seed_protocols(&net, &g, Mode::FullDuplex).is_empty());
        // But the directed mode still yields nothing here (no reference,
        // no coloring on an asymmetric digraph) — the driver falls back
        // to random candidates.
        assert!(seed_protocols(&net, &g, Mode::Directed).is_empty());
    }

    #[test]
    fn fit_truncates_and_extends_cyclically() {
        let sp = builders::path_rrll(6); // period 4
        let short = fit_to_period(&sp, 2, Mode::HalfDuplex);
        assert_eq!(short.s(), 2);
        assert_eq!(&short.rounds[0], sp.round_at(0));
        let long = fit_to_period(&sp, 6, Mode::HalfDuplex);
        assert_eq!(long.s(), 6);
        assert_eq!(&long.rounds[4], sp.round_at(0));
        assert_eq!(&long.rounds[5], sp.round_at(1));
    }

    #[test]
    fn fit_carries_the_search_mode_not_the_seed_mode() {
        // A Directed search seeding from the half-duplex coloring must
        // produce a Directed candidate (the rounds are identical; only
        // the label differs, and it must be the one the kernel and the
        // certificate operate under).
        let g = sg_graphs::generators::cycle(6);
        let hd = builders::edge_coloring_periodic(&g);
        let c = fit_to_period(&hd, 3, Mode::Directed);
        assert_eq!(c.mode, Mode::Directed);
        c.validate(&g).expect("valid under the directed rule");
    }
}
