//! The multi-start simulated-annealing driver.
//!
//! The search space is the set of valid period-`p` round schedules for a
//! `(network, mode)` pair; the driver runs one independent annealing
//! chain per `(period, restart)` job, fanned out across a scoped worker
//! pool behind an atomic cursor (the batch-runner idiom). Each chain is
//! seeded deterministically from `(seed, period, restart)`, evaluates
//! candidates through the compiled-schedule engine with an
//! incumbent-based horizon cutoff
//! ([`sg_sim::run_systolic_with_horizon`]), and never shares state with
//! other chains — which is what makes the outcome bit-identical across
//! any thread count (tested in `tests/determinism.rs`).

use crate::candidate::Candidate;
use crate::certificate::{certify_with, Certificate};
use crate::kernel::MutationKernel;
use crate::seeds::{fit_to_period, seed_protocols};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sg_graphs::digraph::Digraph;
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_sim::{CompiledSchedule, CompletionCursor, Knowledge};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use systolic_gossip::{BoundOracle, Network};

/// Knobs of one search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Smallest period the search may visit (`>= 2`; the bound engine's
    /// period taxonomy starts there).
    pub min_period: usize,
    /// Largest period (equal to `min_period` for an exact-period search).
    pub max_period: usize,
    /// Independent annealing chains per period.
    pub restarts: usize,
    /// Mutation/evaluation steps per chain.
    pub iterations: usize,
    /// Master seed; every chain derives its own stream from
    /// `(seed, period, restart)`.
    pub seed: u64,
    /// Initial annealing temperature, in rounds of gossip time.
    pub init_temperature: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Rounds past the incumbent a candidate may run before the horizon
    /// aborts it (the SA still needs to see mildly-worse candidates).
    pub horizon_slack: usize,
    /// Simulation round budget per evaluation (`0` = derive `40·n + 200`,
    /// the conformance suite's generous default).
    pub sim_budget: usize,
    /// Worker threads across chains (`0` = one per available core,
    /// capped at 16). Results are identical for every value.
    pub threads: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            min_period: 2,
            max_period: 4,
            restarts: 8,
            iterations: 600,
            seed: 1997,
            init_temperature: 3.0,
            cooling: 0.995,
            horizon_slack: 8,
            sim_budget: 0,
            threads: 1,
        }
    }
}

impl SearchConfig {
    /// An exact-period search at `s`.
    pub fn exact_period(mut self, s: usize) -> Self {
        self.min_period = s;
        self.max_period = s;
        self
    }

    fn effective_budget(&self, n: usize) -> usize {
        if self.sim_budget > 0 {
            self.sim_budget
        } else {
            40 * n + 200
        }
    }

    fn effective_threads(&self, jobs: usize) -> usize {
        let t = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16)
        };
        t.min(jobs.max(1))
    }
}

/// What one search produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best schedule found (seeded start if nothing improved).
    pub best: SystolicProtocol,
    /// Its measured gossip time, `None` when no evaluated candidate
    /// completed within the budget (pathological configs only).
    pub best_rounds: Option<usize>,
    /// Certificate against the lower bounds, when a completing schedule
    /// was found.
    pub certificate: Option<Certificate>,
    /// Total candidate evaluations across all chains.
    pub evaluations: usize,
    /// Chains run (periods × restarts).
    pub chains: usize,
}

/// One annealing chain's result.
struct ChainResult {
    rounds: Vec<sg_protocol::round::Round>,
    completed: Option<usize>,
    cost: f64,
    evaluations: usize,
}

/// Splitmix-style mix of the master seed with the chain coordinates.
fn chain_seed(master: u64, period: usize, restart: usize) -> u64 {
    let mut z = master
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((period as u64) << 32)
        .wrapping_add(restart as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Evaluates a candidate: gossip time when it completes within
/// `min(budget, horizon)`, otherwise a cost past the horizon graded by
/// how much knowledge is still missing (gives the annealer a gradient
/// among losing candidates).
///
/// The loop is the compiled-schedule engine run loop with the same
/// incumbent-horizon cutoff as [`sg_sim::run_systolic_with_horizon`]
/// (the conformance-pinned public form), inlined so the hot path
/// neither allocates a trace nor scans `min_count` per round — the
/// final scan happens once, and only for losing candidates.
fn evaluate(
    cand: &Candidate,
    n: usize,
    budget: usize,
    horizon: Option<usize>,
) -> (f64, Option<usize>) {
    let mut sched = CompiledSchedule::compile(&cand.rounds, n);
    let cap = horizon.unwrap_or(budget).min(budget);
    let mut k = Knowledge::initial(n);
    let mut cursor = CompletionCursor::new();
    if cursor.complete(&k) {
        return (0.0, Some(0));
    }
    for i in 0..cap {
        sched.apply(&mut k, i);
        if cursor.complete(&k) {
            let t = i + 1;
            return (t as f64, Some(t));
        }
    }
    let missing = (n - k.min_count()) as f64 / n.max(1) as f64;
    (cap as f64 + 1.0 + missing, None)
}

fn run_chain(
    g: &Digraph,
    kernel: &MutationKernel,
    start: Candidate,
    seed: u64,
    budget: usize,
    cfg: &SearchConfig,
) -> ChainResult {
    let n = g.vertex_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = start;
    debug_assert!(cur.validate(g).is_ok(), "seed candidate must be valid");
    let (mut cur_cost, mut cur_completed) = evaluate(&cur, n, budget, None);
    let mut best = cur.clone();
    let mut best_cost = cur_cost;
    let mut best_completed = cur_completed;
    let mut evaluations = 1usize;
    let mut temp = cfg.init_temperature;
    for _ in 0..cfg.iterations {
        let mut cand = cur.clone();
        kernel.mutate(&mut cand, &mut rng);
        debug_assert!(cand.validate(g).is_ok(), "mutation broke validity");
        // Incumbent horizon: a candidate that has not completed within
        // `cur + slack` rounds cannot be accepted cheaply — stop it there.
        let horizon = (cur_cost.ceil() as usize).saturating_add(cfg.horizon_slack);
        let (cost, completed) = evaluate(&cand, n, budget, Some(horizon.min(budget)));
        evaluations += 1;
        let accept =
            cost <= cur_cost || rng.gen::<f64>() < (-(cost - cur_cost) / temp.max(1e-9)).exp();
        if accept {
            cur = cand;
            cur_cost = cost;
            cur_completed = completed;
            if cost < best_cost {
                best = cur.clone();
                best_cost = cost;
                best_completed = cur_completed;
            }
        }
        temp *= cfg.cooling;
    }
    ChainResult {
        rounds: best.rounds,
        completed: best_completed,
        cost: best_cost,
        evaluations,
    }
}

/// Runs the full search for `net` in `mode`, building the graph and
/// measuring its diameter on the spot. See [`search_on`] for the
/// cache-friendly entry point the batch runner uses.
pub fn search(net: &Network, mode: Mode, cfg: &SearchConfig) -> SearchOutcome {
    let g = net.build();
    let diameter = sg_graphs::traversal::diameter(&g);
    search_on(net, &g, diameter, mode, cfg)
}

/// [`search`] on an already-built digraph with an already-measured
/// diameter, certifying against a throwaway bound oracle. Batch callers
/// with a shared oracle use [`search_with_oracle`].
pub fn search_on(
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    cfg: &SearchConfig,
) -> SearchOutcome {
    search_with_oracle(&BoundOracle::new(), net, g, diameter, mode, cfg)
}

/// The full search against a shared memoizing [`BoundOracle`] — repeated
/// searches over one `(network, mode, period)` certify against one bound
/// computation.
///
/// Chains are independent and deterministically seeded, so the outcome
/// (best schedule, certificate, evaluation count) is identical for every
/// `cfg.threads` value.
pub fn search_with_oracle(
    oracle: &BoundOracle,
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    cfg: &SearchConfig,
) -> SearchOutcome {
    assert!(
        cfg.min_period >= 2 && cfg.min_period <= cfg.max_period,
        "search needs 2 <= min_period <= max_period, got {}..={}",
        cfg.min_period,
        cfg.max_period
    );
    assert!(cfg.restarts >= 1, "search needs at least one restart");
    let n = g.vertex_count();
    let budget = cfg.effective_budget(n);
    let kernel = MutationKernel::new(g, mode, cfg.min_period, cfg.max_period);
    let seeds = seed_protocols(net, g, mode);

    // One job per (period, restart); each derives its start and rng
    // stream from its coordinates alone.
    let jobs: Vec<(usize, usize)> = (cfg.min_period..=cfg.max_period)
        .flat_map(|p| (0..cfg.restarts).map(move |r| (p, r)))
        .collect();
    let start_of = |p: usize, r: usize| -> Candidate {
        if r < seeds.len() {
            fit_to_period(&seeds[r], p, mode)
        } else {
            let mut rng = StdRng::seed_from_u64(chain_seed(cfg.seed ^ 0xA5A5, p, r));
            kernel.random_candidate(p, &mut rng)
        }
    };

    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, ChainResult)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let threads = cfg.effective_threads(jobs.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(p, r)) = jobs.get(i) else {
                    break;
                };
                let result = run_chain(
                    g,
                    &kernel,
                    start_of(p, r),
                    chain_seed(cfg.seed, p, r),
                    budget,
                    cfg,
                );
                done.lock().unwrap().push((i, result));
            });
        }
    });
    let mut results = done.into_inner().unwrap();
    results.sort_by_key(|(i, _)| *i);

    // Deterministic reduction: completing chains beat non-completing
    // ones, then lower cost, then (stable) lower job index.
    let evaluations: usize = results.iter().map(|(_, r)| r.evaluations).sum();
    let chains = results.len();
    let (_, winner) = results
        .into_iter()
        .min_by(|(ia, a), (ib, b)| {
            b.completed
                .is_some()
                .cmp(&a.completed.is_some())
                .then(a.cost.total_cmp(&b.cost))
                .then(ia.cmp(ib))
        })
        .expect("at least one chain ran");

    let best = SystolicProtocol::new(winner.rounds, mode);
    let certificate = winner
        .completed
        .map(|t| certify_with(oracle, net, g, diameter, mode, best.s(), t, Some(&best)));
    SearchOutcome {
        best,
        best_rounds: winner.completed,
        certificate,
        evaluations,
        chains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::Verdict;

    fn quick(seed: u64) -> SearchConfig {
        SearchConfig {
            restarts: 3,
            iterations: 120,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn path_full_duplex_search_is_optimal_at_diameter() {
        // P_8, full-duplex: the alternating coloring seed already meets
        // the n − 1 diameter floor, so the search must certify Optimal.
        let net = Network::Path { n: 8 };
        let out = search(&net, Mode::FullDuplex, &quick(1).exact_period(2));
        assert_eq!(out.best_rounds, Some(7));
        let cert = out.certificate.expect("completing schedule");
        assert_eq!(cert.verdict, Verdict::Optimal);
        assert_eq!(cert.floor_rounds, 7);
        // The winner is executable and valid.
        out.best.validate(&net.build()).expect("valid");
    }

    #[test]
    fn hypercube_search_meets_the_doubling_floor() {
        let net = Network::Hypercube { k: 3 };
        let out = search(&net, Mode::FullDuplex, &quick(2).exact_period(3));
        assert_eq!(out.best_rounds, Some(3));
        assert_eq!(
            out.certificate.expect("certificate").verdict,
            Verdict::Optimal
        );
    }

    #[test]
    fn gaps_are_reported_not_dropped() {
        // C_8 half-duplex at s = 2: the linear floor is n − 1 = 7 but the
        // two-color schedule needs n = 8 rounds; whatever the search
        // finds, the certificate must carry the gap explicitly.
        let net = Network::Cycle { n: 8 };
        let out = search(&net, Mode::HalfDuplex, &quick(3).exact_period(2));
        let t = out.best_rounds.expect("completes");
        let cert = out.certificate.expect("certificate");
        assert_eq!(cert.gap_rounds(), t - 7);
        if t == 7 {
            assert_eq!(cert.verdict, Verdict::Optimal);
        } else {
            assert!(matches!(cert.verdict, Verdict::Gap { .. }));
        }
    }

    #[test]
    fn evaluation_counter_and_chain_count_add_up() {
        let net = Network::Cycle { n: 6 };
        let cfg = SearchConfig {
            min_period: 2,
            max_period: 3,
            restarts: 2,
            iterations: 50,
            seed: 9,
            ..Default::default()
        };
        let out = search(&net, Mode::FullDuplex, &cfg);
        assert_eq!(out.chains, 4); // 2 periods × 2 restarts
        assert_eq!(out.evaluations, 4 * 51); // initial eval + iterations
    }

    #[test]
    #[should_panic(expected = "min_period")]
    fn rejects_degenerate_period_band() {
        let net = Network::Path { n: 4 };
        let cfg = SearchConfig {
            min_period: 1,
            max_period: 1,
            ..Default::default()
        };
        let _ = search(&net, Mode::HalfDuplex, &cfg);
    }
}
