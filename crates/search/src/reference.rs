//! The retired pre-refinement enumeration engine, preserved verbatim.
//!
//! This is the sequential incumbent-tightening branch-and-bound that
//! [`mod@crate::enumerate`] replaced: element-list symmetry breaking with a
//! sound-but-weak generator fallback past [`SYMMETRY_ELEMENT_CAP`],
//! canonical signatures degrading to the raw state past
//! `CANONICAL_PERM_CAP`, and a single-threaded descent. It survives
//! for the same reason `sg-sim` keeps its retired dense engine:
//!
//! * **conformance oracle** — the differential tests assert that the
//!   parallel fixed-cap engine settles exactly the optima this engine
//!   settles, on every instance small enough for both;
//! * **serial baseline** — the enumeration bench's thread-scaling
//!   ablation measures the new engine (at one thread and many) against
//!   this engine, so speedups are relative to the real pre-refinement
//!   code path rather than a synthetic strawman.
//!
//! New call sites should use [`crate::enumerate::enumerate`]; nothing
//! here is tuned further.

use crate::certificate::Verdict;
use crate::enumerate::{
    best_seed, candidate_action, maximal_rounds, relaxation_round, EnumerateConfig,
    EnumerateOutcome, SYMMETRY_ELEMENT_CAP,
};
use sg_bounds::pfun::Period;
use sg_graphs::group::{automorphism_group, identity, invert, Perm, PermGroup};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_sim::{CompiledSchedule, CompletionCursor, Knowledge};
use std::collections::HashMap;
use systolic_gossip::{BoundOracle, Network};

/// Largest element list the retired engine used for canonical state
/// signatures; beyond it the memo keyed on the raw signature (still
/// sound, fewer cross-branch hits).
const CANONICAL_PERM_CAP: usize = 256;

struct Search {
    compiled: Vec<CompiledSchedule>,
    slots: usize,
    n: usize,
    relaxed: CompiledSchedule,
    floor: usize,
    max_nodes: usize,
    /// Symmetry permutations (identity first; full element list or the
    /// generator fallback).
    perms: Vec<Perm>,
    /// `action[p][c]`: the candidate index `perms[p]` maps candidate `c`
    /// to.
    action: Vec<Vec<u32>>,
    /// Perms usable for canonical signatures (`perms` when small enough,
    /// just the identity beyond `CANONICAL_PERM_CAP`).
    canonical_perms: usize,
    relax_memo: HashMap<Vec<u64>, Option<u32>>,
    // Mutable search state.
    chosen: Vec<usize>,
    incumbent: Option<(usize, Vec<usize>)>,
    enumerated: usize,
    pruned: usize,
    pruned_per_level: Vec<usize>,
    stabilizer_pruned: usize,
    memo_hits: usize,
    nodes: usize,
    met_floor: bool,
}

impl Search {
    fn canonical_signature(&self, state: &Knowledge) -> Vec<u64> {
        let n = self.n;
        let words = state.words();
        if self.canonical_perms == 1 {
            let mut sig = Vec::with_capacity(n * words);
            for v in 0..n {
                sig.extend_from_slice(state.row(v));
            }
            return sig;
        }
        let mut best: Option<Vec<u64>> = None;
        let mut sig = vec![0u64; n * words];
        for p in &self.perms[..self.canonical_perms] {
            sig.iter_mut().for_each(|w| *w = 0);
            for v in 0..n {
                let pv = p[v] as usize;
                for (w, &bits) in state.row(v).iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let item = p[w * 64 + b] as usize;
                        sig[pv * words + item / 64] |= 1u64 << (item % 64);
                    }
                }
            }
            if best.as_ref().is_none_or(|b| sig < *b) {
                best = Some(sig.clone());
            }
        }
        best.unwrap_or(sig)
    }

    fn relax_distance(&mut self, state: &Knowledge) -> Option<usize> {
        let sig = self.canonical_signature(state);
        if let Some(&d) = self.relax_memo.get(&sig) {
            self.memo_hits += 1;
            return d.map(|x| x as usize);
        }
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        let mut dist = 0u32;
        let result = loop {
            if cursor.complete(&k) {
                break Some(dist);
            }
            if !self.relaxed.apply(&mut k, 0) {
                break None;
            }
            dist += 1;
        };
        self.relax_memo.insert(sig, result);
        result.map(|d| d as usize)
    }

    fn finish_schedule(&mut self, state: &Knowledge, horizon: Option<usize>) -> Option<usize> {
        let s = self.slots;
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&k) {
            return Some(s);
        }
        let cap = horizon.unwrap_or(usize::MAX);
        let mut t = s;
        loop {
            let mut changed = false;
            for slot in 0..s {
                let idx = self.chosen[slot];
                changed |= self.compiled[idx].apply(&mut k, 0);
                t += 1;
                if cursor.complete(&k) {
                    return Some(t);
                }
                if t >= cap {
                    return None;
                }
            }
            if !changed {
                return None;
            }
        }
    }

    fn is_representative(&self, stab: &[u32], c: usize) -> bool {
        stab.iter()
            .all(|&p| self.action[p as usize][c] as usize >= c)
    }

    fn descend(&mut self, state: &Knowledge, slot: usize, stab: &[u32]) {
        if self.met_floor {
            return;
        }
        self.nodes += 1;
        assert!(
            self.nodes <= self.max_nodes,
            "exact enumeration exceeded {} nodes — instance too large",
            self.max_nodes
        );
        let symmetric = stab.len() > 1;
        for idx in 0..self.compiled.len() {
            if self.met_floor {
                return;
            }
            if symmetric && !self.is_representative(stab, idx) {
                if slot > 0 {
                    self.stabilizer_pruned += 1;
                }
                continue;
            }
            let mut next = state.clone();
            self.compiled[idx].apply(&mut next, 0);
            self.chosen[slot] = idx;
            let t = slot + 1;
            let mut cursor = CompletionCursor::new();
            if cursor.complete(&next) {
                self.enumerated += 1;
                self.record(t, slot);
                continue;
            }
            let cap = self
                .incumbent
                .as_ref()
                .map_or(usize::MAX - 1, |(best, _)| best.saturating_sub(1));
            match self.relax_distance(&next) {
                None => {
                    self.pruned += 1;
                    self.pruned_per_level[slot] += 1;
                    continue;
                }
                Some(d) if t + d > cap => {
                    self.pruned += 1;
                    self.pruned_per_level[slot] += 1;
                    continue;
                }
                Some(_) => {}
            }
            if slot + 1 == self.slots {
                self.enumerated += 1;
                let horizon = self.incumbent.as_ref().map(|(best, _)| best - 1);
                if let Some(found) = self.finish_schedule(&next, horizon) {
                    self.record(found, slot);
                }
            } else {
                let child_stab: Vec<u32> = stab
                    .iter()
                    .copied()
                    .filter(|&p| self.action[p as usize][idx] as usize == idx)
                    .collect();
                self.descend(&next, slot + 1, &child_stab);
            }
        }
    }

    fn record(&mut self, found: usize, filled: usize) {
        let better = self
            .incumbent
            .as_ref()
            .is_none_or(|(best, _)| found < *best);
        if better {
            let mut rounds = self.chosen.clone();
            for r in rounds.iter_mut().skip(filled + 1) {
                *r = self.chosen[filled]; // any valid round works
            }
            self.incumbent = Some((found, rounds));
            if found <= self.floor {
                self.met_floor = true;
            }
        }
    }
}

/// The retired engine's symmetry permutations: the full element list
/// when the group is small enough, otherwise the sound generator subset
/// (identity, generators, inverses). Identity first either way.
fn symmetry_perms(group: &PermGroup) -> Vec<Perm> {
    if let Some(elements) = group.elements_capped(SYMMETRY_ELEMENT_CAP) {
        return elements;
    }
    let mut perms = vec![identity(group.n())];
    for gen in group.generators() {
        perms.push(gen.clone());
        perms.push(invert(gen));
    }
    perms.sort_unstable();
    perms.dedup();
    perms
}

/// Runs the retired engine end to end for `net` in `mode`: sequential
/// incumbent-tightening descent, exactly the pre-refinement semantics.
/// `cfg.threads` is ignored; the outcome reports `threads == 1`.
pub fn enumerate_serial(net: &Network, mode: Mode, cfg: &EnumerateConfig) -> EnumerateOutcome {
    assert!(cfg.period >= 2, "enumeration needs a period of at least 2");
    let g = net.build();
    let diameter = sg_graphs::traversal::diameter(&g);
    let oracle = BoundOracle::new();
    let group = automorphism_group(&g);
    let n = g.vertex_count();
    let s = cfg.period;
    let ob = oracle.bounds_on(net, &g, diameter, mode, Period::Systolic(s));
    let floor = ob.floor_rounds;

    let candidates = maximal_rounds(&g, mode);
    assert!(
        !candidates.is_empty(),
        "{}: no valid non-empty round exists",
        net.name()
    );
    assert!(
        candidates.len() <= cfg.max_round_candidates,
        "{}: {} candidate rounds exceed the exact-enumeration cap {}",
        net.name(),
        candidates.len(),
        cfg.max_round_candidates
    );

    let perms = symmetry_perms(&group);
    let name = net.name();
    let action: Vec<Vec<u32>> = perms
        .iter()
        .map(|p| candidate_action(p, &candidates, &name))
        .collect();
    let all_perm_indices: Vec<u32> = (0..perms.len() as u32).collect();
    let compiled: Vec<CompiledSchedule> = candidates
        .iter()
        .map(|r| CompiledSchedule::compile(std::slice::from_ref(r), n))
        .collect();

    let mut search = Search {
        compiled,
        slots: s,
        n,
        relaxed: CompiledSchedule::compile(std::slice::from_ref(&relaxation_round(&g)), n),
        floor,
        max_nodes: cfg.max_nodes,
        canonical_perms: if perms.len() <= CANONICAL_PERM_CAP {
            perms.len()
        } else {
            1
        },
        perms,
        action,
        relax_memo: HashMap::new(),
        chosen: vec![0; s],
        incumbent: None,
        enumerated: 0,
        pruned: 0,
        pruned_per_level: vec![0; s],
        stabilizer_pruned: 0,
        memo_hits: 0,
        nodes: 0,
        met_floor: false,
    };
    let representatives = (0..search.compiled.len())
        .filter(|&i| search.is_representative(&all_perm_indices, i))
        .count();

    let seed_best = best_seed(net, &g, mode, s);
    if let Some((t, _)) = &seed_best {
        search.incumbent = Some((*t, vec![0; s])); // witness replaced below
        search.met_floor = *t <= floor;
    }

    let initial = Knowledge::initial(n);
    let mut improved_over_seed = false;
    if !search.met_floor {
        let before = search.incumbent.as_ref().map(|(b, _)| *b);
        search.descend(&initial, 0, &all_perm_indices);
        improved_over_seed = match (before, &search.incumbent) {
            (Some(b), Some((now, _))) => now < &b,
            (None, Some(_)) => true,
            _ => false,
        };
    }

    let (best_rounds, best) = match (&search.incumbent, &seed_best) {
        (Some((t, chosen)), seed) => {
            let t = *t;
            let proto = if improved_over_seed || seed.is_none() {
                SystolicProtocol::new(
                    chosen.iter().map(|&i| candidates[i].clone()).collect(),
                    mode,
                )
            } else {
                seed.as_ref().map(|(_, p)| p.clone()).expect("seed witness")
            };
            (Some(t), Some(proto))
        }
        (None, _) => (None, None),
    };

    let certificate = best_rounds.map(|t| {
        let mut cert =
            crate::certificate::certify_with(&oracle, net, &g, diameter, mode, s, t, best.as_ref());
        cert.verdict = Verdict::ProvenOptimal {
            enumerated: search.enumerated,
        };
        cert
    });

    EnumerateOutcome {
        best,
        best_rounds,
        certificate,
        proven_infeasible: best_rounds.is_none(),
        enumerated: search.enumerated,
        pruned: search.pruned,
        round_candidates: candidates.len(),
        representatives,
        automorphisms: usize::try_from(group.order()).unwrap_or(usize::MAX),
        group_order: group.order(),
        chain_depth: group.chain_depth(),
        symmetry_perms: search.perms.len(),
        stabilizer_pruned: search.stabilizer_pruned,
        pruned_per_level: search.pruned_per_level,
        memo_hits: search.memo_hits,
        memo_entries: search.relax_memo.len(),
        met_floor: search.met_floor,
        threads: 1,
    }
}
