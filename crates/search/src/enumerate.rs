//! Exact optima by oracle-pruned exhaustive enumeration.
//!
//! Where the annealing driver *finds* good period-`s` schedules, this
//! module *proves* what the best one is: a deterministic branch-and-bound
//! over every valid period-`s` round schedule of a `(network, mode)`
//! pair, returning either the exact optimum with a
//! [`Verdict::ProvenOptimal`] certificate or an exact infeasibility
//! statement. This is what turns a reported `Gap(δ)` into a settled
//! theorem — the "rigorous minimal time" program applied to the paper's
//! open small cases (`Q₃` at `s = 2` full-duplex, `C₈` full-duplex at
//! `s = 3`, the directed variants) and, with stabilizer-chain symmetry
//! breaking, to richer families (Knödel graphs, tori, directed
//! de Bruijn networks).
//!
//! ```
//! use sg_search::{enumerate, EnumerateConfig, Verdict};
//! use systolic_gossip::sg_protocol::mode::Mode;
//! use systolic_gossip::Network;
//!
//! // P_4 at s = 2, full-duplex: the alternating pairing meets the
//! // diameter floor n − 1 = 3, and exhaustion proves nothing beats it.
//! let out = enumerate(
//!     &Network::Path { n: 4 },
//!     Mode::FullDuplex,
//!     &EnumerateConfig::default().exact_period(2),
//! );
//! assert_eq!(out.best_rounds, Some(3));
//! assert!(matches!(
//!     out.certificate.unwrap().verdict,
//!     Verdict::ProvenOptimal { .. }
//! ));
//! ```
//!
//! Four exact reductions keep the space small; each is a theorem, not a
//! heuristic:
//!
//! 1. **Maximal rounds only.** Knowledge evolves monotonically — per
//!    round, every target unions a beginning-of-round source row into
//!    its own — so replacing any round by a superset round never delays
//!    completion (pointwise domination, by induction over rounds). Every
//!    schedule is dominated by one whose rounds are *maximal* valid
//!    rounds, so the enumeration ranges over those alone, for both the
//!    optimum and the infeasibility direction.
//! 2. **Stabilizer-chain symmetry breaking at every depth.** Relabeling
//!    all processors by a graph automorphism maps schedules to schedules
//!    with identical completion times. Round 0 is restricted to one
//!    lexicographic representative per orbit of the full automorphism
//!    group ([`sg_graphs::group::PermGroup`]); after fixing rounds
//!    `0..k`, round `k+1` is restricted to representatives under the
//!    **stabilizer of the prefix** (the subgroup mapping every fixed
//!    round to itself), computed incrementally as the search descends —
//!    each deeper round shrinks the stabilizer, and pruning stops
//!    automatically once it collapses to the identity. Pruned branches
//!    are exact mirror images of explored ones, so both the optimum and
//!    infeasibility stay exact. Mechanically, the group's element list
//!    is materialized once through the chain ([`SYMMETRY_ELEMENT_CAP`];
//!    past it, a sound identity+generators+inverses subset prunes less
//!    but never misses a schedule) and the stabilizer is the filtered
//!    index set threaded down the recursion.
//! 3. **Isomorph-rejection memo on canonical knowledge signatures.** The
//!    relaxation distance (how many all-arcs rounds a knowledge state
//!    needs to complete, or that it never can) depends only on the state
//!    — and is invariant under automorphisms. It is memoized per
//!    *canonical* state signature (the minimum over the group of the
//!    relabeled bitset image), so symmetric branches that reach
//!    equivalent states share one relaxation sweep.
//! 4. **Oracle floors and relaxation cuts.** The shared [`BoundOracle`]
//!    supplies the exact floor — an incumbent meeting it ends the whole
//!    search — and every prefix is cut when even the *relaxed* future
//!    (all arcs active every round, which dominates every valid round)
//!    cannot beat the incumbent. Complete schedules are evaluated
//!    through the compiled engine with the incumbent as horizon, and a
//!    knowledge fixed point across a full period proves a schedule never
//!    completes — which is what makes the infeasibility verdict exact
//!    rather than budget-relative.

use crate::certificate::{certify_with, Certificate, Verdict};
use crate::seeds::{fit_to_period, seed_protocols};
use sg_bounds::pfun::Period;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::group::{automorphism_group, identity, invert, Perm, PermGroup};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::Round;
use sg_sim::{CompiledSchedule, CompletionCursor, Knowledge};
use std::collections::HashMap;
use systolic_gossip::{BoundOracle, Network};

/// Largest group for which symmetry breaking materializes the full
/// element list; bigger groups fall back to a sound generator subset
/// (identity, generators and their inverses) — less pruning, never a
/// missed schedule.
pub const SYMMETRY_ELEMENT_CAP: usize = 4096;

/// Largest element list used for canonical state signatures; beyond it
/// the memo keys on the raw signature (still sound, fewer cross-branch
/// hits).
pub const CANONICAL_PERM_CAP: usize = 256;

/// Knobs of one exact enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerateConfig {
    /// The exact systolic period to enumerate (`>= 2`).
    pub period: usize,
    /// Hard cap on candidate rounds per period slot; exceeding it means
    /// the instance is too large for exact enumeration and the run
    /// panics with a clear message instead of hanging.
    pub max_round_candidates: usize,
    /// Hard cap on visited search-tree nodes (same rationale).
    pub max_nodes: usize,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        Self {
            period: 2,
            max_round_candidates: 20_000,
            max_nodes: 20_000_000,
        }
    }
}

impl EnumerateConfig {
    /// An exact enumeration at period `s`.
    pub fn exact_period(mut self, s: usize) -> Self {
        self.period = s;
        self
    }
}

/// What one exact enumeration established.
#[derive(Debug, Clone)]
pub struct EnumerateOutcome {
    /// A witness schedule achieving the optimum, when one exists.
    pub best: Option<SystolicProtocol>,
    /// The exact optimal gossip time over every valid period-`s`
    /// schedule, `None` when gossip is infeasible at this period.
    pub best_rounds: Option<usize>,
    /// The [`Verdict::ProvenOptimal`] certificate for the optimum.
    pub certificate: Option<Certificate>,
    /// `true` when *no* valid period-`s` schedule ever completes gossip
    /// — exact (every schedule either evaluated, dominated by an
    /// evaluated one, or cut by a sound relaxation), not budget-relative.
    pub proven_infeasible: bool,
    /// Complete schedules whose gossip time was settled (evaluated to
    /// completion, fixed point, or prefix completion).
    pub enumerated: usize,
    /// Subtrees cut by the relaxation bound.
    pub pruned: usize,
    /// Candidate maximal rounds per period slot.
    pub round_candidates: usize,
    /// Round-0 candidates surviving symmetry breaking.
    pub representatives: usize,
    /// Order of the automorphism group used for symmetry breaking,
    /// clamped to `usize` (see [`EnumerateOutcome::group_order`] for the
    /// exact value).
    pub automorphisms: usize,
    /// Exact order of the automorphism group (stabilizer chain product).
    pub group_order: u128,
    /// Depth of the group's stabilizer chain (base length).
    pub chain_depth: usize,
    /// Symmetry permutations actually applied (the full element list, or
    /// the generator fallback beyond [`SYMMETRY_ELEMENT_CAP`]).
    pub symmetry_perms: usize,
    /// Candidates skipped at depths `≥ 1` because a prefix-stabilizer
    /// element maps them to a lexicographically smaller round — the
    /// pruning that plain round-0 symmetry breaking never had.
    pub stabilizer_pruned: usize,
    /// Subtrees cut by the relaxation bound, per period slot.
    pub pruned_per_level: Vec<usize>,
    /// Relaxation sweeps answered by the canonical-signature memo.
    pub memo_hits: usize,
    /// Distinct canonical knowledge signatures the memo holds.
    pub memo_entries: usize,
    /// `true` when the search ended early because the incumbent met the
    /// oracle floor (exhaustion unnecessary).
    pub met_floor: bool,
}

/// Enumerates every *maximal* valid round of `g` under `mode`, in
/// canonical (lexicographic) order.
///
/// Directed / half-duplex rounds are maximal sets of pairwise
/// endpoint-disjoint arcs; full-duplex rounds are maximal sets of
/// vertex-disjoint opposite pairs (maximal matchings of the underlying
/// undirected graph, both arcs activated).
pub fn maximal_rounds(g: &Digraph, mode: Mode) -> Vec<Round> {
    let n = g.vertex_count();
    let mut out = Vec::new();
    match mode {
        Mode::Directed | Mode::HalfDuplex => {
            let arcs: Vec<Arc> = g.arcs().filter(|a| !a.is_loop()).collect();
            let mut used = vec![false; n];
            let mut picked = Vec::new();
            maximal_sets(&arcs, 0, &mut used, &mut picked, &mut |set| {
                out.push(Round::new(set.to_vec()));
            });
        }
        Mode::FullDuplex => {
            assert!(
                g.is_symmetric(),
                "full-duplex rounds need an undirected network"
            );
            let edges: Vec<Arc> = g.arcs().filter(|a| !a.is_loop() && a.from < a.to).collect();
            let mut used = vec![false; n];
            let mut picked = Vec::new();
            maximal_sets(&edges, 0, &mut used, &mut picked, &mut |set| {
                out.push(Round::full_duplex_from_edges(
                    set.iter().map(|a| (a.from as usize, a.to as usize)),
                ));
            });
        }
    }
    out.sort_by(|a, b| a.arcs().cmp(b.arcs()));
    out.dedup();
    out
}

/// Backtracks over `arcs[i..]`, emitting every endpoint-disjoint subset
/// that is maximal (no remaining arc can be added).
fn maximal_sets(
    arcs: &[Arc],
    i: usize,
    used: &mut Vec<bool>,
    picked: &mut Vec<Arc>,
    emit: &mut impl FnMut(&[Arc]),
) {
    if i == arcs.len() {
        // Maximal iff no arc has both endpoints free.
        if arcs
            .iter()
            .all(|a| used[a.from as usize] || used[a.to as usize])
        {
            emit(picked);
        }
        return;
    }
    let a = arcs[i];
    let (u, v) = (a.from as usize, a.to as usize);
    if !used[u] && !used[v] {
        used[u] = true;
        used[v] = true;
        picked.push(a);
        maximal_sets(arcs, i + 1, used, picked, emit);
        picked.pop();
        used[u] = false;
        used[v] = false;
    }
    maximal_sets(arcs, i + 1, used, picked, emit);
}

/// The all-arcs relaxation round: dominates every valid round of any
/// mode, which is what makes prefix cuts sound.
fn relaxation_round(g: &Digraph) -> Round {
    Round::new(g.arcs().filter(|a| !a.is_loop()).collect())
}

struct Search {
    compiled: Vec<CompiledSchedule>,
    slots: usize,
    n: usize,
    relaxed: CompiledSchedule,
    floor: usize,
    max_nodes: usize,
    /// Symmetry permutations (identity first; full element list or the
    /// generator fallback).
    perms: Vec<Perm>,
    /// `action[p][c]`: the candidate index `perms[p]` maps candidate `c`
    /// to. Candidates are sorted, so index order *is* lexicographic
    /// order and orbit representatives are orbit minima.
    action: Vec<Vec<u32>>,
    /// Perms usable for canonical signatures (`perms` when small enough,
    /// just the identity beyond [`CANONICAL_PERM_CAP`]).
    canonical_perms: usize,
    /// Canonical knowledge signature → exact relaxation distance
    /// (`None` = even the all-arcs relaxation never completes).
    relax_memo: HashMap<Vec<u64>, Option<u32>>,
    // Mutable search state.
    chosen: Vec<usize>,
    incumbent: Option<(usize, Vec<usize>)>,
    enumerated: usize,
    pruned: usize,
    pruned_per_level: Vec<usize>,
    stabilizer_pruned: usize,
    memo_hits: usize,
    nodes: usize,
    met_floor: bool,
}

impl Search {
    /// The canonical signature of a knowledge state: the minimum, over
    /// the symmetry permutations, of the flattened bitset image with
    /// both processors and items relabeled. Automorphic states share a
    /// signature, so the memo recognizes branches that are mirror images
    /// of ones already analyzed.
    fn canonical_signature(&self, state: &Knowledge) -> Vec<u64> {
        let n = self.n;
        let words = state.words();
        if self.canonical_perms == 1 {
            // Identity only (group beyond CANONICAL_PERM_CAP): the
            // signature is the raw state — no bit-twiddling needed.
            let mut sig = Vec::with_capacity(n * words);
            for v in 0..n {
                sig.extend_from_slice(state.row(v));
            }
            return sig;
        }
        let mut best: Option<Vec<u64>> = None;
        let mut sig = vec![0u64; n * words];
        for p in &self.perms[..self.canonical_perms] {
            sig.iter_mut().for_each(|w| *w = 0);
            for v in 0..n {
                let pv = p[v] as usize;
                for (w, &bits) in state.row(v).iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let item = p[w * 64 + b] as usize;
                        sig[pv * words + item / 64] |= 1u64 << (item % 64);
                    }
                }
            }
            if best.as_ref().is_none_or(|b| sig < *b) {
                best = Some(sig.clone());
            }
        }
        best.unwrap_or(sig)
    }

    /// Exact number of all-arcs relaxation rounds `state` needs to reach
    /// completion (`None` when it never completes — then nothing below
    /// any prefix reaching this state ever gossips). Memoized per
    /// canonical signature; the relaxation dominates every valid round,
    /// so `t + distance` lower-bounds every continuation from `state`.
    fn relax_distance(&mut self, state: &Knowledge) -> Option<usize> {
        let sig = self.canonical_signature(state);
        if let Some(&d) = self.relax_memo.get(&sig) {
            self.memo_hits += 1;
            return d.map(|x| x as usize);
        }
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        let mut dist = 0u32;
        let result = loop {
            if cursor.complete(&k) {
                break Some(dist);
            }
            if !self.relaxed.apply(&mut k, 0) {
                break None; // fixed point below completion
            }
            dist += 1;
        };
        self.relax_memo.insert(sig, result);
        result.map(|d| d as usize)
    }

    /// Exact gossip time of the complete schedule `chosen`, continuing
    /// from `state` (the knowledge after its first period). Returns
    /// `None` when the schedule provably never completes (knowledge
    /// fixed point across a full period) or cannot beat `horizon`.
    fn finish_schedule(&mut self, state: &Knowledge, horizon: Option<usize>) -> Option<usize> {
        let s = self.slots;
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&k) {
            return Some(s);
        }
        let cap = horizon.unwrap_or(usize::MAX);
        let mut t = s;
        loop {
            let mut changed = false;
            for slot in 0..s {
                let idx = self.chosen[slot];
                changed |= self.compiled[idx].apply(&mut k, 0);
                t += 1;
                if cursor.complete(&k) {
                    return Some(t);
                }
                if t >= cap {
                    return None;
                }
            }
            if !changed {
                return None; // periodic fixed point: never completes
            }
        }
    }

    /// `true` when candidate `c` is the lexicographic minimum of its
    /// orbit under the stabilizer `stab` (indices into `perms`).
    fn is_representative(&self, stab: &[u32], c: usize) -> bool {
        stab.iter()
            .all(|&p| self.action[p as usize][c] as usize >= c)
    }

    /// One search level: `stab` is the pointwise stabilizer of the fixed
    /// round prefix (as indices into `perms`, always containing the
    /// identity at index 0), shrunk incrementally as rounds are fixed.
    fn descend(&mut self, state: &Knowledge, slot: usize, stab: &[u32]) {
        if self.met_floor {
            return;
        }
        self.nodes += 1;
        assert!(
            self.nodes <= self.max_nodes,
            "exact enumeration exceeded {} nodes — instance too large",
            self.max_nodes
        );
        let symmetric = stab.len() > 1;
        for idx in 0..self.compiled.len() {
            if self.met_floor {
                return;
            }
            // Symmetry breaking at *every* depth: a candidate that some
            // prefix-stabilizing automorphism maps to a smaller round is
            // the mirror image of a branch this loop already explored.
            if symmetric && !self.is_representative(stab, idx) {
                if slot > 0 {
                    self.stabilizer_pruned += 1;
                }
                continue;
            }
            let mut next = state.clone();
            self.compiled[idx].apply(&mut next, 0);
            self.chosen[slot] = idx;
            let t = slot + 1;
            let mut cursor = CompletionCursor::new();
            if cursor.complete(&next) {
                // Completed inside the first period: every deeper choice
                // yields exactly this time — the subtree is settled.
                self.enumerated += 1;
                self.record(t, slot);
                continue;
            }
            // Relaxation cut: even all-arcs rounds from here cannot beat
            // the incumbent (or complete at all).
            let cap = self
                .incumbent
                .as_ref()
                .map_or(usize::MAX - 1, |(best, _)| best.saturating_sub(1));
            match self.relax_distance(&next) {
                None => {
                    // Nothing below this prefix ever completes.
                    self.pruned += 1;
                    self.pruned_per_level[slot] += 1;
                    continue;
                }
                Some(d) if t + d > cap => {
                    self.pruned += 1;
                    self.pruned_per_level[slot] += 1;
                    continue;
                }
                Some(_) => {}
            }
            if slot + 1 == self.slots {
                self.enumerated += 1;
                let horizon = self.incumbent.as_ref().map(|(best, _)| best - 1);
                if let Some(found) = self.finish_schedule(&next, horizon) {
                    self.record(found, slot);
                }
            } else {
                // The child prefix additionally fixes round `idx`: its
                // stabilizer is the subset that maps `idx` to itself.
                let child_stab: Vec<u32> = stab
                    .iter()
                    .copied()
                    .filter(|&p| self.action[p as usize][idx] as usize == idx)
                    .collect();
                self.descend(&next, slot + 1, &child_stab);
            }
        }
    }

    /// Installs a completing schedule as the incumbent when it improves,
    /// filling period slots below `filled` arbitrarily (completion
    /// happened before they matter).
    fn record(&mut self, found: usize, filled: usize) {
        let better = self
            .incumbent
            .as_ref()
            .is_none_or(|(best, _)| found < *best);
        if better {
            let mut rounds = self.chosen.clone();
            for r in rounds.iter_mut().skip(filled + 1) {
                *r = self.chosen[filled]; // any valid round works
            }
            self.incumbent = Some((found, rounds));
            if found <= self.floor {
                self.met_floor = true;
            }
        }
    }
}

/// Runs the exact enumeration for `net` in `mode`, building the graph
/// and a throwaway oracle on the spot. See [`enumerate_with_oracle`] for
/// the batch entry point.
pub fn enumerate(net: &Network, mode: Mode, cfg: &EnumerateConfig) -> EnumerateOutcome {
    let g = net.build();
    let diameter = sg_graphs::traversal::diameter(&g);
    enumerate_with_oracle(&BoundOracle::new(), net, &g, diameter, mode, cfg)
}

/// [`enumerate_with_group`] with the automorphism group computed on the
/// spot. The batch runner passes its cached group instead.
pub fn enumerate_with_oracle(
    oracle: &BoundOracle,
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    cfg: &EnumerateConfig,
) -> EnumerateOutcome {
    let group = automorphism_group(g);
    enumerate_with_group(oracle, net, g, diameter, mode, &group, cfg)
}

/// The symmetry permutations used for breaking: the full element list
/// when the group is small enough, otherwise the sound generator subset
/// (identity, generators, inverses). Identity first either way.
fn symmetry_perms(group: &PermGroup) -> Vec<Perm> {
    if let Some(elements) = group.elements_capped(SYMMETRY_ELEMENT_CAP) {
        return elements;
    }
    let mut perms = vec![identity(group.n())];
    for gen in group.generators() {
        perms.push(gen.clone());
        perms.push(invert(gen));
    }
    perms.sort_unstable();
    perms.dedup();
    perms
}

/// The exact branch-and-bound against a shared memoizing [`BoundOracle`]
/// and a precomputed automorphism group (stabilizer chain).
/// Deterministic: identical inputs give identical outcomes, including
/// the witness schedule and every counter.
pub fn enumerate_with_group(
    oracle: &BoundOracle,
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    group: &PermGroup,
    cfg: &EnumerateConfig,
) -> EnumerateOutcome {
    assert!(cfg.period >= 2, "enumeration needs a period of at least 2");
    let n = g.vertex_count();
    let s = cfg.period;
    let ob = oracle.bounds_on(net, g, diameter, mode, Period::Systolic(s));
    let floor = ob.floor_rounds;

    let candidates = maximal_rounds(g, mode);
    assert!(
        !candidates.is_empty(),
        "{}: no valid non-empty round exists",
        net.name()
    );
    assert!(
        candidates.len() <= cfg.max_round_candidates,
        "{}: {} candidate rounds exceed the exact-enumeration cap {}",
        net.name(),
        candidates.len(),
        cfg.max_round_candidates
    );

    let perms = symmetry_perms(group);
    // Automorphisms permute the maximal rounds among themselves, and the
    // candidate list is lexicographically sorted, so the group action
    // reduces to an index table: orbit minima are index minima.
    let action: Vec<Vec<u32>> = perms
        .iter()
        .map(|p| {
            (0..candidates.len())
                .map(|i| {
                    let mapped = sg_graphs::automorphism::map_arcs(p, candidates[i].arcs());
                    candidates
                        .binary_search_by(|r| r.arcs().cmp(mapped.as_slice()))
                        .unwrap_or_else(|_| {
                            panic!(
                                "{}: automorphism does not permute the maximal rounds",
                                net.name()
                            )
                        }) as u32
                })
                .collect()
        })
        .collect();
    let all_perm_indices: Vec<u32> = (0..perms.len() as u32).collect();
    let compiled: Vec<CompiledSchedule> = candidates
        .iter()
        .map(|r| CompiledSchedule::compile(std::slice::from_ref(r), n))
        .collect();

    let mut search = Search {
        compiled,
        slots: s,
        n,
        relaxed: CompiledSchedule::compile(std::slice::from_ref(&relaxation_round(g)), n),
        floor,
        max_nodes: cfg.max_nodes,
        canonical_perms: if perms.len() <= CANONICAL_PERM_CAP {
            perms.len()
        } else {
            1
        },
        perms,
        action,
        relax_memo: HashMap::new(),
        chosen: vec![0; s],
        incumbent: None,
        enumerated: 0,
        pruned: 0,
        pruned_per_level: vec![0; s],
        stabilizer_pruned: 0,
        memo_hits: 0,
        nodes: 0,
        met_floor: false,
    };
    let representatives = (0..search.compiled.len())
        .filter(|&i| search.is_representative(&all_perm_indices, i))
        .count();

    // Seed the incumbent from the repo's upper-bound constructions
    // refitted to the period — a completing start makes the horizon and
    // relaxation cuts effective from the first node. Seeds are upper
    // bounds on the optimum by dominance (every schedule is dominated by
    // a maximal-rounds one), so they are sound incumbents even though
    // their own rounds need not be maximal.
    let mut seed_best: Option<(usize, SystolicProtocol)> = None;
    for sp in seed_protocols(net, g, mode) {
        let cand = fit_to_period(&sp, s, mode);
        if cand.validate(g).is_err() {
            continue;
        }
        let proto = cand.to_protocol();
        let mut sched = CompiledSchedule::compile(proto.period(), n);
        let mut k = Knowledge::initial(n);
        let mut cursor = CompletionCursor::new();
        let mut found = cursor.complete(&k).then_some(0);
        if found.is_none() {
            let mut t = 0usize;
            'seed: loop {
                let mut changed = false;
                for i in 0..s {
                    changed |= sched.apply(&mut k, t + i);
                    if cursor.complete(&k) {
                        found = Some(t + i + 1);
                        break 'seed;
                    }
                }
                t += s;
                if !changed {
                    break;
                }
            }
        }
        if let Some(t) = found {
            if seed_best.as_ref().is_none_or(|(b, _)| t < *b) {
                seed_best = Some((t, proto));
            }
        }
    }
    if let Some((t, _)) = &seed_best {
        search.incumbent = Some((*t, vec![0; s])); // witness replaced below
        search.met_floor = *t <= floor;
    }

    let initial = Knowledge::initial(n);
    let mut improved_over_seed = false;
    if !search.met_floor {
        let before = search.incumbent.as_ref().map(|(b, _)| *b);
        search.descend(&initial, 0, &all_perm_indices);
        improved_over_seed = match (before, &search.incumbent) {
            (Some(b), Some((now, _))) => now < &b,
            (None, Some(_)) => true,
            _ => false,
        };
    }

    let (best_rounds, best) = match (&search.incumbent, &seed_best) {
        (Some((t, chosen)), seed) => {
            let t = *t;
            // Prefer the enumerated witness when it improved (or no seed
            // exists); otherwise the seed protocol is the witness.
            let proto = if improved_over_seed || seed.is_none() {
                SystolicProtocol::new(
                    chosen.iter().map(|&i| candidates[i].clone()).collect(),
                    mode,
                )
            } else {
                seed.as_ref().map(|(_, p)| p.clone()).unwrap()
            };
            (Some(t), Some(proto))
        }
        (None, _) => (None, None),
    };

    let certificate = best_rounds.map(|t| {
        let mut cert = certify_with(oracle, net, g, diameter, mode, s, t, best.as_ref());
        cert.verdict = Verdict::ProvenOptimal {
            enumerated: search.enumerated,
        };
        cert
    });

    EnumerateOutcome {
        best,
        best_rounds,
        certificate,
        proven_infeasible: best_rounds.is_none(),
        enumerated: search.enumerated,
        pruned: search.pruned,
        round_candidates: candidates.len(),
        representatives,
        automorphisms: usize::try_from(group.order()).unwrap_or(usize::MAX),
        group_order: group.order(),
        chain_depth: group.chain_depth(),
        symmetry_perms: search.perms.len(),
        stabilizer_pruned: search.stabilizer_pruned,
        pruned_per_level: search.pruned_per_level,
        memo_hits: search.memo_hits,
        memo_entries: search.relax_memo.len(),
        met_floor: search.met_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_rounds_are_valid_maximal_and_canonical() {
        let g = Network::Cycle { n: 6 }.build();
        for mode in [Mode::HalfDuplex, Mode::FullDuplex, Mode::Directed] {
            let rounds = maximal_rounds(&g, mode);
            assert!(!rounds.is_empty(), "{mode}");
            for (i, r) in rounds.iter().enumerate() {
                r.validate(&g, mode, i).expect("valid round");
                // Maximality: no arc of g extends the round.
                let extendable = g.arcs().any(|a| {
                    !a.is_loop()
                        && r.arcs().iter().all(|b| {
                            a.from != b.from && a.from != b.to && a.to != b.from && a.to != b.to
                        })
                });
                assert!(!extendable, "{mode}: round {i} is not maximal");
                if i > 0 {
                    assert!(rounds[i - 1].arcs() < r.arcs(), "canonical order");
                }
            }
        }
    }

    #[test]
    fn full_duplex_candidate_counts_match_matching_theory() {
        // Maximal matchings of C_8: the two perfect matchings plus the
        // eight maximal 3-matchings.
        let g = Network::Cycle { n: 8 }.build();
        assert_eq!(maximal_rounds(&g, Mode::FullDuplex).len(), 10);
    }

    #[test]
    fn path_full_duplex_meets_the_diameter_floor() {
        // P_6 at s = 2: the alternating pairing gossips in n − 1 rounds,
        // which is the diameter floor — the enumerator must prove it and
        // stop at the floor.
        let out = enumerate(
            &Network::Path { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        assert_eq!(out.best_rounds, Some(5));
        assert!(out.met_floor);
        let cert = out.certificate.expect("certificate");
        assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
        assert!(cert.verdict.is_settled());
        out.best
            .expect("witness")
            .validate(&Network::Path { n: 6 }.build())
            .expect("valid witness");
    }

    #[test]
    fn cycle6_full_duplex_s2_exact_optimum() {
        // C_6, s = 2, full-duplex: diameter floor 3; period-2 schedules
        // alternate two maximal matchings. The enumerator settles the
        // true optimum exactly, and it is reproducible.
        let out = enumerate(
            &Network::Cycle { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        let t = out.best_rounds.expect("C_6 gossips at s = 2");
        assert!(t >= 3, "floor");
        let again = enumerate(
            &Network::Cycle { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        assert_eq!(again.best_rounds, Some(t), "deterministic");
        assert_eq!(again.enumerated, out.enumerated);
        // The witness actually achieves the proven time.
        let sp = out.best.expect("witness");
        let measured =
            sg_sim::engine::systolic_gossip_time(&sp, 6, 1000).expect("witness completes");
        assert_eq!(measured, t);
    }

    #[test]
    fn round_zero_representatives_are_orbit_minima() {
        use sg_graphs::automorphism::{automorphisms, is_orbit_representative};
        let g = Network::Cycle { n: 8 }.build();
        let candidates = maximal_rounds(&g, Mode::FullDuplex);
        let autos = automorphisms(&g);
        let reps = candidates
            .iter()
            .filter(|r| is_orbit_representative(&autos, r.arcs()))
            .count();
        // C_8's 10 maximal matchings fall into 2 orbits (perfect /
        // size-3) under the dihedral group; the outcome must agree.
        assert_eq!(reps, 2);
        let out = enumerate(
            &Network::Cycle { n: 8 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(3),
        );
        assert_eq!(out.representatives, 2);
        assert_eq!(out.group_order, 16);
        assert!(out.chain_depth >= 2, "dihedral chain has depth ≥ 2");
    }

    #[test]
    fn deeper_slots_get_stabilizer_pruning_and_memo_hits() {
        // C_8 at s = 3: round 1 candidates are pruned under the
        // stabilizer of round 0 (the perfect matchings have nontrivial
        // setwise... pointwise-prefix stabilizers), which plain round-0
        // breaking never did.
        let out = enumerate(
            &Network::Cycle { n: 8 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(3),
        );
        assert!(
            out.stabilizer_pruned > 0,
            "prefix stabilizers must prune deeper slots: {out:?}"
        );
        assert_eq!(out.pruned_per_level.len(), 3);
        assert_eq!(out.pruned_per_level.iter().sum::<usize>(), out.pruned);
        assert_eq!(out.best_rounds, Some(5), "the settled optimum is intact");
    }
}
