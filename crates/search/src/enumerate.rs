//! Exact optima by oracle-pruned exhaustive enumeration.
//!
//! Where the annealing driver *finds* good period-`s` schedules, this
//! module *proves* what the best one is: a deterministic branch-and-bound
//! over every valid period-`s` round schedule of a `(network, mode)`
//! pair, returning either the exact optimum with a
//! [`Verdict::ProvenOptimal`] certificate or an exact infeasibility
//! statement. This is what turns a reported `Gap(δ)` into a settled
//! theorem — the "rigorous minimal time" program applied to the paper's
//! open small cases (`Q₃` at `s = 2` full-duplex, `C₈` full-duplex at
//! `s = 3`, the directed variants) and, with stabilizer-chain symmetry
//! breaking and individualization–refinement canonical forms, to richer
//! families (Knödel graphs up to `W(4,16)`, tori, directed de Bruijn
//! networks, complete graphs whose groups dwarf any element list).
//!
//! ```
//! use sg_search::{enumerate, EnumerateConfig, Verdict};
//! use systolic_gossip::sg_protocol::mode::Mode;
//! use systolic_gossip::Network;
//!
//! // P_4 at s = 2, full-duplex: the alternating pairing meets the
//! // diameter floor n − 1 = 3, and exhaustion proves nothing beats it.
//! let out = enumerate(
//!     &Network::Path { n: 4 },
//!     Mode::FullDuplex,
//!     &EnumerateConfig::default().exact_period(2),
//! );
//! assert_eq!(out.best_rounds, Some(3));
//! assert!(matches!(
//!     out.certificate.unwrap().verdict,
//!     Verdict::ProvenOptimal { .. }
//! ));
//! ```
//!
//! Four exact reductions keep the space small; each is a theorem, not a
//! heuristic:
//!
//! 1. **Maximal rounds only.** Knowledge evolves monotonically — per
//!    round, every target unions a beginning-of-round source row into
//!    its own — so replacing any round by a superset round never delays
//!    completion (pointwise domination, by induction over rounds). Every
//!    schedule is dominated by one whose rounds are *maximal* valid
//!    rounds, so the enumeration ranges over those alone, for both the
//!    optimum and the infeasibility direction.
//! 2. **Exact symmetry breaking at every depth.** Relabeling all
//!    processors by a graph automorphism maps schedules to schedules
//!    with identical completion times. Round 0 is restricted to one
//!    lexicographic representative per orbit of the full automorphism
//!    group ([`sg_graphs::group::PermGroup`]); after fixing rounds
//!    `0..k`, round `k+1` is restricted to representatives under the
//!    **stabilizer of the prefix** (the subgroup mapping every fixed
//!    round to itself), computed incrementally as the search descends.
//!    Mechanically, groups up to [`SYMMETRY_ELEMENT_CAP`] materialize
//!    their element list once through the chain and thread a filtered
//!    index set down the recursion; larger groups act on candidate
//!    indices through a stabilizer chain rebuilt per fixed round, with
//!    orbit minima from a union-find closure over the stabilizer's
//!    strong generators — exact at *any* group order, where the retired
//!    engine fell back to a sound-but-weak generator subset.
//! 3. **Isomorph-rejection memo on canonical knowledge signatures.** The
//!    relaxation distance (how many all-arcs rounds a knowledge state
//!    needs to complete, or that it never can) depends only on the state
//!    — and is invariant under automorphisms. It is memoized per
//!    *canonical* state signature: the exact orbit minimum of the
//!    relabeled bitset image when the element list is materialized
//!    (early-abort lexicographic scan), or the
//!    individualization–refinement canonical form of the combined
//!    (adjacency, knowledge) relational structure
//!    ([`sg_graphs::refine`]) beyond the cap. Either way the signature
//!    is exactly canonical — the old `CANONICAL_PERM_CAP` identity
//!    fallback is gone.
//! 4. **Oracle floors and relaxation cuts.** The shared [`BoundOracle`]
//!    supplies the exact floor — a seed protocol meeting it settles the
//!    instance without search — and every prefix is cut when even the
//!    *relaxed* future (all arcs active every round, which dominates
//!    every valid round) cannot beat the bound. A knowledge fixed point
//!    across a full period proves a schedule never completes — which is
//!    what makes the infeasibility verdict exact rather than
//!    budget-relative.
//!
//! # Parallel execution, deterministic results
//!
//! Seeded instances (a refitted upper-bound construction completes at
//! some `U` rounds) run **one exhaustive pass with the fixed cap
//! `U − 1`**: every schedule that could beat the seed is either
//! enumerated or cut by a bound that depends only on the subtree, never
//! on discovery order. The pass fans out over a breadth-first frontier
//! of subtree tasks claimed from an atomic cursor by scoped workers
//! (the idiom of `sg-sim`'s work-stealing pool), each with private
//! scratch and a sharded single-flight memo; because pruning is a pure
//! function of the node, the set of visited nodes — hence every counter
//! — is identical at any thread count, and the witness is the
//! lexicographically least minimum-value completion regardless of which
//! worker found it. Unseeded instances (no valid completing seed
//! exists) run the sequential incumbent-tightening descent — already
//! deterministic — on one thread.
//!
//! The retired pre-refinement engine survives verbatim as
//! [`crate::reference::enumerate_serial`]: the differential oracle the
//! tests compare against, and the serial baseline of the enumeration
//! bench.

use crate::certificate::{certify_with, Certificate, Verdict};
use crate::seeds::{fit_to_period, seed_protocols};
use sg_bounds::pfun::Period;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::group::{invert, Perm, PermGroup, UnionFind};
use sg_graphs::refine::{canonical_form, distance_seed, Cells, Relations};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::Round;
use sg_sim::{CompiledSchedule, CompletionCursor, Knowledge};
use std::cmp::Ordering;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrd};
use std::sync::Mutex;
use systolic_gossip::{BoundOracle, Network};

/// Largest group for which symmetry breaking materializes the full
/// element list; bigger groups act on candidate indices through a
/// stabilizer chain (exact orbit minima, no pruning lost) and key the
/// memo on individualization–refinement canonical forms.
pub const SYMMETRY_ELEMENT_CAP: usize = 4096;

/// Frontier tasks carved per worker thread before the pass fans out —
/// enough slack that an early-finishing worker keeps claiming work.
const TASKS_PER_THREAD: usize = 16;

/// Knobs of one exact enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerateConfig {
    /// The exact systolic period to enumerate (`>= 2`).
    pub period: usize,
    /// Hard cap on candidate rounds per period slot; exceeding it means
    /// the instance is too large for exact enumeration and the run
    /// panics with a clear message instead of hanging.
    pub max_round_candidates: usize,
    /// Hard cap on visited search-tree nodes (same rationale).
    pub max_nodes: usize,
    /// Thread budget for the exhaustive pass: the calling thread plus
    /// `threads − 1` scoped workers. `0` and `1` both mean sequential.
    /// Results are bit-identical at any budget; only wall-clock varies.
    pub threads: usize,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        Self {
            period: 2,
            max_round_candidates: 20_000,
            max_nodes: 20_000_000,
            threads: 1,
        }
    }
}

impl EnumerateConfig {
    /// An exact enumeration at period `s`.
    pub fn exact_period(mut self, s: usize) -> Self {
        self.period = s;
        self
    }

    /// An exact enumeration on `t` threads.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }
}

/// What one exact enumeration established.
#[derive(Debug, Clone)]
pub struct EnumerateOutcome {
    /// A witness schedule achieving the optimum, when one exists.
    pub best: Option<SystolicProtocol>,
    /// The exact optimal gossip time over every valid period-`s`
    /// schedule, `None` when gossip is infeasible at this period.
    pub best_rounds: Option<usize>,
    /// The [`Verdict::ProvenOptimal`] certificate for the optimum.
    pub certificate: Option<Certificate>,
    /// `true` when *no* valid period-`s` schedule ever completes gossip
    /// — exact (every schedule either evaluated, dominated by an
    /// evaluated one, or cut by a sound relaxation), not budget-relative.
    pub proven_infeasible: bool,
    /// Complete schedules whose gossip time was settled (evaluated to
    /// completion, fixed point, or prefix completion).
    pub enumerated: usize,
    /// Subtrees cut by the relaxation bound.
    pub pruned: usize,
    /// Candidate maximal rounds per period slot.
    pub round_candidates: usize,
    /// Round-0 candidates surviving symmetry breaking.
    pub representatives: usize,
    /// Order of the automorphism group used for symmetry breaking,
    /// clamped to `usize` (see [`EnumerateOutcome::group_order`] for the
    /// exact value).
    pub automorphisms: usize,
    /// Exact order of the automorphism group (stabilizer chain product).
    pub group_order: u128,
    /// Depth of the group's stabilizer chain (base length).
    pub chain_depth: usize,
    /// Symmetry permutations materialized: the full element list up to
    /// [`SYMMETRY_ELEMENT_CAP`], or the stabilizer chain's generator
    /// count beyond it (the chain itself prunes exactly either way).
    pub symmetry_perms: usize,
    /// Candidates skipped at depths `≥ 1` because a prefix-stabilizer
    /// element maps them to a lexicographically smaller round — the
    /// pruning that plain round-0 symmetry breaking never had.
    pub stabilizer_pruned: usize,
    /// Subtrees cut by the relaxation bound, per period slot.
    pub pruned_per_level: Vec<usize>,
    /// Relaxation sweeps answered by the canonical-signature memo.
    pub memo_hits: usize,
    /// Distinct canonical knowledge signatures the memo holds.
    pub memo_entries: usize,
    /// `true` when the optimum meets the oracle floor — settled by a
    /// seed protocol without any search, or proved tight by the pass.
    pub met_floor: bool,
    /// Thread budget the enumeration ran with (results are identical at
    /// any budget; this records what was actually used).
    pub threads: usize,
}

/// Enumerates every *maximal* valid round of `g` under `mode`, in
/// canonical (lexicographic) order.
///
/// Directed / half-duplex rounds are maximal sets of pairwise
/// endpoint-disjoint arcs; full-duplex rounds are maximal sets of
/// vertex-disjoint opposite pairs (maximal matchings of the underlying
/// undirected graph, both arcs activated).
pub fn maximal_rounds(g: &Digraph, mode: Mode) -> Vec<Round> {
    let n = g.vertex_count();
    let mut out = Vec::new();
    match mode {
        Mode::Directed | Mode::HalfDuplex => {
            let arcs: Vec<Arc> = g.arcs().filter(|a| !a.is_loop()).collect();
            let mut used = vec![false; n];
            let mut picked = Vec::new();
            maximal_sets(&arcs, 0, &mut used, &mut picked, &mut |set| {
                out.push(Round::new(set.to_vec()));
            });
        }
        Mode::FullDuplex => {
            assert!(
                g.is_symmetric(),
                "full-duplex rounds need an undirected network"
            );
            let edges: Vec<Arc> = g.arcs().filter(|a| !a.is_loop() && a.from < a.to).collect();
            let mut used = vec![false; n];
            let mut picked = Vec::new();
            maximal_sets(&edges, 0, &mut used, &mut picked, &mut |set| {
                out.push(Round::full_duplex_from_edges(
                    set.iter().map(|a| (a.from as usize, a.to as usize)),
                ));
            });
        }
    }
    out.sort_by(|a, b| a.arcs().cmp(b.arcs()));
    out.dedup();
    out
}

/// Backtracks over `arcs[i..]`, emitting every endpoint-disjoint subset
/// that is maximal (no remaining arc can be added).
fn maximal_sets(
    arcs: &[Arc],
    i: usize,
    used: &mut Vec<bool>,
    picked: &mut Vec<Arc>,
    emit: &mut impl FnMut(&[Arc]),
) {
    if i == arcs.len() {
        // Maximal iff no arc has both endpoints free.
        if arcs
            .iter()
            .all(|a| used[a.from as usize] || used[a.to as usize])
        {
            emit(picked);
        }
        return;
    }
    let a = arcs[i];
    let (u, v) = (a.from as usize, a.to as usize);
    if !used[u] && !used[v] {
        used[u] = true;
        used[v] = true;
        picked.push(a);
        maximal_sets(arcs, i + 1, used, picked, emit);
        picked.pop();
        used[u] = false;
        used[v] = false;
    }
    maximal_sets(arcs, i + 1, used, picked, emit);
}

/// The all-arcs relaxation round: dominates every valid round of any
/// mode, which is what makes prefix cuts sound.
pub(crate) fn relaxation_round(g: &Digraph) -> Round {
    Round::new(g.arcs().filter(|a| !a.is_loop()).collect())
}

/// The action of one vertex permutation on the sorted candidate list:
/// `action[c]` is the index the automorphism maps candidate `c` to.
/// Candidates are lexicographically sorted, so index order *is* round
/// order and orbit minima are index minima.
pub(crate) fn candidate_action(p: &Perm, candidates: &[Round], name: &str) -> Vec<u32> {
    (0..candidates.len())
        .map(|i| {
            let mapped = sg_graphs::automorphism::map_arcs(p, candidates[i].arcs());
            candidates
                .binary_search_by(|r| r.arcs().cmp(mapped.as_slice()))
                .unwrap_or_else(|_| {
                    panic!("{name}: automorphism does not permute the maximal rounds")
                }) as u32
        })
        .collect()
}

// ---------------------------------------------------------------------
// Symmetry machinery: exact representatives at any group order.
// ---------------------------------------------------------------------

/// How symmetry breaking acts on the candidate list.
enum Symmetry {
    /// Full element list (`|G| ≤` [`SYMMETRY_ELEMENT_CAP`]): the action
    /// table `action[p][c]` and stabilizers as filtered index sets.
    Elements { action: Vec<Vec<u32>> },
    /// Stabilizer chain over the candidate-index domain: pointwise
    /// stabilizers rebuilt per fixed round, orbit minima from a
    /// union-find closure over the chain's strong generators.
    Chain { group: PermGroup },
}

/// The prefix stabilizer a node threads down the descent.
#[derive(Clone)]
enum Stab {
    /// Indices into the element list whose action fixes every round of
    /// the prefix (identity always among them).
    Elements(Vec<u32>),
    /// Pointwise stabilizer acting on candidate indices, plus the orbit
    /// minimum of every candidate under it.
    Chain {
        orbit_min: Vec<u32>,
        group: PermGroup,
    },
}

/// Orbit minima of the candidate indices under `group` (acting on the
/// candidate domain): union-find closure over the strong generators.
fn orbit_minima(group: &PermGroup) -> Vec<u32> {
    let m = group.n();
    let mut uf = UnionFind::new(m);
    for gen in group.generators() {
        uf.union_perm(gen);
    }
    let mut min = vec![u32::MAX; m];
    let mut root_min = vec![u32::MAX; m];
    for c in 0..m {
        let r = uf.find(c);
        root_min[r] = root_min[r].min(c as u32);
    }
    for (c, slot) in min.iter_mut().enumerate() {
        *slot = root_min[uf.find(c)];
    }
    min
}

impl Symmetry {
    /// The root stabilizer: the whole group.
    fn root(&self) -> Stab {
        match self {
            Symmetry::Elements { action } => Stab::Elements((0..action.len() as u32).collect()),
            Symmetry::Chain { group } => Stab::Chain {
                orbit_min: orbit_minima(group),
                group: group.clone(),
            },
        }
    }

    /// `true` when `stab` still contains a non-identity element — the
    /// only case the representative test can reject anything.
    fn nontrivial(&self, stab: &Stab) -> bool {
        match stab {
            Stab::Elements(idx) => idx.len() > 1,
            Stab::Chain { group, .. } => group.order() > 1,
        }
    }

    /// `true` when candidate `c` is the lexicographic minimum of its
    /// orbit under `stab`.
    fn is_representative(&self, stab: &Stab, c: usize) -> bool {
        match (self, stab) {
            (Symmetry::Elements { action }, Stab::Elements(idx)) => {
                idx.iter().all(|&p| action[p as usize][c] as usize >= c)
            }
            (_, Stab::Chain { orbit_min, .. }) => orbit_min[c] as usize == c,
            _ => unreachable!("stabilizer kind matches symmetry kind"),
        }
    }

    /// The stabilizer of the prefix extended by fixed round `c`.
    fn child(&self, stab: &Stab, c: usize) -> Stab {
        match (self, stab) {
            (Symmetry::Elements { action }, Stab::Elements(idx)) => Stab::Elements(
                idx.iter()
                    .copied()
                    .filter(|&p| action[p as usize][c] as usize == c)
                    .collect(),
            ),
            (_, Stab::Chain { group, .. }) => {
                let sub = group.pointwise_stabilizer(&[c]);
                Stab::Chain {
                    orbit_min: orbit_minima(&sub),
                    group: sub,
                }
            }
            _ => unreachable!("stabilizer kind matches symmetry kind"),
        }
    }
}

// ---------------------------------------------------------------------
// Canonical state signatures: exact orbit keys at any group order.
// ---------------------------------------------------------------------

/// Shared (immutable) data the per-worker signature engines build on.
enum SigMode {
    /// Exact orbit minimum over the full element list, found by an
    /// early-abort lexicographic scan (most permutations lose within
    /// the first row).
    Perms { perms: Vec<Perm>, inv: Vec<Perm> },
    /// Individualization–refinement canonical form of the combined
    /// (adjacency, knowledge) relational structure — exact for groups
    /// too large to materialize. An isomorphism of the combined
    /// structure maps the adjacency relation to itself, so two states
    /// share a form iff some automorphism of the graph maps one
    /// knowledge matrix to the other.
    Canonical { graph: Relations, seed: Cells },
}

/// Worker-private signature scratch over a shared [`SigMode`].
struct SigEngine<'a> {
    mode: &'a SigMode,
    best: Vec<u64>,
    row: Vec<u64>,
    /// Lazily built local copy of the graph relations with the
    /// knowledge slot appended (canonical mode only).
    combined: Option<Relations>,
    flat: Vec<u64>,
}

impl<'a> SigEngine<'a> {
    fn new(mode: &'a SigMode) -> Self {
        Self {
            mode,
            best: Vec::new(),
            row: Vec::new(),
            combined: None,
            flat: Vec::new(),
        }
    }

    /// The canonical signature of a knowledge state: equal exactly when
    /// some automorphism maps one state to the other.
    fn signature(&mut self, state: &Knowledge, n: usize) -> Vec<u64> {
        let mode = self.mode;
        match mode {
            SigMode::Perms { perms, inv } => self.exact_orbit_min(perms, inv, state, n),
            SigMode::Canonical { graph, seed } => {
                let words = graph.words();
                let combined = self.combined.get_or_insert_with(|| {
                    let mut r = graph.clone();
                    r.push_rows(vec![0u64; n * words]);
                    r
                });
                self.flat.clear();
                for v in 0..n {
                    self.flat.extend_from_slice(state.row(v));
                }
                combined.set_rows(1, &self.flat);
                canonical_form(combined, seed).form
            }
        }
    }

    /// Minimum over the element list of the relabeled bitset image,
    /// with both processors and items relabeled. Rows are compared in
    /// target order as they are built, so a permutation is abandoned at
    /// the first row that exceeds the best image so far; once a
    /// permutation is strictly ahead, its remaining rows are copied
    /// without comparing.
    fn exact_orbit_min(
        &mut self,
        perms: &[Perm],
        inv: &[Perm],
        state: &Knowledge,
        n: usize,
    ) -> Vec<u64> {
        let words = state.words();
        self.best.clear();
        for v in 0..n {
            // Identity image first: `perms[0]` is sorted-first, i.e. id.
            self.best.extend_from_slice(state.row(v));
        }
        for (p, pinv) in perms.iter().zip(inv).skip(1) {
            let mut winning = false;
            for (i, &src) in pinv.iter().enumerate().take(n) {
                let v = src as usize;
                self.row.clear();
                self.row.resize(words, 0);
                for (w, &bits) in state.row(v).iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let item = p[w * 64 + b] as usize;
                        self.row[item / 64] |= 1u64 << (item % 64);
                    }
                }
                let dst = &mut self.best[i * words..(i + 1) * words];
                if winning {
                    dst.copy_from_slice(&self.row);
                    continue;
                }
                match self.row[..].cmp(dst) {
                    Ordering::Less => {
                        winning = true;
                        dst.copy_from_slice(&self.row);
                    }
                    Ordering::Greater => break,
                    Ordering::Equal => {}
                }
            }
        }
        self.best.clone()
    }
}

// ---------------------------------------------------------------------
// Sharded single-flight memo for relaxation distances.
// ---------------------------------------------------------------------

const MEMO_SHARDS: usize = 16;

/// Encoded relaxation distance in an atomic slot: `0` = pending,
/// `1` = never completes, `d + 2` = completes in `d` rounds.
type MemoSlot = std::sync::Arc<AtomicU64>;

/// Canonical signature → relaxation distance, sharded by signature hash
/// with single-flight computation: the first thread to miss claims the
/// slot and computes outside the shard lock; concurrent lookups of the
/// same signature spin on the slot instead of recomputing. The set of
/// signatures ever queried is a pure function of the visited node set,
/// so hit/entry counts are thread-count-independent.
pub(crate) struct SharedMemo {
    shards: Vec<Mutex<HashMap<Vec<u64>, MemoSlot>>>,
}

impl SharedMemo {
    pub(crate) fn new() -> Self {
        Self {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(sig: &[u64]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in sig {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h >> 32) as usize % MEMO_SHARDS
    }

    /// Looks `sig` up, computing (and publishing) with `compute` on a
    /// miss. Exactly one thread computes any given signature.
    fn distance(&self, sig: Vec<u64>, compute: impl FnOnce() -> Option<u32>) -> Option<u32> {
        let shard = &self.shards[Self::shard_of(&sig)];
        let (slot, owner) = {
            let mut map = shard.lock().expect("memo shard poisoned");
            match map.entry(sig) {
                std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let slot = MemoSlot::new(AtomicU64::new(0));
                    e.insert(slot.clone());
                    (slot, true)
                }
            }
        };
        let encoded = if owner {
            let encoded = match compute() {
                None => 1,
                Some(d) => u64::from(d) + 2,
            };
            slot.store(encoded, AtomicOrd::Release);
            encoded
        } else {
            let mut spins = 0u32;
            loop {
                let v = slot.load(AtomicOrd::Acquire);
                if v != 0 {
                    break v;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        };
        match encoded {
            1 => None,
            d => Some((d - 2) as u32),
        }
    }

    /// Distinct signatures held (call after all workers joined).
    fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }
}

/// Exact number of all-arcs relaxation rounds `state` needs to reach
/// completion (`None` when it never completes — then nothing below any
/// prefix reaching this state ever gossips).
fn relax_probe(relaxed: &mut CompiledSchedule, state: &Knowledge) -> Option<u32> {
    let mut k = state.clone();
    let mut cursor = CompletionCursor::new();
    let mut dist = 0u32;
    loop {
        if cursor.complete(&k) {
            break Some(dist);
        }
        if !relaxed.apply(&mut k, 0) {
            break None; // fixed point below completion
        }
        dist += 1;
    }
}

// ---------------------------------------------------------------------
// The exhaustive pass: fixed cap, frontier fan-out, deterministic merge.
// ---------------------------------------------------------------------

/// Immutable data one exhaustive pass shares across workers.
struct PassShared<'a> {
    compiled: &'a [CompiledSchedule],
    relaxed: &'a CompiledSchedule,
    sym: &'a Symmetry,
    sig_mode: &'a SigMode,
    memo: &'a SharedMemo,
    nodes: &'a AtomicUsize,
    slots: usize,
    n: usize,
    /// Completions are only worth recording at or under this bound, and
    /// subtrees that cannot reach it are cut.
    cap: usize,
    max_nodes: usize,
}

/// One frontier task: an unexplored subtree rooted at `prefix`.
struct PassTask {
    prefix: Vec<usize>,
    state: Knowledge,
    stab: Stab,
}

/// Worker-private mutable resources (compiled schedules carry scratch
/// buffers, so each worker clones its own set).
struct Ctx<'a> {
    shared: &'a PassShared<'a>,
    compiled: Vec<CompiledSchedule>,
    relaxed: CompiledSchedule,
    sig: SigEngine<'a>,
}

impl<'a> Ctx<'a> {
    fn new(shared: &'a PassShared<'a>) -> Self {
        Self {
            shared,
            compiled: shared.compiled.to_vec(),
            relaxed: shared.relaxed.clone(),
            sig: SigEngine::new(shared.sig_mode),
        }
    }

    /// Memoized relaxation distance of `state` (counts the lookup).
    fn relax(&mut self, state: &Knowledge, acc: &mut PassAcc) -> Option<usize> {
        acc.memo_lookups += 1;
        let sig = self.sig.signature(state, self.shared.n);
        let relaxed = &mut self.relaxed;
        self.shared
            .memo
            .distance(sig, || relax_probe(relaxed, state))
            .map(|d| d as usize)
    }

    /// Exact gossip time of the complete schedule `prefix`, continuing
    /// from `state` (the knowledge after its first period). `None` when
    /// the schedule never completes (periodic fixed point) or cannot
    /// make the cap.
    fn finish_schedule(&mut self, prefix: &[usize], state: &Knowledge) -> Option<usize> {
        let s = self.shared.slots;
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&k) {
            return Some(s);
        }
        let mut t = s;
        loop {
            let mut changed = false;
            for &idx in prefix.iter().take(s) {
                changed |= self.compiled[idx].apply(&mut k, 0);
                t += 1;
                if cursor.complete(&k) {
                    return Some(t);
                }
                if t >= self.shared.cap {
                    return None;
                }
            }
            if !changed {
                return None; // periodic fixed point: never completes
            }
        }
    }
}

/// Per-task (and per-worker) result accumulator. Counters add; the best
/// completion merges by `(value, prefix)` — minimum value first, then
/// the lexicographically least choice sequence, which is exactly the
/// first completion a sequential depth-first scan would keep.
struct PassAcc {
    enumerated: usize,
    pruned: usize,
    pruned_per_level: Vec<usize>,
    stabilizer_pruned: usize,
    memo_lookups: usize,
    best: Option<(usize, Vec<usize>)>,
}

impl PassAcc {
    fn new(slots: usize) -> Self {
        Self {
            enumerated: 0,
            pruned: 0,
            pruned_per_level: vec![0; slots],
            stabilizer_pruned: 0,
            memo_lookups: 0,
            best: None,
        }
    }

    fn consider(&mut self, value: usize, prefix: &[usize]) {
        let better = match &self.best {
            None => true,
            Some((v, p)) => (value, prefix) < (*v, p.as_slice()),
        };
        if better {
            self.best = Some((value, prefix.to_vec()));
        }
    }

    fn merge(&mut self, other: PassAcc) {
        self.enumerated += other.enumerated;
        self.pruned += other.pruned;
        for (a, b) in self
            .pruned_per_level
            .iter_mut()
            .zip(&other.pruned_per_level)
        {
            *a += b;
        }
        self.stabilizer_pruned += other.stabilizer_pruned;
        self.memo_lookups += other.memo_lookups;
        if let Some((v, p)) = other.best {
            self.consider(v, &p);
        }
    }
}

/// Visits one node: applies each representative candidate, settles
/// first-period completions, cuts by the relaxation bound, evaluates
/// leaves, and either recurses into children (`spill` = `None`) or
/// enqueues them as frontier tasks. Counters are identical either way —
/// which is what makes the frontier split invisible in the outcome.
fn pass_node(
    ctx: &mut Ctx,
    prefix: &mut Vec<usize>,
    state: &Knowledge,
    stab: &Stab,
    acc: &mut PassAcc,
    spill: &mut Option<&mut VecDeque<PassTask>>,
) {
    let shared = ctx.shared;
    let visited = shared.nodes.fetch_add(1, AtomicOrd::Relaxed) + 1;
    assert!(
        visited <= shared.max_nodes,
        "exact enumeration exceeded {} nodes — instance too large",
        shared.max_nodes
    );
    let slot = prefix.len();
    let symmetric = shared.sym.nontrivial(stab);
    for idx in 0..ctx.compiled.len() {
        // Symmetry breaking at *every* depth: a candidate that some
        // prefix-stabilizing automorphism maps to a smaller round is
        // the mirror image of a branch this loop already explored.
        if symmetric && !shared.sym.is_representative(stab, idx) {
            if slot > 0 {
                acc.stabilizer_pruned += 1;
            }
            continue;
        }
        let mut next = state.clone();
        ctx.compiled[idx].apply(&mut next, 0);
        let t = slot + 1;
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&next) {
            // Completed inside the first period: every deeper choice
            // yields exactly this time — the subtree is settled.
            acc.enumerated += 1;
            if t <= shared.cap {
                prefix.push(idx);
                acc.consider(t, prefix);
                prefix.pop();
            }
            continue;
        }
        // Relaxation cut: even all-arcs rounds from here cannot make
        // the cap (or complete at all). The bound depends only on the
        // subtree, never on what other workers found — that purity is
        // the determinism argument.
        match ctx.relax(&next, acc) {
            None => {
                acc.pruned += 1;
                acc.pruned_per_level[slot] += 1;
                continue;
            }
            Some(d) if t + d > shared.cap => {
                acc.pruned += 1;
                acc.pruned_per_level[slot] += 1;
                continue;
            }
            Some(_) => {}
        }
        if slot + 1 == shared.slots {
            acc.enumerated += 1;
            prefix.push(idx);
            if let Some(found) = ctx.finish_schedule(prefix, &next) {
                acc.consider(found, prefix);
            }
            prefix.pop();
        } else {
            let child = shared.sym.child(stab, idx);
            match spill {
                Some(queue) => {
                    let mut p = prefix.clone();
                    p.push(idx);
                    queue.push_back(PassTask {
                        prefix: p,
                        state: next,
                        stab: child,
                    });
                }
                None => {
                    prefix.push(idx);
                    pass_node(ctx, prefix, &next, &child, acc, spill);
                    prefix.pop();
                }
            }
        }
    }
}

/// Runs one exhaustive pass under `shared.cap` with `threads` workers:
/// carves a breadth-first frontier, then claims tasks from an atomic
/// cursor until drained. The visited node set is a pure function of the
/// instance and cap, so the merged counters and the `(value, prefix)`-
/// minimal completion are identical at any thread count.
fn run_pass(shared: &PassShared, root_stab: Stab, threads: usize) -> PassAcc {
    let mut acc = PassAcc::new(shared.slots);
    let root = PassTask {
        prefix: Vec::new(),
        state: Knowledge::initial(shared.n),
        stab: root_stab,
    };
    if threads <= 1 {
        let mut ctx = Ctx::new(shared);
        let mut prefix = root.prefix;
        pass_node(
            &mut ctx,
            &mut prefix,
            &root.state,
            &root.stab,
            &mut acc,
            &mut None,
        );
        return acc;
    }

    // Carve the frontier: expand shallow tasks breadth-first until
    // there is enough slack for every worker. Expansion runs the exact
    // per-child logic of the descent, so the split never shows up in
    // the counters.
    let target = threads * TASKS_PER_THREAD;
    let mut queue = VecDeque::new();
    let mut ready: Vec<PassTask> = Vec::new();
    queue.push_back(root);
    {
        let mut ctx = Ctx::new(shared);
        while ready.len() + queue.len() < target {
            let Some(task) = queue.pop_front() else { break };
            if task.prefix.len() + 1 >= shared.slots {
                // Leaf-level subtree: cheaper to run than to split.
                ready.push(task);
                continue;
            }
            let mut prefix = task.prefix;
            let mut spill = Some(&mut queue);
            pass_node(
                &mut ctx,
                &mut prefix,
                &task.state,
                &task.stab,
                &mut acc,
                &mut spill,
            );
        }
    }
    ready.extend(queue);

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<PassAcc>> = Mutex::new(Vec::new());
    let tasks = &ready;
    let workers = threads.min(tasks.len().max(1));
    std::thread::scope(|scope| {
        let work = || {
            let mut ctx = Ctx::new(shared);
            let mut local = PassAcc::new(shared.slots);
            loop {
                let i = cursor.fetch_add(1, AtomicOrd::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let mut prefix = task.prefix.clone();
                pass_node(
                    &mut ctx,
                    &mut prefix,
                    &task.state,
                    &task.stab,
                    &mut local,
                    &mut None,
                );
            }
            results.lock().expect("pass results poisoned").push(local);
        };
        for _ in 1..workers {
            scope.spawn(work);
        }
        work(); // the calling thread claims tasks too
    });
    for local in results.into_inner().expect("pass results poisoned") {
        acc.merge(local);
    }
    acc
}

// ---------------------------------------------------------------------
// Sequential incumbent descent for unseeded instances.
// ---------------------------------------------------------------------

/// The incumbent-tightening depth-first descent, used when no seed
/// protocol completes (then no sound fixed cap exists up front, and the
/// feasibility question itself is open). Sequential and deterministic;
/// the thread budget is ignored on this path.
struct IncumbentDfs<'a> {
    ctx: Ctx<'a>,
    floor: usize,
    chosen: Vec<usize>,
    incumbent: Option<(usize, Vec<usize>)>,
    acc: PassAcc,
    met_floor: bool,
}

impl IncumbentDfs<'_> {
    fn descend(&mut self, state: &Knowledge, slot: usize, stab: &Stab) {
        if self.met_floor {
            return;
        }
        let shared = self.ctx.shared;
        let visited = shared.nodes.fetch_add(1, AtomicOrd::Relaxed) + 1;
        assert!(
            visited <= shared.max_nodes,
            "exact enumeration exceeded {} nodes — instance too large",
            shared.max_nodes
        );
        let symmetric = shared.sym.nontrivial(stab);
        for idx in 0..self.ctx.compiled.len() {
            if self.met_floor {
                return;
            }
            if symmetric && !shared.sym.is_representative(stab, idx) {
                if slot > 0 {
                    self.acc.stabilizer_pruned += 1;
                }
                continue;
            }
            let mut next = state.clone();
            self.ctx.compiled[idx].apply(&mut next, 0);
            self.chosen[slot] = idx;
            let t = slot + 1;
            let mut cursor = CompletionCursor::new();
            if cursor.complete(&next) {
                self.acc.enumerated += 1;
                self.record(t, slot);
                continue;
            }
            let cap = self
                .incumbent
                .as_ref()
                .map_or(usize::MAX - 1, |(best, _)| best.saturating_sub(1));
            match self.ctx.relax(&next, &mut self.acc) {
                None => {
                    self.acc.pruned += 1;
                    self.acc.pruned_per_level[slot] += 1;
                    continue;
                }
                Some(d) if t + d > cap => {
                    self.acc.pruned += 1;
                    self.acc.pruned_per_level[slot] += 1;
                    continue;
                }
                Some(_) => {}
            }
            if slot + 1 == shared.slots {
                self.acc.enumerated += 1;
                if let Some(found) = self.finish_capped(&next, cap) {
                    self.record(found, slot);
                }
            } else {
                let child = shared.sym.child(stab, idx);
                self.descend(&next, slot + 1, &child);
            }
        }
    }

    /// [`Ctx::finish_schedule`] against the *current* incumbent horizon
    /// rather than the pass cap.
    fn finish_capped(&mut self, state: &Knowledge, cap: usize) -> Option<usize> {
        let s = self.ctx.shared.slots;
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&k) {
            return Some(s);
        }
        let mut t = s;
        loop {
            let mut changed = false;
            for slot in 0..s {
                let idx = self.chosen[slot];
                changed |= self.ctx.compiled[idx].apply(&mut k, 0);
                t += 1;
                if cursor.complete(&k) {
                    return Some(t);
                }
                if t > cap {
                    return None;
                }
            }
            if !changed {
                return None;
            }
        }
    }

    /// Installs a completing schedule as the incumbent when it improves,
    /// filling period slots below `filled` arbitrarily (completion
    /// happened before they matter).
    fn record(&mut self, found: usize, filled: usize) {
        let better = self
            .incumbent
            .as_ref()
            .is_none_or(|(best, _)| found < *best);
        if better {
            let mut rounds = self.chosen.clone();
            for r in rounds.iter_mut().skip(filled + 1) {
                *r = self.chosen[filled]; // any valid round works
            }
            self.incumbent = Some((found, rounds));
            if found <= self.floor {
                self.met_floor = true;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

/// Runs the exact enumeration for `net` in `mode`, building the graph
/// and a throwaway oracle on the spot. See [`enumerate_with_oracle`] for
/// the batch entry point.
pub fn enumerate(net: &Network, mode: Mode, cfg: &EnumerateConfig) -> EnumerateOutcome {
    let g = net.build();
    let diameter = sg_graphs::traversal::diameter(&g);
    enumerate_with_oracle(&BoundOracle::new(), net, &g, diameter, mode, cfg)
}

/// [`enumerate_with_group`] with the automorphism group computed on the
/// spot. The batch runner passes its cached group instead.
pub fn enumerate_with_oracle(
    oracle: &BoundOracle,
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    cfg: &EnumerateConfig,
) -> EnumerateOutcome {
    let group = sg_graphs::group::automorphism_group(g);
    enumerate_with_group(oracle, net, g, diameter, mode, &group, cfg)
}

/// Evaluates every seed protocol refitted to period `s`, returning the
/// fastest completing one (the upper bound `U` the pass runs under).
/// Seeds are upper bounds on the optimum by dominance — every schedule
/// is dominated by a maximal-rounds one — so they are sound bounds even
/// though their own rounds need not be maximal.
pub(crate) fn best_seed(
    net: &Network,
    g: &Digraph,
    mode: Mode,
    s: usize,
) -> Option<(usize, SystolicProtocol)> {
    let n = g.vertex_count();
    let mut seed_best: Option<(usize, SystolicProtocol)> = None;
    for sp in seed_protocols(net, g, mode) {
        let cand = fit_to_period(&sp, s, mode);
        if cand.validate(g).is_err() {
            continue;
        }
        let proto = cand.to_protocol();
        let mut sched = CompiledSchedule::compile(proto.period(), n);
        let mut k = Knowledge::initial(n);
        let mut cursor = CompletionCursor::new();
        let mut found = cursor.complete(&k).then_some(0);
        if found.is_none() {
            let mut t = 0usize;
            'seed: loop {
                let mut changed = false;
                for i in 0..s {
                    changed |= sched.apply(&mut k, t + i);
                    if cursor.complete(&k) {
                        found = Some(t + i + 1);
                        break 'seed;
                    }
                }
                t += s;
                if !changed {
                    break;
                }
            }
        }
        if let Some(t) = found {
            if seed_best.as_ref().is_none_or(|(b, _)| t < *b) {
                seed_best = Some((t, proto));
            }
        }
    }
    seed_best
}

/// The exact branch-and-bound against a shared memoizing [`BoundOracle`]
/// and a precomputed automorphism group (stabilizer chain).
/// Deterministic at any thread budget: identical inputs give identical
/// outcomes, including the witness schedule and every counter.
pub fn enumerate_with_group(
    oracle: &BoundOracle,
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    group: &PermGroup,
    cfg: &EnumerateConfig,
) -> EnumerateOutcome {
    assert!(cfg.period >= 2, "enumeration needs a period of at least 2");
    let n = g.vertex_count();
    let s = cfg.period;
    let threads = cfg.threads.max(1);
    let ob = oracle.bounds_on(net, g, diameter, mode, Period::Systolic(s));
    let floor = ob.floor_rounds;

    let candidates = maximal_rounds(g, mode);
    assert!(
        !candidates.is_empty(),
        "{}: no valid non-empty round exists",
        net.name()
    );
    assert!(
        candidates.len() <= cfg.max_round_candidates,
        "{}: {} candidate rounds exceed the exact-enumeration cap {}",
        net.name(),
        candidates.len(),
        cfg.max_round_candidates
    );

    // Symmetry + signature machinery: element lists up to the cap,
    // stabilizer chains and canonical forms beyond it — exact orbit
    // reasoning either way.
    let name = net.name();
    let (sym, sig_mode, symmetry_perms) = match group.elements_capped(SYMMETRY_ELEMENT_CAP) {
        Some(perms) => {
            let action: Vec<Vec<u32>> = perms
                .iter()
                .map(|p| candidate_action(p, &candidates, &name))
                .collect();
            let inv: Vec<Perm> = perms.iter().map(|p| invert(p)).collect();
            let count = perms.len();
            (
                Symmetry::Elements { action },
                SigMode::Perms { perms, inv },
                count,
            )
        }
        None => {
            let gen_action: Vec<Perm> = group
                .generators()
                .iter()
                .map(|p| candidate_action(p, &candidates, &name))
                .collect();
            let count = gen_action.len();
            let action_group = PermGroup::from_generators(candidates.len(), gen_action);
            (
                Symmetry::Chain {
                    group: action_group,
                },
                SigMode::Canonical {
                    graph: Relations::from_digraph(g),
                    seed: distance_seed(g),
                },
                count,
            )
        }
    };
    let root_stab = sym.root();
    let representatives = (0..candidates.len())
        .filter(|&i| !sym.nontrivial(&root_stab) || sym.is_representative(&root_stab, i))
        .count();

    let compiled: Vec<CompiledSchedule> = candidates
        .iter()
        .map(|r| CompiledSchedule::compile(std::slice::from_ref(r), n))
        .collect();
    let relaxed = CompiledSchedule::compile(std::slice::from_ref(&relaxation_round(g)), n);
    let memo = SharedMemo::new();
    let nodes = AtomicUsize::new(0);

    let seed_best = best_seed(net, g, mode, s);

    let mut acc = PassAcc::new(s);
    let mut met_floor = false;
    let mut improved_over_seed = false;
    // (optimum, chosen candidate indices) — the indices empty when the
    // seed protocol itself is the witness.
    let settled: Option<(usize, Vec<usize>)>;

    match &seed_best {
        Some((u, _)) if *u <= floor => {
            // The seed meets the oracle floor: settled without search.
            met_floor = true;
            settled = Some((*u, Vec::new()));
        }
        Some((u, _)) => {
            // One exhaustive pass under the fixed cap U − 1: everything
            // that could beat the seed is enumerated or soundly cut.
            let shared = PassShared {
                compiled: &compiled,
                relaxed: &relaxed,
                sym: &sym,
                sig_mode: &sig_mode,
                memo: &memo,
                nodes: &nodes,
                slots: s,
                n,
                cap: *u - 1,
                max_nodes: cfg.max_nodes,
            };
            acc = run_pass(&shared, root_stab, threads);
            match acc.best.take() {
                Some((t, mut prefix)) => {
                    let last = *prefix.last().expect("completion fixes a round");
                    prefix.resize(s, last); // any valid round works
                    improved_over_seed = true;
                    met_floor = t <= floor;
                    settled = Some((t, prefix));
                }
                None => {
                    // Every faster schedule refuted: the seed is optimal.
                    settled = Some((*u, Vec::new()));
                }
            }
        }
        None => {
            // No completing seed: feasibility itself is open, so run the
            // sequential incumbent-tightening descent.
            let shared = PassShared {
                compiled: &compiled,
                relaxed: &relaxed,
                sym: &sym,
                sig_mode: &sig_mode,
                memo: &memo,
                nodes: &nodes,
                slots: s,
                n,
                cap: usize::MAX - 1,
                max_nodes: cfg.max_nodes,
            };
            let mut dfs = IncumbentDfs {
                ctx: Ctx::new(&shared),
                floor,
                chosen: vec![0; s],
                incumbent: None,
                acc: PassAcc::new(s),
                met_floor: false,
            };
            dfs.descend(&Knowledge::initial(n), 0, &root_stab);
            met_floor = dfs.met_floor;
            improved_over_seed = dfs.incumbent.is_some();
            settled = dfs.incumbent.take();
            acc = dfs.acc;
        }
    }

    let (best_rounds, best) = match settled {
        Some((t, chosen)) => {
            let proto = if improved_over_seed || seed_best.is_none() {
                SystolicProtocol::new(
                    chosen.iter().map(|&i| candidates[i].clone()).collect(),
                    mode,
                )
            } else {
                seed_best
                    .as_ref()
                    .map(|(_, p)| p.clone())
                    .expect("seed witness")
            };
            (Some(t), Some(proto))
        }
        None => (None, None),
    };

    let certificate = best_rounds.map(|t| {
        let mut cert = certify_with(oracle, net, g, diameter, mode, s, t, best.as_ref());
        cert.verdict = Verdict::ProvenOptimal {
            enumerated: acc.enumerated,
        };
        cert
    });

    let memo_entries = memo.entries();
    EnumerateOutcome {
        best,
        best_rounds,
        certificate,
        proven_infeasible: best_rounds.is_none(),
        enumerated: acc.enumerated,
        pruned: acc.pruned,
        round_candidates: candidates.len(),
        representatives,
        automorphisms: usize::try_from(group.order()).unwrap_or(usize::MAX),
        group_order: group.order(),
        chain_depth: group.chain_depth(),
        symmetry_perms,
        stabilizer_pruned: acc.stabilizer_pruned,
        pruned_per_level: acc.pruned_per_level,
        memo_hits: acc.memo_lookups - memo_entries,
        memo_entries,
        met_floor,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_rounds_are_valid_maximal_and_canonical() {
        let g = Network::Cycle { n: 6 }.build();
        for mode in [Mode::HalfDuplex, Mode::FullDuplex, Mode::Directed] {
            let rounds = maximal_rounds(&g, mode);
            assert!(!rounds.is_empty(), "{mode}");
            for (i, r) in rounds.iter().enumerate() {
                r.validate(&g, mode, i).expect("valid round");
                // Maximality: no arc of g extends the round.
                let extendable = g.arcs().any(|a| {
                    !a.is_loop()
                        && r.arcs().iter().all(|b| {
                            a.from != b.from && a.from != b.to && a.to != b.from && a.to != b.to
                        })
                });
                assert!(!extendable, "{mode}: round {i} is not maximal");
                if i > 0 {
                    assert!(rounds[i - 1].arcs() < r.arcs(), "canonical order");
                }
            }
        }
    }

    #[test]
    fn full_duplex_candidate_counts_match_matching_theory() {
        // Maximal matchings of C_8: the two perfect matchings plus the
        // eight maximal 3-matchings.
        let g = Network::Cycle { n: 8 }.build();
        assert_eq!(maximal_rounds(&g, Mode::FullDuplex).len(), 10);
    }

    #[test]
    fn path_full_duplex_meets_the_diameter_floor() {
        // P_6 at s = 2: the alternating pairing gossips in n − 1 rounds,
        // which is the diameter floor — the enumerator must prove it and
        // stop at the floor.
        let out = enumerate(
            &Network::Path { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        assert_eq!(out.best_rounds, Some(5));
        assert!(out.met_floor);
        let cert = out.certificate.expect("certificate");
        assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
        assert!(cert.verdict.is_settled());
        out.best
            .expect("witness")
            .validate(&Network::Path { n: 6 }.build())
            .expect("valid witness");
    }

    #[test]
    fn cycle6_full_duplex_s2_exact_optimum() {
        // C_6, s = 2, full-duplex: diameter floor 3; period-2 schedules
        // alternate two maximal matchings. The enumerator settles the
        // true optimum exactly, and it is reproducible.
        let out = enumerate(
            &Network::Cycle { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        let t = out.best_rounds.expect("C_6 gossips at s = 2");
        assert!(t >= 3, "floor");
        let again = enumerate(
            &Network::Cycle { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        assert_eq!(again.best_rounds, Some(t), "deterministic");
        assert_eq!(again.enumerated, out.enumerated);
        // The witness actually achieves the proven time.
        let sp = out.best.expect("witness");
        let measured =
            sg_sim::engine::systolic_gossip_time(&sp, 6, 1000).expect("witness completes");
        assert_eq!(measured, t);
    }

    #[test]
    fn round_zero_representatives_are_orbit_minima() {
        use sg_graphs::automorphism::{automorphisms, is_orbit_representative};
        let g = Network::Cycle { n: 8 }.build();
        let candidates = maximal_rounds(&g, Mode::FullDuplex);
        let autos = automorphisms(&g);
        let reps = candidates
            .iter()
            .filter(|r| is_orbit_representative(&autos, r.arcs()))
            .count();
        // C_8's 10 maximal matchings fall into 2 orbits (perfect /
        // size-3) under the dihedral group; the outcome must agree.
        assert_eq!(reps, 2);
        let out = enumerate(
            &Network::Cycle { n: 8 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(3),
        );
        assert_eq!(out.representatives, 2);
        assert_eq!(out.group_order, 16);
        assert!(out.chain_depth >= 2, "dihedral chain has depth ≥ 2");
    }

    #[test]
    fn deeper_slots_get_stabilizer_pruning_and_memo_hits() {
        // C_8 at s = 3: round 1 candidates are pruned under the
        // stabilizer of round 0 (the perfect matchings have nontrivial
        // pointwise-prefix stabilizers), which plain round-0 breaking
        // never did.
        let out = enumerate(
            &Network::Cycle { n: 8 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(3),
        );
        assert!(
            out.stabilizer_pruned > 0,
            "prefix stabilizers must prune deeper slots: {out:?}"
        );
        assert_eq!(out.pruned_per_level.len(), 3);
        assert_eq!(out.pruned_per_level.iter().sum::<usize>(), out.pruned);
        assert_eq!(out.best_rounds, Some(5), "the settled optimum is intact");
    }

    #[test]
    fn complete_graph_uses_the_stabilizer_chain_regime() {
        // K_8: |Aut| = 8! = 40320 > SYMMETRY_ELEMENT_CAP, so symmetry
        // breaking runs through the chain on candidate indices and the
        // memo keys on IR canonical forms. The 105 maximal matchings of
        // K_8 are all perfect (any smaller matching extends inside a
        // complete graph) and form a single orbit — one representative.
        let out = enumerate(
            &Network::Complete { n: 8 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        assert_eq!(out.round_candidates, 105);
        assert_eq!(out.group_order, 40_320);
        assert_eq!(out.representatives, 1, "perfect matchings are one orbit");
        assert!(
            out.symmetry_perms < 105,
            "chain regime materializes generators, not 40320 elements"
        );
        let t = out.best_rounds.expect("K_8 gossips at s = 2");
        assert!(t >= 3, "doubling floor: ⌈log₂ 8⌉ rounds");
    }

    #[test]
    fn thread_budget_never_changes_the_outcome() {
        let run = |threads| {
            enumerate(
                &Network::Cycle { n: 8 },
                Mode::FullDuplex,
                &EnumerateConfig::default().exact_period(3).threads(threads),
            )
        };
        let base = run(1);
        for threads in [2, 8] {
            let out = run(threads);
            assert_eq!(out.threads, threads);
            assert_eq!(out.best_rounds, base.best_rounds, "{threads} threads");
            assert_eq!(out.enumerated, base.enumerated, "{threads} threads");
            assert_eq!(out.pruned, base.pruned, "{threads} threads");
            assert_eq!(out.pruned_per_level, base.pruned_per_level);
            assert_eq!(out.stabilizer_pruned, base.stabilizer_pruned);
            assert_eq!(out.memo_entries, base.memo_entries);
            assert_eq!(out.memo_hits, base.memo_hits);
            assert_eq!(
                out.best.as_ref().map(|p| p.period().to_vec()),
                base.best.as_ref().map(|p| p.period().to_vec()),
                "witness identical at {threads} threads"
            );
        }
    }
}
