//! Exact optima by oracle-pruned exhaustive enumeration.
//!
//! Where the annealing driver *finds* good period-`s` schedules, this
//! module *proves* what the best one is: a deterministic branch-and-bound
//! over every valid period-`s` round schedule of a `(network, mode)`
//! pair, returning either the exact optimum with a
//! [`Verdict::ProvenOptimal`] certificate or an exact infeasibility
//! statement. This is what turns a reported `Gap(δ)` into a settled
//! theorem — the "rigorous minimal time" program applied to the paper's
//! open small cases (`Q₃` at `s = 2` full-duplex, `C₈` full-duplex at
//! `s = 3`, the directed variants).
//!
//! Three exact reductions keep the space small; each is a theorem, not a
//! heuristic:
//!
//! 1. **Maximal rounds only.** Knowledge evolves monotonically — per
//!    round, every target unions a beginning-of-round source row into
//!    its own — so replacing any round by a superset round never delays
//!    completion (pointwise domination, by induction over rounds). Every
//!    schedule is dominated by one whose rounds are *maximal* valid
//!    rounds, so the enumeration ranges over those alone, for both the
//!    optimum and the infeasibility direction.
//! 2. **Automorphism symmetry breaking.** Relabeling all processors by a
//!    graph automorphism maps schedules to schedules with identical
//!    completion times, so round 0 is restricted to one lexicographic
//!    representative per orbit of the automorphism group
//!    (`sg_graphs::automorphism`) acting on candidate rounds.
//! 3. **Oracle floors and relaxation cuts.** The shared [`BoundOracle`]
//!    supplies the exact floor — an incumbent meeting it ends the whole
//!    search — and every prefix is cut when even the *relaxed* future
//!    (all arcs active every round, which dominates every valid round)
//!    cannot beat the incumbent. Complete schedules are evaluated
//!    through the compiled engine with the incumbent as horizon, and a
//!    knowledge fixed point across a full period proves a schedule never
//!    completes — which is what makes the infeasibility verdict exact
//!    rather than budget-relative.

use crate::certificate::{certify_with, Certificate, Verdict};
use crate::seeds::{fit_to_period, seed_protocols};
use sg_bounds::pfun::Period;
use sg_graphs::automorphism::{automorphisms, is_orbit_representative};
use sg_graphs::digraph::{Arc, Digraph};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::Round;
use sg_sim::{CompiledSchedule, CompletionCursor, Knowledge};
use systolic_gossip::{BoundOracle, Network};

/// Knobs of one exact enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerateConfig {
    /// The exact systolic period to enumerate (`>= 2`).
    pub period: usize,
    /// Hard cap on candidate rounds per period slot; exceeding it means
    /// the instance is too large for exact enumeration and the run
    /// panics with a clear message instead of hanging.
    pub max_round_candidates: usize,
    /// Hard cap on visited search-tree nodes (same rationale).
    pub max_nodes: usize,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        Self {
            period: 2,
            max_round_candidates: 20_000,
            max_nodes: 20_000_000,
        }
    }
}

impl EnumerateConfig {
    /// An exact enumeration at period `s`.
    pub fn exact_period(mut self, s: usize) -> Self {
        self.period = s;
        self
    }
}

/// What one exact enumeration established.
#[derive(Debug, Clone)]
pub struct EnumerateOutcome {
    /// A witness schedule achieving the optimum, when one exists.
    pub best: Option<SystolicProtocol>,
    /// The exact optimal gossip time over every valid period-`s`
    /// schedule, `None` when gossip is infeasible at this period.
    pub best_rounds: Option<usize>,
    /// The [`Verdict::ProvenOptimal`] certificate for the optimum.
    pub certificate: Option<Certificate>,
    /// `true` when *no* valid period-`s` schedule ever completes gossip
    /// — exact (every schedule either evaluated, dominated by an
    /// evaluated one, or cut by a sound relaxation), not budget-relative.
    pub proven_infeasible: bool,
    /// Complete schedules whose gossip time was settled (evaluated to
    /// completion, fixed point, or prefix completion).
    pub enumerated: usize,
    /// Subtrees cut by the relaxation bound.
    pub pruned: usize,
    /// Candidate maximal rounds per period slot.
    pub round_candidates: usize,
    /// Round-0 candidates surviving symmetry breaking.
    pub representatives: usize,
    /// Order of the automorphism group used for symmetry breaking.
    pub automorphisms: usize,
    /// `true` when the search ended early because the incumbent met the
    /// oracle floor (exhaustion unnecessary).
    pub met_floor: bool,
}

/// Enumerates every *maximal* valid round of `g` under `mode`, in
/// canonical (lexicographic) order.
///
/// Directed / half-duplex rounds are maximal sets of pairwise
/// endpoint-disjoint arcs; full-duplex rounds are maximal sets of
/// vertex-disjoint opposite pairs (maximal matchings of the underlying
/// undirected graph, both arcs activated).
pub fn maximal_rounds(g: &Digraph, mode: Mode) -> Vec<Round> {
    let n = g.vertex_count();
    let mut out = Vec::new();
    match mode {
        Mode::Directed | Mode::HalfDuplex => {
            let arcs: Vec<Arc> = g.arcs().filter(|a| !a.is_loop()).collect();
            let mut used = vec![false; n];
            let mut picked = Vec::new();
            maximal_sets(&arcs, 0, &mut used, &mut picked, &mut |set| {
                out.push(Round::new(set.to_vec()));
            });
        }
        Mode::FullDuplex => {
            assert!(
                g.is_symmetric(),
                "full-duplex rounds need an undirected network"
            );
            let edges: Vec<Arc> = g.arcs().filter(|a| !a.is_loop() && a.from < a.to).collect();
            let mut used = vec![false; n];
            let mut picked = Vec::new();
            maximal_sets(&edges, 0, &mut used, &mut picked, &mut |set| {
                out.push(Round::full_duplex_from_edges(
                    set.iter().map(|a| (a.from as usize, a.to as usize)),
                ));
            });
        }
    }
    out.sort_by(|a, b| a.arcs().cmp(b.arcs()));
    out.dedup();
    out
}

/// Backtracks over `arcs[i..]`, emitting every endpoint-disjoint subset
/// that is maximal (no remaining arc can be added).
fn maximal_sets(
    arcs: &[Arc],
    i: usize,
    used: &mut Vec<bool>,
    picked: &mut Vec<Arc>,
    emit: &mut impl FnMut(&[Arc]),
) {
    if i == arcs.len() {
        // Maximal iff no arc has both endpoints free.
        if arcs
            .iter()
            .all(|a| used[a.from as usize] || used[a.to as usize])
        {
            emit(picked);
        }
        return;
    }
    let a = arcs[i];
    let (u, v) = (a.from as usize, a.to as usize);
    if !used[u] && !used[v] {
        used[u] = true;
        used[v] = true;
        picked.push(a);
        maximal_sets(arcs, i + 1, used, picked, emit);
        picked.pop();
        used[u] = false;
        used[v] = false;
    }
    maximal_sets(arcs, i + 1, used, picked, emit);
}

/// The all-arcs relaxation round: dominates every valid round of any
/// mode, which is what makes prefix cuts sound.
fn relaxation_round(g: &Digraph) -> Round {
    Round::new(g.arcs().filter(|a| !a.is_loop()).collect())
}

struct Search {
    compiled: Vec<CompiledSchedule>,
    slots: usize,
    n: usize,
    relaxed: CompiledSchedule,
    floor: usize,
    max_nodes: usize,
    // Mutable search state.
    chosen: Vec<usize>,
    incumbent: Option<(usize, Vec<usize>)>,
    enumerated: usize,
    pruned: usize,
    nodes: usize,
    met_floor: bool,
}

impl Search {
    /// The cheapest completion any continuation could reach from `state`
    /// (already `t` rounds in): `t` + relaxed sweeps, or `None` when even
    /// the relaxation never completes (then nothing below this node ever
    /// gossips).
    fn optimistic_total(&mut self, state: &Knowledge, t: usize, cap: usize) -> Option<usize> {
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&k) {
            return Some(t);
        }
        for extra in 1..=cap.saturating_sub(t) {
            if !self.relaxed.apply(&mut k, 0) {
                return None; // fixed point below completion
            }
            if cursor.complete(&k) {
                return Some(t + extra);
            }
        }
        Some(cap + 1) // did not complete within the cap: at least this
    }

    /// Exact gossip time of the complete schedule `chosen`, continuing
    /// from `state` (the knowledge after its first period). Returns
    /// `None` when the schedule provably never completes (knowledge
    /// fixed point across a full period) or cannot beat `horizon`.
    fn finish_schedule(&mut self, state: &Knowledge, horizon: Option<usize>) -> Option<usize> {
        let s = self.slots;
        let mut k = state.clone();
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&k) {
            return Some(s);
        }
        let cap = horizon.unwrap_or(usize::MAX);
        let mut t = s;
        loop {
            let mut changed = false;
            for slot in 0..s {
                let idx = self.chosen[slot];
                changed |= self.compiled[idx].apply(&mut k, 0);
                t += 1;
                if cursor.complete(&k) {
                    return Some(t);
                }
                if t >= cap {
                    return None;
                }
            }
            if !changed {
                return None; // periodic fixed point: never completes
            }
        }
    }

    fn descend(&mut self, state: &Knowledge, slot: usize, first_slot_choices: &[usize]) {
        if self.met_floor {
            return;
        }
        self.nodes += 1;
        assert!(
            self.nodes <= self.max_nodes,
            "exact enumeration exceeded {} nodes — instance too large",
            self.max_nodes
        );
        // Allocation-free choice walk: slot 0 draws from the symmetry
        // representatives, every deeper slot from all candidates.
        let n_choices = if slot == 0 {
            first_slot_choices.len()
        } else {
            self.compiled.len()
        };
        for c in 0..n_choices {
            let idx = if slot == 0 { first_slot_choices[c] } else { c };
            if self.met_floor {
                return;
            }
            let mut next = state.clone();
            self.compiled[idx].apply(&mut next, 0);
            self.chosen[slot] = idx;
            let t = slot + 1;
            let mut cursor = CompletionCursor::new();
            if cursor.complete(&next) {
                // Completed inside the first period: every deeper choice
                // yields exactly this time — the subtree is settled.
                self.enumerated += 1;
                self.record(t, slot);
                continue;
            }
            // Relaxation cut: even all-arcs rounds from here cannot beat
            // the incumbent (or complete at all).
            let cap = self
                .incumbent
                .as_ref()
                .map_or(usize::MAX - 1, |(best, _)| best.saturating_sub(1));
            match self.optimistic_total(&next, t, cap.min(4 * self.n * self.slots + t)) {
                None => {
                    // Nothing below this prefix ever completes.
                    self.pruned += 1;
                    continue;
                }
                Some(opt) if opt > cap => {
                    self.pruned += 1;
                    continue;
                }
                Some(_) => {}
            }
            if slot + 1 == self.slots {
                self.enumerated += 1;
                let horizon = self.incumbent.as_ref().map(|(best, _)| best - 1);
                if let Some(found) = self.finish_schedule(&next, horizon) {
                    self.record(found, slot);
                }
            } else {
                self.descend(&next, slot + 1, first_slot_choices);
            }
        }
    }

    /// Installs a completing schedule as the incumbent when it improves,
    /// filling period slots below `filled` arbitrarily (completion
    /// happened before they matter).
    fn record(&mut self, found: usize, filled: usize) {
        let better = self
            .incumbent
            .as_ref()
            .is_none_or(|(best, _)| found < *best);
        if better {
            let mut rounds = self.chosen.clone();
            for r in rounds.iter_mut().skip(filled + 1) {
                *r = self.chosen[filled]; // any valid round works
            }
            self.incumbent = Some((found, rounds));
            if found <= self.floor {
                self.met_floor = true;
            }
        }
    }
}

/// Runs the exact enumeration for `net` in `mode`, building the graph
/// and a throwaway oracle on the spot. See [`enumerate_with_oracle`] for
/// the batch entry point.
pub fn enumerate(net: &Network, mode: Mode, cfg: &EnumerateConfig) -> EnumerateOutcome {
    let g = net.build();
    let diameter = sg_graphs::traversal::diameter(&g);
    enumerate_with_oracle(&BoundOracle::new(), net, &g, diameter, mode, cfg)
}

/// The exact branch-and-bound against a shared memoizing [`BoundOracle`].
/// Deterministic: identical inputs give identical outcomes, including
/// the witness schedule and every counter.
pub fn enumerate_with_oracle(
    oracle: &BoundOracle,
    net: &Network,
    g: &Digraph,
    diameter: Option<u32>,
    mode: Mode,
    cfg: &EnumerateConfig,
) -> EnumerateOutcome {
    assert!(cfg.period >= 2, "enumeration needs a period of at least 2");
    let n = g.vertex_count();
    let s = cfg.period;
    let ob = oracle.bounds_on(net, g, diameter, mode, Period::Systolic(s));
    let floor = ob.floor_rounds;

    let candidates = maximal_rounds(g, mode);
    assert!(
        !candidates.is_empty(),
        "{}: no valid non-empty round exists",
        net.name()
    );
    assert!(
        candidates.len() <= cfg.max_round_candidates,
        "{}: {} candidate rounds exceed the exact-enumeration cap {}",
        net.name(),
        candidates.len(),
        cfg.max_round_candidates
    );
    let autos = automorphisms(g);
    let reps: Vec<usize> = (0..candidates.len())
        .filter(|&i| is_orbit_representative(&autos, candidates[i].arcs()))
        .collect();
    let compiled: Vec<CompiledSchedule> = candidates
        .iter()
        .map(|r| CompiledSchedule::compile(std::slice::from_ref(r), n))
        .collect();

    let mut search = Search {
        compiled,
        slots: s,
        n,
        relaxed: CompiledSchedule::compile(std::slice::from_ref(&relaxation_round(g)), n),
        floor,
        max_nodes: cfg.max_nodes,
        chosen: vec![0; s],
        incumbent: None,
        enumerated: 0,
        pruned: 0,
        nodes: 0,
        met_floor: false,
    };

    // Seed the incumbent from the repo's upper-bound constructions
    // refitted to the period — a completing start makes the horizon and
    // relaxation cuts effective from the first node. Seeds are upper
    // bounds on the optimum by dominance (every schedule is dominated by
    // a maximal-rounds one), so they are sound incumbents even though
    // their own rounds need not be maximal.
    let mut seed_best: Option<(usize, SystolicProtocol)> = None;
    for sp in seed_protocols(net, g, mode) {
        let cand = fit_to_period(&sp, s, mode);
        if cand.validate(g).is_err() {
            continue;
        }
        let proto = cand.to_protocol();
        let mut sched = CompiledSchedule::compile(proto.period(), n);
        let mut k = Knowledge::initial(n);
        let mut cursor = CompletionCursor::new();
        let mut found = cursor.complete(&k).then_some(0);
        if found.is_none() {
            let mut t = 0usize;
            'seed: loop {
                let mut changed = false;
                for i in 0..s {
                    changed |= sched.apply(&mut k, t + i);
                    if cursor.complete(&k) {
                        found = Some(t + i + 1);
                        break 'seed;
                    }
                }
                t += s;
                if !changed {
                    break;
                }
            }
        }
        if let Some(t) = found {
            if seed_best.as_ref().is_none_or(|(b, _)| t < *b) {
                seed_best = Some((t, proto));
            }
        }
    }
    if let Some((t, _)) = &seed_best {
        search.incumbent = Some((*t, vec![0; s])); // witness replaced below
        search.met_floor = *t <= floor;
    }

    let initial = Knowledge::initial(n);
    let mut improved_over_seed = false;
    if !search.met_floor {
        let before = search.incumbent.as_ref().map(|(b, _)| *b);
        search.descend(&initial, 0, &reps);
        improved_over_seed = match (before, &search.incumbent) {
            (Some(b), Some((now, _))) => now < &b,
            (None, Some(_)) => true,
            _ => false,
        };
    }

    let (best_rounds, best) = match (&search.incumbent, &seed_best) {
        (Some((t, chosen)), seed) => {
            let t = *t;
            // Prefer the enumerated witness when it improved (or no seed
            // exists); otherwise the seed protocol is the witness.
            let proto = if improved_over_seed || seed.is_none() {
                SystolicProtocol::new(
                    chosen.iter().map(|&i| candidates[i].clone()).collect(),
                    mode,
                )
            } else {
                seed.as_ref().map(|(_, p)| p.clone()).unwrap()
            };
            (Some(t), Some(proto))
        }
        (None, _) => (None, None),
    };

    let certificate = best_rounds.map(|t| {
        let mut cert = certify_with(oracle, net, g, diameter, mode, s, t, best.as_ref());
        cert.verdict = Verdict::ProvenOptimal {
            enumerated: search.enumerated,
        };
        cert
    });

    EnumerateOutcome {
        best,
        best_rounds,
        certificate,
        proven_infeasible: best_rounds.is_none(),
        enumerated: search.enumerated,
        pruned: search.pruned,
        round_candidates: candidates.len(),
        representatives: reps.len(),
        automorphisms: autos.len(),
        met_floor: search.met_floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_rounds_are_valid_maximal_and_canonical() {
        let g = Network::Cycle { n: 6 }.build();
        for mode in [Mode::HalfDuplex, Mode::FullDuplex, Mode::Directed] {
            let rounds = maximal_rounds(&g, mode);
            assert!(!rounds.is_empty(), "{mode}");
            for (i, r) in rounds.iter().enumerate() {
                r.validate(&g, mode, i).expect("valid round");
                // Maximality: no arc of g extends the round.
                let extendable = g.arcs().any(|a| {
                    !a.is_loop()
                        && r.arcs().iter().all(|b| {
                            a.from != b.from && a.from != b.to && a.to != b.from && a.to != b.to
                        })
                });
                assert!(!extendable, "{mode}: round {i} is not maximal");
                if i > 0 {
                    assert!(rounds[i - 1].arcs() < r.arcs(), "canonical order");
                }
            }
        }
    }

    #[test]
    fn full_duplex_candidate_counts_match_matching_theory() {
        // Maximal matchings of C_8: the two perfect matchings plus the
        // eight maximal 3-matchings.
        let g = Network::Cycle { n: 8 }.build();
        assert_eq!(maximal_rounds(&g, Mode::FullDuplex).len(), 10);
    }

    #[test]
    fn path_full_duplex_meets_the_diameter_floor() {
        // P_6 at s = 2: the alternating pairing gossips in n − 1 rounds,
        // which is the diameter floor — the enumerator must prove it and
        // stop at the floor.
        let out = enumerate(
            &Network::Path { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        assert_eq!(out.best_rounds, Some(5));
        assert!(out.met_floor);
        let cert = out.certificate.expect("certificate");
        assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
        assert!(cert.verdict.is_settled());
        out.best
            .expect("witness")
            .validate(&Network::Path { n: 6 }.build())
            .expect("valid witness");
    }

    #[test]
    fn cycle6_full_duplex_s2_exact_optimum() {
        // C_6, s = 2, full-duplex: diameter floor 3; period-2 schedules
        // alternate two maximal matchings. The enumerator settles the
        // true optimum exactly, and it is reproducible.
        let out = enumerate(
            &Network::Cycle { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        let t = out.best_rounds.expect("C_6 gossips at s = 2");
        assert!(t >= 3, "floor");
        let again = enumerate(
            &Network::Cycle { n: 6 },
            Mode::FullDuplex,
            &EnumerateConfig::default().exact_period(2),
        );
        assert_eq!(again.best_rounds, Some(t), "deterministic");
        assert_eq!(again.enumerated, out.enumerated);
        // The witness actually achieves the proven time.
        let sp = out.best.expect("witness");
        let measured =
            sg_sim::engine::systolic_gossip_time(&sp, 6, 1000).expect("witness completes");
        assert_eq!(measured, t);
    }

    #[test]
    fn symmetry_breaking_only_restricts_round_zero() {
        let g = Network::Cycle { n: 8 }.build();
        let candidates = maximal_rounds(&g, Mode::FullDuplex);
        let autos = automorphisms(&g);
        let reps = candidates
            .iter()
            .filter(|r| is_orbit_representative(&autos, r.arcs()))
            .count();
        // C_8's 10 maximal matchings fall into 2 orbits (perfect /
        // size-3) under the dihedral group.
        assert_eq!(reps, 2);
    }
}
