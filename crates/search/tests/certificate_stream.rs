//! Certificates through the row-streaming surface: the
//! `Verdict::BoundSlack` path end-to-end, and the stable `label()`
//! round-trips of `FloorSource` and `Verdict` through the JSON/CSV
//! streaming in `sg_core::report`.

use sg_search::{certify, certify_with, enumerate, EnumerateConfig, FloorSource, Verdict};
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::{to_csv, to_json_line, BoundOracle, Network, Row, Value};

/// Streams a certificate the way the batch runner does.
fn cert_row(c: &sg_search::Certificate) -> Row {
    Row::new()
        .with("network", c.network.as_str())
        .with("n", c.n)
        .with("s", c.period)
        .with("found_rounds", c.found_rounds)
        .with("floor_rounds", c.floor_rounds)
        .with("floor_source", c.floor_source.label())
        .with("asymptotic_rounds", c.asymptotic_rounds)
        .with("protocol_bound_rounds", c.protocol_bound_rounds)
        .with("verdict", c.verdict.label())
}

#[test]
fn bound_slack_streams_and_round_trips() {
    // P_8 half-duplex at s = 3: the asymptotic e(3)·log₂ 8 ≈ 8.6
    // overshoots any measured 8-round schedule — the BoundSlack path.
    let net = Network::Path { n: 8 };
    let g = net.build();
    let d = sg_graphs::traversal::diameter(&g);
    let c = certify(&net, &g, d, Mode::HalfDuplex, 3, 8);
    assert!(matches!(c.verdict, Verdict::BoundSlack { .. }));

    let row = cert_row(&c);
    let json = to_json_line(&row);
    assert!(json.contains(r#""verdict":"bound-slack""#), "{json}");
    assert!(json.contains(r#""floor_source":"diameter""#), "{json}");
    // The asymptotic figure is a finite float, not null.
    assert!(json.contains(r#""asymptotic_rounds":8."#), "{json}");

    // CSV round-trip: the labels survive a parse cycle.
    let csv = to_csv(std::slice::from_ref(&row));
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap().split(',').collect();
    let cells: Vec<&str> = lines.next().unwrap().split(',').collect();
    let col = |name: &str| cells[header.iter().position(|h| *h == name).unwrap()];
    assert_eq!(col("verdict"), "bound-slack");
    assert_eq!(
        FloorSource::from_label(col("floor_source")),
        Some(FloorSource::Diameter),
        "floor_source label must parse back"
    );
}

#[test]
fn floor_source_labels_round_trip_through_rows() {
    // One certificate per floor source, streamed and parsed back.
    let cases: Vec<(Network, Mode, usize, usize, FloorSource)> = vec![
        // Path diameter floor.
        (
            Network::Path { n: 8 },
            Mode::FullDuplex,
            2,
            7,
            FloorSource::Diameter,
        ),
        // Hypercube doubling floor.
        (
            Network::Hypercube { k: 3 },
            Mode::FullDuplex,
            3,
            3,
            FloorSource::Doubling,
        ),
        // Cycle s = 2 linear floor.
        (
            Network::Cycle { n: 8 },
            Mode::HalfDuplex,
            2,
            8,
            FloorSource::LinearPeriodTwo,
        ),
    ];
    for (net, mode, s, found, want) in cases {
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let c = certify(&net, &g, d, mode, s, found);
        assert_eq!(c.floor_source, want, "{}", net.name());
        let row = cert_row(&c);
        let Some(Value::Text(label)) = row.get("floor_source") else {
            panic!("floor_source must stream as text");
        };
        assert_eq!(FloorSource::from_label(label), Some(want));
        // And the verdict label is always one of the pinned set.
        let Some(Value::Text(v)) = row.get("verdict") else {
            panic!("verdict must stream as text");
        };
        assert!(Verdict::all_labels().contains(&v.as_str()), "{v}");
    }
}

#[test]
fn proven_optimal_certificates_stream_with_protocol_bounds() {
    // An enumerated certificate: proven-optimal verdict plus the best
    // schedule's own Thm 4.1 delay-matrix bound, all streamable.
    let out = enumerate(
        &Network::Cycle { n: 8 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(3),
    );
    let c = out.certificate.expect("settled");
    assert_eq!(c.verdict.label(), "proven-optimal");
    assert!(c.verdict.is_settled());
    assert!(
        c.protocol_bound_rounds.is_some(),
        "sg-delay bound must reach the certificate"
    );
    let json = to_json_line(&cert_row(&c));
    assert!(json.contains(r#""verdict":"proven-optimal""#), "{json}");
    assert!(json.contains(r#""protocol_bound_rounds":"#), "{json}");
    assert!(!json.contains(r#""protocol_bound_rounds":null"#), "{json}");
}

#[test]
fn optimal_and_gap_certificates_agree_between_oracle_paths() {
    // certify (throwaway oracle) and certify_with (shared oracle) must
    // produce identical certificates, protocol bound aside.
    let net = Network::Cycle { n: 8 };
    let g = net.build();
    let d = sg_graphs::traversal::diameter(&g);
    let oracle = BoundOracle::new();
    let a = certify(&net, &g, d, Mode::HalfDuplex, 2, 8);
    let b = certify_with(&oracle, &net, &g, d, Mode::HalfDuplex, 2, 8, None);
    assert_eq!(a, b);
    // The shared oracle path memoized the key: a second certification
    // costs zero computes.
    let before = oracle.stats().computes;
    let _ = certify_with(&oracle, &net, &g, d, Mode::HalfDuplex, 2, 8, None);
    assert_eq!(oracle.stats().computes, before);
}
