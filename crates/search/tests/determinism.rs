//! Search determinism: the same seed must yield the identical best
//! schedule and certificate, no matter how many worker threads the
//! driver spreads its chains across — chains are independent and
//! deterministically seeded, so the thread count is pure mechanics.

use sg_protocol::mode::Mode;
use sg_search::{search, SearchConfig};
use systolic_gossip::Network;

fn cfg(seed: u64, threads: usize) -> SearchConfig {
    SearchConfig {
        min_period: 2,
        max_period: 3,
        restarts: 4,
        iterations: 150,
        seed,
        threads,
        ..Default::default()
    }
}

#[test]
fn same_seed_same_result_across_thread_counts() {
    let cases = [
        (Network::Path { n: 8 }, Mode::FullDuplex),
        (Network::Cycle { n: 8 }, Mode::HalfDuplex),
        (Network::Hypercube { k: 3 }, Mode::FullDuplex),
    ];
    for (net, mode) in cases {
        let single = search(&net, mode, &cfg(42, 1));
        for threads in [2, 4, 7] {
            let multi = search(&net, mode, &cfg(42, threads));
            assert_eq!(
                single.best.period(),
                multi.best.period(),
                "{}: best schedule drifted at {threads} threads",
                net.name()
            );
            assert_eq!(single.best_rounds, multi.best_rounds, "{}", net.name());
            assert_eq!(single.certificate, multi.certificate, "{}", net.name());
            assert_eq!(single.evaluations, multi.evaluations, "{}", net.name());
            assert_eq!(single.chains, multi.chains, "{}", net.name());
        }
    }
}

#[test]
fn distinct_seeds_may_differ_but_stay_valid_and_certified() {
    let net = Network::Cycle { n: 6 };
    let g = net.build();
    for seed in [1u64, 2, 3] {
        let out = search(&net, Mode::FullDuplex, &cfg(seed, 2));
        out.best.validate(&g).expect("winner must be valid");
        let t = out.best_rounds.expect("zoo searches complete");
        let cert = out.certificate.expect("certificate issued");
        assert_eq!(cert.found_rounds, t);
        assert!(cert.found_rounds >= cert.floor_rounds);
    }
}

#[test]
fn config_seed_changes_the_stream() {
    // Not a strict requirement of correctness, but a guard against the
    // chain-seed mixer collapsing: two far-apart master seeds should not
    // produce identical evaluation trajectories on a network with many
    // schedules (same *optimal time* is fine; identical everything on
    // every seed would mean the rng is ignored).
    let net = Network::Torus2d { w: 4, h: 4 };
    let a = search(&net, Mode::FullDuplex, &cfg(7, 2));
    let b = search(&net, Mode::FullDuplex, &cfg(700_000_007, 2));
    assert_eq!(a.evaluations, b.evaluations, "same config shape");
    // Both must at least complete and certify.
    assert!(a.certificate.is_some() && b.certificate.is_some());
}
