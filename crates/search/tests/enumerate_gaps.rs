//! Fixed-seed reproduction of the settled open gaps.
//!
//! These are the values the exact enumerator proves once and the README
//! records as theorems; any change here means the enumeration machinery
//! (or a bound) broke. The enumerator is deterministic, so every number
//! — including the search-tree counters — is pinned exactly.

use sg_search::{enumerate, EnumerateConfig, Verdict};
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::{FloorSource, Network};

/// ROADMAP gap #1, settled: gossip on `Q₃` with a period-2 full-duplex
/// systolic schedule takes exactly 4 rounds — one more than the
/// `⌈log₂ 8⌉ = 3` doubling floor. The annealer's `Gap(1)` was real.
#[test]
fn q3_full_duplex_s2_optimum_is_four() {
    let out = enumerate(
        &Network::Hypercube { k: 3 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(2),
    );
    assert_eq!(out.best_rounds, Some(4));
    assert!(!out.met_floor, "3 rounds is impossible at s = 2");
    let cert = out.certificate.expect("certificate");
    assert_eq!(cert.floor_rounds, 3);
    assert_eq!(cert.floor_source, FloorSource::Doubling);
    assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
    assert_eq!(cert.gap_rounds(), 1, "the settled floor-to-optimum gap");
    // Q₃'s 17 maximal matchings fall into 3 orbits under its
    // 48-element automorphism group.
    assert_eq!(out.round_candidates, 17);
    assert_eq!(out.representatives, 3);
    assert_eq!(out.automorphisms, 48);
    // The witness is executable and achieves the proven optimum.
    let sp = out.best.expect("witness");
    let g = Network::Hypercube { k: 3 }.build();
    sp.validate(&g).expect("valid");
    assert_eq!(
        systolic_gossip::sg_sim::engine::systolic_gossip_time(&sp, 8, 100),
        Some(4)
    );
}

/// ROADMAP gap #2, settled: gossip on `C₈` with a period-3 full-duplex
/// systolic schedule takes exactly 5 rounds — one more than the
/// diameter floor 4.
#[test]
fn c8_full_duplex_s3_optimum_is_five() {
    let out = enumerate(
        &Network::Cycle { n: 8 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(3),
    );
    assert_eq!(out.best_rounds, Some(5));
    assert!(!out.met_floor, "4 rounds is impossible at s = 3");
    let cert = out.certificate.expect("certificate");
    assert_eq!(cert.floor_rounds, 4);
    assert_eq!(cert.floor_source, FloorSource::Diameter);
    assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
    assert_eq!(cert.gap_rounds(), 1);
    assert_eq!(out.round_candidates, 10, "maximal matchings of C_8");
    assert_eq!(out.representatives, 2, "two orbits: perfect / size-3");
    let sp = out.best.expect("witness");
    sp.validate(&Network::Cycle { n: 8 }.build())
        .expect("valid");
    assert_eq!(
        systolic_gossip::sg_sim::engine::systolic_gossip_time(&sp, 8, 100),
        Some(5)
    );
}

/// Directed-mode variants: the degenerate `s = 2` linear floor on `C₆`
/// is off by exactly one, and the optimum at `s = 3` is 7.
#[test]
fn c6_directed_optima() {
    let s2 = enumerate(
        &Network::Cycle { n: 6 },
        Mode::Directed,
        &EnumerateConfig::default().exact_period(2),
    );
    assert_eq!(s2.best_rounds, Some(6));
    let cert = s2.certificate.expect("certificate");
    assert_eq!(cert.floor_rounds, 5);
    assert_eq!(cert.floor_source, FloorSource::LinearPeriodTwo);
    assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));

    let s3 = enumerate(
        &Network::Cycle { n: 6 },
        Mode::Directed,
        &EnumerateConfig::default().exact_period(3),
    );
    assert_eq!(s3.best_rounds, Some(7));
    assert!(matches!(
        s3.certificate.expect("certificate").verdict,
        Verdict::ProvenOptimal { .. }
    ));
}

/// An exact *infeasibility* theorem: no period-3 directed schedule
/// gossips on `P₆` at all. Every cut edge must carry both directions
/// somewhere in the period (items must cross both ways), so all 10 arcs
/// of the path must be activated — but three endpoint-disjoint rounds
/// on 6 vertices hold at most `3 × 3 = 9` arcs.
#[test]
fn p6_directed_s3_is_infeasible() {
    let out = enumerate(
        &Network::Path { n: 6 },
        Mode::Directed,
        &EnumerateConfig::default().exact_period(3),
    );
    assert!(out.proven_infeasible);
    assert_eq!(out.best_rounds, None);
    assert!(out.certificate.is_none());
    assert!(out.enumerated > 0, "exhaustion actually ran");
    // …while one more round slot makes it feasible again.
    let s4 = enumerate(
        &Network::Path { n: 6 },
        Mode::Directed,
        &EnumerateConfig::default().exact_period(4),
    );
    assert!(s4.best_rounds.is_some());
}

/// Stabilizer-chain era, settled: `Torus(3×3)` — a 9-vertex network
/// whose 72-element automorphism group (beyond anything round-0-only
/// breaking handled gracefully) collapses the maximal matchings to 4
/// round-0 representatives. At `s = 2` a period-2 schedule needs 9
/// rounds; one more slot brings the optimum down to 5, one above the
/// doubling floor 4.
#[test]
fn torus3x3_full_duplex_optima() {
    let s2 = enumerate(
        &Network::Torus2d { w: 3, h: 3 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(2),
    );
    assert_eq!(s2.best_rounds, Some(9));
    assert!(matches!(
        s2.certificate.expect("certificate").verdict,
        Verdict::ProvenOptimal { .. }
    ));
    let s3 = enumerate(
        &Network::Torus2d { w: 3, h: 3 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(3),
    );
    assert_eq!(s3.best_rounds, Some(5));
    let cert = s3.certificate.expect("certificate");
    assert_eq!(cert.floor_rounds, 4);
    assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
    // The acceptance bar for the group layer: |Aut| = 72 ≥ 16, pruned
    // through the chain at every depth, not just round 0.
    assert_eq!(s3.group_order, 72);
    assert_eq!(s3.representatives, 4);
    assert!(s3.stabilizer_pruned > 0, "deeper slots prune symmetrically");
    let sp = s3.best.expect("witness");
    sp.validate(&Network::Torus2d { w: 3, h: 3 }.build())
        .expect("valid");
    assert_eq!(
        systolic_gossip::sg_sim::engine::systolic_gossip_time(&sp, 9, 100),
        Some(5)
    );
}

/// Stabilizer-chain era, settled: the Knödel graph `W(3,8)` — the
/// classical minimum-gossip family — meets its `⌈log₂ 8⌉ = 3` doubling
/// floor exactly at `s = 3`, while `s = 2` provably needs 4 rounds.
#[test]
fn knodel38_full_duplex_optima() {
    let s2 = enumerate(
        &Network::Knodel { delta: 3, n: 8 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(2),
    );
    assert_eq!(s2.best_rounds, Some(4));
    assert!(matches!(
        s2.certificate.expect("certificate").verdict,
        Verdict::ProvenOptimal { .. }
    ));
    let s3 = enumerate(
        &Network::Knodel { delta: 3, n: 8 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(3),
    );
    assert_eq!(s3.best_rounds, Some(3), "gossip in ⌈log₂ n⌉ rounds");
    assert!(s3.met_floor, "the doubling floor is met, search ends early");
    assert_eq!(s3.group_order, 48);
}

/// Individualization–refinement era, settled: the Knödel graph
/// `W(4,16)` — 16 vertices, 32 edges, 2014 maximal matchings — provably
/// cannot double at period 2: the optimum is **8 rounds against the
/// `⌈log₂ 16⌉ = 4` doubling floor**, a gap of 4. The 175 round-0
/// representatives and quarter-million-node tree are exactly what the
/// refinement-seeded group layer and the parallel fixed-cap pass were
/// built for; the backtracking-era engine conceded this family as
/// exponential.
#[test]
fn knodel_w416_full_duplex_s2_optimum_is_eight() {
    let out = enumerate(
        &Network::Knodel { delta: 4, n: 16 },
        Mode::FullDuplex,
        &EnumerateConfig::default().exact_period(2),
    );
    assert_eq!(out.best_rounds, Some(8));
    assert!(!out.met_floor, "the doubling floor 4 is unreachable");
    let cert = out.certificate.expect("certificate");
    assert_eq!(cert.floor_rounds, 4);
    assert_eq!(cert.floor_source, FloorSource::Doubling);
    assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
    assert_eq!(cert.gap_rounds(), 4, "the settled floor-to-optimum gap");
    assert_eq!(out.round_candidates, 2014);
    assert_eq!(out.representatives, 175);
    assert_eq!(out.group_order, 16);
    let sp = out.best.expect("witness");
    sp.validate(&Network::Knodel { delta: 4, n: 16 }.build())
        .expect("valid");
    assert_eq!(
        systolic_gossip::sg_sim::engine::systolic_gossip_time(&sp, 16, 100),
        Some(8)
    );
}

/// Stabilizer-chain era, settled: directed `DB(2,3)` at `s = 2` — the
/// degenerate linear floor `n − 1 = 7` is off by exactly one (8 rounds),
/// mirroring the directed `C₆` story on a de Bruijn family member.
#[test]
fn debruijn23_directed_s2_optimum_is_eight() {
    let out = enumerate(
        &Network::DeBruijnDirected { d: 2, dd: 3 },
        Mode::Directed,
        &EnumerateConfig::default().exact_period(2),
    );
    assert_eq!(out.best_rounds, Some(8));
    let cert = out.certificate.expect("certificate");
    assert_eq!(cert.floor_rounds, 7);
    assert_eq!(cert.floor_source, FloorSource::LinearPeriodTwo);
    assert!(matches!(cert.verdict, Verdict::ProvenOptimal { .. }));
}

/// The whole fixed-seed table in one place: rerunning the enumerator
/// must reproduce every settled value and counter bit-for-bit.
#[test]
fn settled_table_is_deterministic() {
    let cases: Vec<(Network, Mode, usize, Option<usize>)> = vec![
        (Network::Hypercube { k: 3 }, Mode::FullDuplex, 2, Some(4)),
        (Network::Cycle { n: 8 }, Mode::FullDuplex, 3, Some(5)),
        (Network::Cycle { n: 6 }, Mode::Directed, 2, Some(6)),
        (Network::Path { n: 6 }, Mode::Directed, 3, None),
        (
            Network::Torus2d { w: 3, h: 3 },
            Mode::FullDuplex,
            3,
            Some(5),
        ),
        (
            Network::Knodel { delta: 3, n: 8 },
            Mode::FullDuplex,
            3,
            Some(3),
        ),
        (
            Network::DeBruijnDirected { d: 2, dd: 3 },
            Mode::Directed,
            2,
            Some(8),
        ),
    ];
    for (net, mode, s, want) in cases {
        let a = enumerate(&net, mode, &EnumerateConfig::default().exact_period(s));
        let b = enumerate(&net, mode, &EnumerateConfig::default().exact_period(s));
        assert_eq!(a.best_rounds, want, "{} s={s}", net.name());
        assert_eq!(a.best_rounds, b.best_rounds);
        assert_eq!(a.enumerated, b.enumerated, "{} s={s}", net.name());
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(
            a.best.map(|p| p.period().to_vec()),
            b.best.map(|p| p.period().to_vec()),
            "witness schedules must be identical"
        );
    }
}
