//! Determinism across thread budgets, and conformance against the
//! retired engine.
//!
//! The parallel fixed-cap pass claims bit-identical outcomes at any
//! thread count: the visited node set is a pure function of the
//! instance, so every counter — and the `(value, prefix)`-minimal
//! witness — must match. And the whole engine claims to settle exactly
//! what the retired sequential engine settled; `sg_search::reference`
//! keeps that engine alive so the claim is tested, not remembered.

use sg_search::reference::enumerate_serial;
use sg_search::{enumerate, EnumerateConfig};
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::sg_protocol::round::Round;
use systolic_gossip::Network;

/// Every enumeration scenario instance (the registry's `enum-*` set
/// plus the `W(4,16)` theorem instance), hard-coded so a registry edit
/// cannot silently shrink this suite.
fn scenario_instances() -> Vec<(Network, Mode, usize)> {
    vec![
        (Network::Hypercube { k: 3 }, Mode::FullDuplex, 2),
        (Network::Cycle { n: 8 }, Mode::FullDuplex, 3),
        (Network::Cycle { n: 6 }, Mode::Directed, 2),
        (Network::Path { n: 6 }, Mode::Directed, 3),
        (Network::Torus2d { w: 3, h: 3 }, Mode::FullDuplex, 3),
        (Network::Knodel { delta: 3, n: 8 }, Mode::FullDuplex, 3),
        (Network::DeBruijnDirected { d: 2, dd: 3 }, Mode::Directed, 2),
        (Network::Knodel { delta: 4, n: 16 }, Mode::FullDuplex, 2),
    ]
}

/// The full observable fingerprint of an outcome — everything except
/// the `threads` field, which is *supposed* to differ.
type Fingerprint = (
    Option<usize>,
    bool,
    bool,
    usize,
    usize,
    Vec<usize>,
    usize,
    usize,
    usize,
    usize,
    Option<Vec<Round>>,
);

fn fingerprint(out: &sg_search::EnumerateOutcome) -> Fingerprint {
    (
        out.best_rounds,
        out.proven_infeasible,
        out.met_floor,
        out.enumerated,
        out.pruned,
        out.pruned_per_level.clone(),
        out.stabilizer_pruned,
        out.memo_hits,
        out.memo_entries,
        out.representatives,
        out.best.as_ref().map(|p| p.period().to_vec()),
    )
}

#[test]
fn thread_budgets_give_identical_outcomes() {
    for (net, mode, s) in scenario_instances() {
        let base = enumerate(
            &net,
            mode,
            &EnumerateConfig::default().exact_period(s).threads(1),
        );
        let want = fingerprint(&base);
        for threads in [2, 8] {
            let out = enumerate(
                &net,
                mode,
                &EnumerateConfig::default().exact_period(s).threads(threads),
            );
            assert_eq!(out.threads, threads);
            assert_eq!(
                fingerprint(&out),
                want,
                "{} s={s} must be bit-identical at {threads} threads",
                net.name()
            );
        }
    }
}

/// The optima the new engine settles are exactly the optima the retired
/// engine settles — including `K₈`, whose 40320-element group exercises
/// the chain regime on one side and the generator fallback on the other.
#[test]
fn new_engine_agrees_with_the_retired_engine() {
    let zoo: Vec<(Network, Mode, usize)> = vec![
        (Network::Path { n: 6 }, Mode::FullDuplex, 2),
        (Network::Cycle { n: 6 }, Mode::FullDuplex, 2),
        (Network::Cycle { n: 8 }, Mode::FullDuplex, 3),
        (Network::Hypercube { k: 3 }, Mode::FullDuplex, 2),
        (Network::Torus2d { w: 3, h: 3 }, Mode::FullDuplex, 3),
        (Network::Knodel { delta: 3, n: 8 }, Mode::FullDuplex, 3),
        (Network::Cycle { n: 6 }, Mode::Directed, 2),
        (Network::Path { n: 6 }, Mode::Directed, 3),
        (Network::Complete { n: 8 }, Mode::FullDuplex, 2),
    ];
    for (net, mode, s) in zoo {
        let cfg = EnumerateConfig::default().exact_period(s);
        let new = enumerate(&net, mode, &cfg);
        let old = enumerate_serial(&net, mode, &cfg);
        assert_eq!(
            new.best_rounds,
            old.best_rounds,
            "{} s={s}: engines disagree on the optimum",
            net.name()
        );
        assert_eq!(new.proven_infeasible, old.proven_infeasible);
        assert_eq!(new.met_floor, old.met_floor, "{} s={s}", net.name());
        assert_eq!(new.round_candidates, old.round_candidates);
        // Both witnesses (when they exist) must achieve the proven time.
        let n = net.build().vertex_count();
        for (label, out) in [("new", &new), ("reference", &old)] {
            if let (Some(t), Some(sp)) = (out.best_rounds, out.best.as_ref()) {
                assert_eq!(
                    systolic_gossip::sg_sim::engine::systolic_gossip_time(sp, n, 1000),
                    Some(t),
                    "{label} witness for {} s={s}",
                    net.name()
                );
            }
        }
    }
}
