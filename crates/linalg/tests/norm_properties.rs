//! Property-based tests for the Euclidean matrix norm machinery.
//!
//! These encode the eight norm properties listed in Section 2 of the paper
//! plus Lemma 2.1 (semi-eigenvectors bound the spectral radius) on random
//! nonnegative matrices — exactly the class the delay-matrix technique
//! manipulates.

use proptest::prelude::*;
use sg_linalg::dense::DenseMatrix;
use sg_linalg::norm::{
    is_semi_eigenvector, spectral_norm_dense, spectral_radius_dense, PowerIterOpts,
};

const OPTS: PowerIterOpts = PowerIterOpts {
    max_iters: 50_000,
    tol: 1e-13,
    seed: 0xFEED,
};

fn nonneg_matrix(max_dim: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(0.0f64..2.0, r * c)
            .prop_map(move |data| DenseMatrix::from_fn(r, c, |i, j| data[i * c + j]))
    })
}

fn nonneg_square(max_dim: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(0.0f64..2.0, n * n)
            .prop_map(move |data| DenseMatrix::from_fn(n, n, |i, j| data[i * n + j]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Property 1 & 2: nonnegativity, zero only for the zero matrix.
    #[test]
    fn norm_nonnegative_and_definite(m in nonneg_matrix(6)) {
        let n = spectral_norm_dense(&m, OPTS);
        prop_assert!(n >= 0.0);
        if m.max_abs() > 1e-9 {
            prop_assert!(n > 0.0);
        }
    }

    // Property 3: absolute homogeneity.
    #[test]
    fn norm_homogeneous(m in nonneg_matrix(6), a in -3.0f64..3.0) {
        let n1 = spectral_norm_dense(&m.scale(a), OPTS);
        let n2 = a.abs() * spectral_norm_dense(&m, OPTS);
        prop_assert!((n1 - n2).abs() <= 1e-6 * (1.0 + n2));
    }

    // Property 4: entrywise monotonicity for nonnegative matrices.
    #[test]
    fn norm_monotone(m in nonneg_matrix(6), extra in 0.0f64..1.0) {
        let bigger = DenseMatrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] + extra);
        prop_assert!(
            spectral_norm_dense(&m, OPTS)
                <= spectral_norm_dense(&bigger, OPTS) + 1e-7
        );
    }

    // Property 5: triangle inequality.
    #[test]
    fn norm_triangle(m in nonneg_matrix(5), k in 0.0f64..2.0) {
        let n = m.scale(k);
        let lhs = spectral_norm_dense(&m.add(&n), OPTS);
        let rhs = spectral_norm_dense(&m, OPTS) + spectral_norm_dense(&n, OPTS);
        prop_assert!(lhs <= rhs + 1e-7 * (1.0 + rhs));
    }

    // Property 6: submultiplicativity (on composable square matrices).
    #[test]
    fn norm_submultiplicative(m in nonneg_square(5), n in nonneg_square(5)) {
        // Make the shapes agree by truncating to the smaller order.
        let k = m.rows().min(n.rows());
        let a = DenseMatrix::from_fn(k, k, |i, j| m[(i, j)]);
        let b = DenseMatrix::from_fn(k, k, |i, j| n[(i, j)]);
        let lhs = spectral_norm_dense(&a.matmul(&b), OPTS);
        let rhs = spectral_norm_dense(&a, OPTS) * spectral_norm_dense(&b, OPTS);
        prop_assert!(lhs <= rhs + 1e-6 * (1.0 + rhs));
    }

    // Property 7: invariance under row/column permutations.
    #[test]
    fn norm_permutation_invariant(m in nonneg_square(6), seed in 0u64..1000) {
        let n = m.rows();
        // Deterministic pseudo-random permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let p = m.permute_rows(&perm).permute_cols(&perm);
        let n1 = spectral_norm_dense(&m, OPTS);
        let n2 = spectral_norm_dense(&p, OPTS);
        prop_assert!((n1 - n2).abs() <= 1e-6 * (1.0 + n1));
    }

    // Property 8: block-diagonal norm is the max of the block norms.
    #[test]
    fn norm_block_diag(a in nonneg_matrix(4), b in nonneg_matrix(4)) {
        let d = DenseMatrix::block_diag(&[a.clone(), b.clone()]);
        let na = spectral_norm_dense(&a, OPTS);
        let nb = spectral_norm_dense(&b, OPTS);
        let nd = spectral_norm_dense(&d, OPTS);
        prop_assert!((nd - na.max(nb)).abs() <= 1e-6 * (1.0 + nd));
    }

    // Lemma 2.1: a positive semi-eigenvector bounds the spectral radius.
    #[test]
    fn semi_eigenvector_bounds_radius(m in nonneg_square(6)) {
        // x = ones; e = max row sum makes (Mx)_i = rowsum_i <= e.
        let n = m.rows();
        let x = vec![1.0; n];
        let e = (0..n).map(|i| m.row_sum(i)).fold(0.0_f64, f64::max);
        prop_assert!(is_semi_eigenvector(&m, &x, e + 1e-12, 1e-9));
        let rho = spectral_radius_dense(&m, OPTS);
        prop_assert!(rho <= e + 1e-6 * (1.0 + e));
    }

    // ‖M‖ = √ρ(MᵀM) definition holds numerically.
    #[test]
    fn norm_is_sqrt_gram_radius(m in nonneg_matrix(5)) {
        let gram = m.transpose().matmul(&m);
        let lhs = spectral_norm_dense(&m, OPTS);
        let rhs = spectral_radius_dense(&gram, OPTS).sqrt();
        prop_assert!((lhs - rhs).abs() <= 1e-5 * (1.0 + rhs));
    }
}
