//! Euclidean matrix norms and spectral radii via power iteration.
//!
//! The paper's machinery only ever needs these quantities for *nonnegative*
//! matrices (delay matrices have entries `λ^w > 0`), where power iteration
//! with a strictly positive start vector converges to the Perron value.
//! `‖M‖₂ = √ρ(MᵀM)` (Section 2), and `MᵀM` is symmetric positive
//! semidefinite, so the Rayleigh quotient converges monotonically enough for
//! a simple relative-change stopping rule.

use crate::dense::DenseMatrix;
use crate::rng::XorShift64;
use crate::sparse::CsrMatrix;
use crate::vector;

/// Options for power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterOpts {
    /// Maximum number of iterations before giving up and returning the
    /// current Rayleigh estimate.
    pub max_iters: usize,
    /// Relative tolerance on the eigenvalue estimate between iterations.
    pub tol: f64,
    /// Seed for the deterministic start-vector perturbation.
    pub seed: u64,
}

impl Default for PowerIterOpts {
    fn default() -> Self {
        Self {
            max_iters: 20_000,
            tol: 1e-13,
            seed: 0x5EED,
        }
    }
}

fn start_vector(n: usize, seed: u64) -> Vec<f64> {
    // Strictly positive start: all-ones plus a small deterministic jitter.
    // Positivity guarantees a nonzero Perron component for nonnegative
    // matrices; the jitter avoids symmetric cancellation in signed tests.
    let mut rng = XorShift64::new(seed);
    (0..n).map(|_| 1.0 + 0.01 * rng.next_f64()).collect()
}

/// Spectral norm `‖A‖₂` of a sparse matrix via power iteration on `AᵀA`.
///
/// Returns `0.0` for a matrix with no nonzeros.
pub fn spectral_norm_sparse(a: &CsrMatrix, opts: PowerIterOpts) -> f64 {
    if a.nnz() == 0 {
        return 0.0;
    }
    let n = a.cols();
    let m = a.rows();
    let mut x = start_vector(n, opts.seed);
    vector::normalize(&mut x);
    let mut ax = vec![0.0; m];
    let mut atax = vec![0.0; n];
    let mut prev = 0.0_f64;
    for _ in 0..opts.max_iters {
        a.matvec(&x, &mut ax);
        a.matvec_transpose(&ax, &mut atax);
        // Rayleigh quotient of AᵀA at unit x is ‖Ax‖² = xᵀ(AᵀA)x.
        let lam = vector::dot(&x, &atax);
        let nrm = vector::normalize(&mut atax);
        if nrm == 0.0 {
            // x is in the null space of AᵀA; for nonnegative A with a
            // positive start this means A = 0 numerically.
            return 0.0;
        }
        std::mem::swap(&mut x, &mut atax);
        if (lam - prev).abs() <= opts.tol * lam.max(1e-300) {
            return lam.max(0.0).sqrt();
        }
        prev = lam;
    }
    prev.max(0.0).sqrt()
}

/// Spectral norm of a dense matrix (converts to CSR; dense matrices in this
/// workspace are tiny local matrices, so the conversion cost is irrelevant).
pub fn spectral_norm_dense(a: &DenseMatrix, opts: PowerIterOpts) -> f64 {
    spectral_norm_sparse(&CsrMatrix::from_dense(a), opts)
}

/// Spectral radius `ρ(A)` of a *nonnegative* square matrix via power
/// iteration. For nonnegative matrices the Perron–Frobenius theorem
/// guarantees `ρ(A)` is an eigenvalue with a nonnegative eigenvector, and a
/// positive start vector has a component along it.
///
/// Internally iterates on the shifted operator `A + I`: for nonnegative `A`
/// the shift satisfies `ρ(A + I) = ρ(A) + 1` and destroys the spectral
/// periodicity that would otherwise make the Rayleigh quotient oscillate on
/// imprimitive matrices (e.g. permutation cycles). Accuracy caveat: for
/// *defective* dominant eigenvalues (nilpotent blocks) convergence degrades
/// to `O(1/k)`, so exact zeros may come back as `~1e-4`; the matrices this
/// workspace actually cares about (`MᵀM`, `Ox·Nx`, both with positive
/// diagonals in the relevant regime) converge geometrically.
///
/// # Panics
/// Panics if `a` is not square or has a negative entry.
pub fn spectral_radius_sparse(a: &CsrMatrix, opts: PowerIterOpts) -> f64 {
    assert_eq!(a.rows(), a.cols(), "spectral radius needs a square matrix");
    assert!(a.is_nonnegative(), "power iteration for rho needs A >= 0");
    if a.nnz() == 0 {
        return 0.0;
    }
    let n = a.rows();
    let mut x = start_vector(n, opts.seed);
    vector::normalize(&mut x);
    let mut ax = vec![0.0; n];
    let mut prev = 0.0_f64;
    for _ in 0..opts.max_iters {
        a.matvec(&x, &mut ax);
        // Shifted operator (A + I)x = Ax + x.
        vector::axpy(1.0, &x, &mut ax);
        let lam = vector::dot(&x, &ax); // Rayleigh quotient of A + I
        let nrm = vector::normalize(&mut ax);
        if nrm == 0.0 {
            return 0.0;
        }
        std::mem::swap(&mut x, &mut ax);
        if (lam - prev).abs() <= opts.tol * lam.abs().max(1e-300) {
            return (lam - 1.0).max(0.0);
        }
        prev = lam;
    }
    (prev - 1.0).max(0.0)
}

/// Dense wrapper over [`spectral_radius_sparse`].
pub fn spectral_radius_dense(a: &DenseMatrix, opts: PowerIterOpts) -> f64 {
    spectral_radius_sparse(&CsrMatrix::from_dense(a), opts)
}

/// Verifies the semi-eigenvector relation of Definition 2.2 / Lemma 2.1:
/// `x > 0`, `Mx ≤ e·x` component-wise. Returns `true` when the relation
/// holds within `tol` per component, where the tolerance is applied
/// relative to the component magnitude (semi-eigenvector components can
/// span many orders of magnitude — e.g. the Lemma 4.2 vector
/// `e_j = λ^{Σ(r_c − l_{c+1})}` for unbalanced patterns — so an absolute
/// tolerance would be meaningless).
pub fn is_semi_eigenvector(m: &DenseMatrix, x: &[f64], e: f64, tol: f64) -> bool {
    if x.iter().any(|&v| v <= 0.0) {
        return false;
    }
    let mx = m.matvec(x);
    mx.iter()
        .zip(x)
        .all(|(lhs, xi)| *lhs <= e * xi + tol * (e * xi).abs().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::sparse::CooBuilder;

    const OPTS: PowerIterOpts = PowerIterOpts {
        max_iters: 50_000,
        tol: 1e-14,
        seed: 0xABCD,
    };

    #[test]
    fn norm_of_diagonal() {
        let d = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0]]);
        assert!(approx_eq(spectral_norm_dense(&d, OPTS), 3.0, 1e-10));
    }

    #[test]
    fn norm_of_rank_one() {
        // ‖u vᵀ‖ = ‖u‖·‖v‖.
        let u = [1.0, 2.0];
        let v = [3.0, 4.0, 12.0];
        let m = DenseMatrix::from_fn(2, 3, |i, j| u[i] * v[j]);
        let expect = (5.0_f64).sqrt() * (169.0_f64).sqrt();
        assert!(approx_eq(spectral_norm_dense(&m, OPTS), expect, 1e-10));
    }

    #[test]
    fn norm_known_2x2() {
        // M = [[1,1],[0,1]]: singular values are golden-ratio related;
        // sigma_max = (1+sqrt(5))/2.
        let m = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!(approx_eq(spectral_norm_dense(&m, OPTS), phi, 1e-10));
    }

    #[test]
    fn radius_of_permutation_is_one() {
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 1, 1.0);
        b.push(1, 2, 1.0);
        b.push(2, 0, 1.0);
        let p = b.build();
        assert!(approx_eq(spectral_radius_sparse(&p, OPTS), 1.0, 1e-9));
        // A permutation is orthogonal, so its spectral norm is 1 as well.
        assert!(approx_eq(spectral_norm_sparse(&p, OPTS), 1.0, 1e-9));
    }

    #[test]
    fn radius_of_nilpotent_is_zero() {
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 1, 5.0);
        b.push(1, 2, 7.0);
        let m = b.build();
        // Defective (nilpotent) case: convergence is only O(1/k), so allow
        // a loose tolerance; the true radius is 0.
        assert!(spectral_radius_sparse(&m, OPTS) < 1e-3);
    }

    #[test]
    fn radius_positive_matrix() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!(approx_eq(spectral_radius_dense(&m, OPTS), 3.0, 1e-10));
        // Symmetric: spectral norm equals spectral radius (Section 2).
        assert!(approx_eq(spectral_norm_dense(&m, OPTS), 3.0, 1e-10));
    }

    #[test]
    fn zero_matrix_norms() {
        let z = CsrMatrix::zeros(4, 4);
        assert_eq!(spectral_norm_sparse(&z, OPTS), 0.0);
        assert_eq!(spectral_radius_sparse(&z, OPTS), 0.0);
    }

    #[test]
    fn norm_equals_sqrt_radius_of_gram() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 0.0], vec![0.0, 1.0, 3.0]]);
        let mt = m.transpose();
        let gram = mt.matmul(&m);
        let direct = spectral_norm_dense(&m, OPTS);
        let via_gram = spectral_radius_dense(&gram, OPTS).sqrt();
        assert!(approx_eq(direct, via_gram, 1e-9));
    }

    #[test]
    fn semi_eigenvector_detection() {
        // Row-stochastic-ish: ones vector is an exact eigenvector of the
        // all-(1/2) 2x2 matrix with eigenvalue 1.
        let m = DenseMatrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert!(is_semi_eigenvector(&m, &[1.0, 1.0], 1.0, 1e-12));
        // e smaller than the true value must fail.
        assert!(!is_semi_eigenvector(&m, &[1.0, 1.0], 0.9, 1e-12));
        // Nonpositive vectors are rejected.
        assert!(!is_semi_eigenvector(&m, &[1.0, 0.0], 1.0, 1e-12));
    }

    #[test]
    fn norm_properties_on_samples() {
        // Triangle inequality and submultiplicativity spot checks
        // (norm properties 5 and 6 of Section 2).
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![0.5, 0.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.25]]);
        let na = spectral_norm_dense(&a, OPTS);
        let nb = spectral_norm_dense(&b, OPTS);
        let nsum = spectral_norm_dense(&a.add(&b), OPTS);
        let nprod = spectral_norm_dense(&a.matmul(&b), OPTS);
        assert!(nsum <= na + nb + 1e-9);
        assert!(nprod <= na * nb + 1e-9);
    }

    #[test]
    fn block_diag_norm_is_max() {
        // Norm property 8.
        let a = DenseMatrix::from_rows(&[vec![2.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let d = DenseMatrix::block_diag(&[a.clone(), b.clone()]);
        let na = spectral_norm_dense(&a, OPTS);
        let nb = spectral_norm_dense(&b, OPTS);
        let nd = spectral_norm_dense(&d, OPTS);
        assert!(approx_eq(nd, na.max(nb), 1e-9));
    }

    #[test]
    fn permutation_invariance() {
        // Norm property 7.
        let m = DenseMatrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        let p = m.permute_rows(&[1, 0]).permute_cols(&[1, 0]);
        assert!(approx_eq(
            spectral_norm_dense(&m, OPTS),
            spectral_norm_dense(&p, OPTS),
            1e-10
        ));
    }

    #[test]
    fn monotonicity_for_nonnegative() {
        // Norm property 4: M <= N entrywise (nonneg) implies ‖M‖ <= ‖N‖.
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.5], vec![0.0, 1.0]]);
        let n = m.scale(1.5);
        assert!(spectral_norm_dense(&m, OPTS) <= spectral_norm_dense(&n, OPTS) + 1e-12);
    }
}
