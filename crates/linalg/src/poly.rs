//! Polynomials and the paper's gossip polynomials `p_i(λ)`.
//!
//! Definition (Section 1/4 of the paper): for any integer `i > 0`,
//! `p_i(λ) = 1 + λ² + λ⁴ + ⋯ + λ^{2i−2}` — `i` terms with even exponents.
//! They satisfy the splicing identity used throughout Lemma 4.2:
//! `p_i(λ) + λ^{2i}·p_j(λ) = p_{i+j}(λ)`, and the concavity-style
//! inequality of Lemma 4.3's proof:
//! `p_{i+1}(λ)·p_{j−1}(λ) < p_i(λ)·p_j(λ)` for `i ≥ j` and `λ ∈ (0,1)`,
//! which is why the worst split of a period `s` is `⌈s/2⌉ / ⌊s/2⌋`.

/// A dense univariate polynomial with `f64` coefficients,
/// `c₀ + c₁x + c₂x² + ⋯`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Builds from coefficients in ascending-degree order; trailing zeros
    /// are trimmed.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && *coeffs.last().unwrap() == 0.0 {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::new(vec![0.0])
    }

    /// The monomial `c·x^k`.
    pub fn monomial(c: f64, k: usize) -> Self {
        let mut v = vec![0.0; k + 1];
        v[k] = c;
        Self::new(v)
    }

    /// Degree (0 for the zero polynomial, by convention).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficient view, ascending degree.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Horner evaluation.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Polynomial sum.
    pub fn add(&self, rhs: &Self) -> Self {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, c) in rhs.coeffs.iter().enumerate() {
            out[i] += c;
        }
        Self::new(out)
    }

    /// Polynomial product.
    pub fn mul(&self, rhs: &Self) -> Self {
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if *a == 0.0 {
                continue;
            }
            for (j, b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Self::new(out)
    }

    /// Scales every coefficient.
    pub fn scale(&self, a: f64) -> Self {
        Self::new(self.coeffs.iter().map(|c| a * c).collect())
    }

    /// Derivative.
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::zero();
        }
        Self::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, c)| (i + 1) as f64 * c)
                .collect(),
        )
    }
}

/// The gossip polynomial `p_i(λ) = 1 + λ² + ⋯ + λ^{2i−2}` as a
/// [`Polynomial`]. `p_0` is the zero polynomial (empty sum).
pub fn gossip_p(i: usize) -> Polynomial {
    if i == 0 {
        return Polynomial::zero();
    }
    let mut coeffs = vec![0.0; 2 * i - 1];
    for k in 0..i {
        coeffs[2 * k] = 1.0;
    }
    Polynomial::new(coeffs)
}

/// Direct evaluation of `p_i(λ)` without building the coefficient vector:
/// the closed form `(1 − λ^{2i}) / (1 − λ²)` for `λ ≠ 1`, else `i`.
///
/// This is the hot path of every bound computation in `sg-bounds`.
#[inline]
pub fn gossip_p_eval(i: usize, lambda: f64) -> f64 {
    if i == 0 {
        return 0.0;
    }
    let l2 = lambda * lambda;
    if (1.0 - l2).abs() < 1e-12 {
        return i as f64;
    }
    (1.0 - l2.powi(i as i32)) / (1.0 - l2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn gossip_p_small_cases() {
        assert_eq!(gossip_p(1).coeffs(), &[1.0]);
        assert_eq!(gossip_p(2).coeffs(), &[1.0, 0.0, 1.0]);
        assert_eq!(gossip_p(3).coeffs(), &[1.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn gossip_p_eval_matches_polynomial() {
        for i in 0..12 {
            let p = gossip_p(i);
            for &l in &[0.0, 0.1, 0.5, 0.618, 0.9, 0.99, 1.0, 1.5] {
                assert!(
                    approx_eq(p.eval(l), gossip_p_eval(i, l), 1e-10),
                    "i={i} lambda={l}"
                );
            }
        }
    }

    #[test]
    fn splicing_identity() {
        // p_i + λ^{2i} p_j = p_{i+j}  (used in Lemma 4.2's computation).
        for i in 0..8 {
            for j in 0..8 {
                for &l in &[0.3, 0.618, 0.95] {
                    let lhs = gossip_p_eval(i, l) + l.powi(2 * i as i32) * gossip_p_eval(j, l);
                    let rhs = gossip_p_eval(i + j, l);
                    assert!(approx_eq(lhs, rhs, 1e-10), "i={i} j={j} l={l}");
                }
            }
        }
    }

    #[test]
    fn balanced_split_maximizes_product() {
        // Lemma 4.3's proof: for i >= j, p_{i+1} p_{j-1} < p_i p_j on (0,1).
        // Hence among all splits a+b = s the product p_a p_b is maximized by
        // the balanced split {⌈s/2⌉, ⌊s/2⌋}.
        for s in 2..=12usize {
            for &l in &[0.2, 0.5, 0.7, 0.9] {
                let best = gossip_p_eval(s.div_ceil(2), l) * gossip_p_eval(s / 2, l);
                for a in 0..=s {
                    let b = s - a;
                    let prod = gossip_p_eval(a, l) * gossip_p_eval(b, l);
                    assert!(
                        prod <= best + 1e-12,
                        "split {a}+{b} beats balanced at l={l}: {prod} > {best}"
                    );
                }
            }
        }
    }

    #[test]
    fn polynomial_arithmetic() {
        let p = Polynomial::new(vec![1.0, 2.0]); // 1 + 2x
        let q = Polynomial::new(vec![0.0, 1.0]); // x
        assert_eq!(p.add(&q).coeffs(), &[1.0, 3.0]);
        assert_eq!(p.mul(&q).coeffs(), &[0.0, 1.0, 2.0]);
        assert_eq!(p.scale(2.0).coeffs(), &[2.0, 4.0]);
        assert_eq!(p.derivative().coeffs(), &[2.0]);
        assert_eq!(p.eval(3.0), 7.0);
    }

    #[test]
    fn trailing_zero_trim() {
        let p = Polynomial::new(vec![1.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 0);
        assert_eq!(Polynomial::zero().degree(), 0);
        assert_eq!(Polynomial::monomial(3.0, 4).degree(), 4);
    }

    #[test]
    fn p_is_increasing_in_i_and_lambda() {
        for i in 1..10usize {
            assert!(gossip_p_eval(i + 1, 0.5) > gossip_p_eval(i, 0.5));
        }
        for w in 1..20 {
            let a = w as f64 / 20.0;
            let b = (w + 1) as f64 / 20.0;
            assert!(gossip_p_eval(5, b) >= gossip_p_eval(5, a));
        }
    }
}
