//! Derivative-free 1-D maximization.
//!
//! Theorem 5.1 asks for
//! `e(s) = max_{0<λ<1, f(λ)≤1} ℓ·(α − log₂ f(λ)) / log₂(1/λ)`.
//! The objective is smooth but not guaranteed unimodal for every separator,
//! so the robust strategy is a dense scan to locate the best bucket followed
//! by golden-section refinement inside it. The problems are tiny (scalar,
//! one per table cell), so robustness beats cleverness.

/// Result of a 1-D maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxResult {
    /// Argmax.
    pub x: f64,
    /// Maximum value.
    pub value: f64,
}

const INVPHI: f64 = 0.618_033_988_749_894_8; // 1/φ
const INVPHI2: f64 = 0.381_966_011_250_105_2; // 1/φ²

/// Golden-section search for the maximum of a *unimodal* function on
/// `[lo, hi]`. `iters` halvings of the golden kind (each shrinks the
/// interval by 1/φ); 100 iterations resolve any f64 interval.
pub fn golden_section_max(f: impl Fn(f64) -> f64, lo: f64, hi: f64, iters: usize) -> MaxResult {
    let (mut a, mut b) = (lo, hi);
    let mut h = b - a;
    let mut c = a + INVPHI2 * h;
    let mut d = a + INVPHI * h;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iters {
        if h <= f64::EPSILON * (a.abs() + b.abs()).max(1.0) {
            break;
        }
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            h = b - a;
            c = a + INVPHI2 * h;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            h = b - a;
            d = a + INVPHI * h;
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    MaxResult { x, value: f(x) }
}

/// Robust maximization on `[lo, hi]`: dense scan over `scan_points`
/// samples, then golden-section refinement on the bracket around the best
/// sample. Handles objectives that return `-∞`/NaN outside their feasible
/// region (infeasible samples are skipped).
pub fn maximize_scan_refine(
    f: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    scan_points: usize,
) -> MaxResult {
    assert!(scan_points >= 3, "need at least 3 scan points");
    assert!(hi > lo, "empty interval");
    let step = (hi - lo) / (scan_points - 1) as f64;
    let mut best_i = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for i in 0..scan_points {
        let x = lo + step * i as f64;
        let v = f(x);
        if v.is_finite() && v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    if best_v == f64::NEG_INFINITY {
        // Entirely infeasible: report the midpoint with -inf.
        return MaxResult {
            x: 0.5 * (lo + hi),
            value: f64::NEG_INFINITY,
        };
    }
    let a = lo + step * best_i.saturating_sub(1) as f64;
    let b = (lo + step * (best_i + 1) as f64).min(hi);
    // Guard the refinement against -inf plateaus at the bracket edges by
    // clamping the objective.
    let g = |x: f64| {
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::MIN
        }
    };
    let refined = golden_section_max(g, a, b, 100);
    if refined.value >= best_v {
        refined
    } else {
        MaxResult {
            x: lo + step * best_i as f64,
            value: best_v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn golden_parabola() {
        let r = golden_section_max(|x| -(x - 0.3) * (x - 0.3), 0.0, 1.0, 100);
        assert!(approx_eq(r.x, 0.3, 1e-9));
        assert!(r.value.abs() < 1e-16);
    }

    #[test]
    fn scan_refine_multimodal_picks_global() {
        // Two bumps; the higher one is at x = 0.8.
        let f = |x: f64| {
            (-(x - 0.2) * (x - 0.2) / 0.001).exp() + 2.0 * (-(x - 0.8) * (x - 0.8) / 0.001).exp()
        };
        let r = maximize_scan_refine(f, 0.0, 1.0, 2001);
        assert!(approx_eq(r.x, 0.8, 1e-6));
        assert!(approx_eq(r.value, 2.0, 1e-6));
    }

    #[test]
    fn scan_refine_with_infeasible_region() {
        // Objective only defined on [0, 0.5].
        let f = |x: f64| {
            if x > 0.5 {
                f64::NEG_INFINITY
            } else {
                x
            }
        };
        let r = maximize_scan_refine(f, 0.0, 1.0, 1001);
        assert!(approx_eq(r.x, 0.5, 1e-6));
        assert!(approx_eq(r.value, 0.5, 1e-6));
    }

    #[test]
    fn scan_refine_all_infeasible() {
        let r = maximize_scan_refine(|_| f64::NEG_INFINITY, 0.0, 1.0, 101);
        assert_eq!(r.value, f64::NEG_INFINITY);
    }

    #[test]
    fn golden_monotone_edge() {
        // Monotone increasing: max at right endpoint.
        let r = golden_section_max(|x| x, 0.0, 2.0, 200);
        assert!(approx_eq(r.x, 2.0, 1e-9));
    }
}
