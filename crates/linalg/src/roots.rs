//! Scalar root finding.
//!
//! Every characteristic equation in the paper — the general systolic
//! equation `λ·√(p_{⌈s/2⌉}(λ))·√(p_{⌊s/2⌋}(λ)) = 1` (Corollary 4.4), the
//! full-duplex chain `λ + λ² + ⋯ + λ^{s−1} = 1` (Lemma 6.1), the
//! broadcasting characteristic `x^d = x^{d−1} + ⋯ + 1` — is a monotone
//! scalar equation on an interval, so plain bisection is already
//! bulletproof; Brent's method is provided for speed and cross-checking.

/// Errors from the root finders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootError {
    /// `f(lo)` and `f(hi)` do not bracket a root (no sign change).
    NoBracket,
    /// The iteration budget was exhausted before reaching tolerance.
    NoConvergence,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NoBracket => write!(f, "interval endpoints do not bracket a root"),
            RootError::NoConvergence => write!(f, "root finder did not converge"),
        }
    }
}

impl std::error::Error for RootError {}

/// Finds the root of an *increasing* function on `[lo, hi]` by bisection.
///
/// Requires `f(lo) ≤ 0 ≤ f(hi)`. Runs a fixed number of halvings (enough to
/// resolve `f64`), so it cannot fail once the bracket holds.
pub fn bisect_increasing(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
) -> Result<f64, RootError> {
    let (mut lo, mut hi) = (lo, hi);
    let flo = f(lo);
    let fhi = f(hi);
    if flo > 0.0 || fhi < 0.0 {
        return Err(RootError::NoBracket);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    // 200 halvings resolve any f64 interval to the last ulp.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // interval no longer representable
        }
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Brent's method: bracketing root finder combining bisection, secant and
/// inverse quadratic interpolation. Works for any continuous `f` with a
/// sign change on `[a, b]`.
pub fn brent_root(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_iters: usize,
) -> Result<f64, RootError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(RootError::NoBracket);
    }
    // Ensure |f(b)| <= |f(a)|: b is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0_f64;
    for _ in 0..max_iters {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond1 = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::NoConvergence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect_increasing(|x| x * x - 2.0, 0.0, 2.0).unwrap();
        assert!(approx_eq(r, 2.0_f64.sqrt(), 1e-14));
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect_increasing(|x| x, 0.0, 1.0).unwrap(), 0.0);
        assert_eq!(bisect_increasing(|x| x - 1.0, 0.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert_eq!(
            bisect_increasing(|x| x + 10.0, 0.0, 1.0),
            Err(RootError::NoBracket)
        );
    }

    #[test]
    fn brent_matches_bisect_on_golden_ratio() {
        // 1/λ = golden ratio ⟺ λ² + λ − 1 = 0 on (0,1): λ = 0.6180339887…
        let f = |l: f64| l * l + l - 1.0;
        let b1 = bisect_increasing(f, 0.0, 1.0).unwrap();
        let b2 = brent_root(f, 0.0, 1.0, 1e-15, 200).unwrap();
        assert!(approx_eq(b1, 0.618_033_988_749_894_8, 1e-14));
        assert!(approx_eq(b1, b2, 1e-12));
    }

    #[test]
    fn brent_cubic() {
        // x³ = x² + x + 1 has its real root ("tribonacci constant") at
        // 1.839286755…; used by broadcasting c(3).
        let r = brent_root(|x| x * x * x - x * x - x - 1.0, 1.0, 2.0, 1e-15, 200).unwrap();
        assert!(approx_eq(r, 1.839_286_755_214_161, 1e-12));
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert_eq!(
            brent_root(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(RootError::NoBracket)
        );
    }

    #[test]
    fn brent_discontinuous_still_brackets() {
        // Brent on a step function converges to the jump location.
        let r = brent_root(|x| if x < 0.3 { -1.0 } else { 1.0 }, 0.0, 1.0, 1e-12, 500).unwrap();
        assert!((r - 0.3).abs() < 1e-9);
    }
}
