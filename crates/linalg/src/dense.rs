//! Row-major dense matrices over `f64`.
//!
//! Used for the paper's *local* matrices `Mx(λ)`, `Nx(λ)`, `Ox(λ)` (Section
//! 4, Figs. 1–3), which are small (a handful of activation blocks per
//! vertex), and for exhaustive cross-checks of the sparse code.

use crate::vector;

/// A dense `rows × cols` matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator function on `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds from nested rows; every inner slice must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Self::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows, good locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                vector::axpy(a, rrow, orow);
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len());
        (0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect()
    }

    /// `self + rhs`.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `a · self`.
    pub fn scale(&self, a: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| a * v).collect(),
        }
    }

    /// `true` if every entry is `≥ 0`.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&v| v >= 0.0)
    }

    /// `true` if the matrix is square and symmetric up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Entry-wise `self ≤ rhs` (the partial order of norm property 4).
    pub fn le_entrywise(&self, rhs: &Self, tol: f64) -> bool {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data.iter().zip(&rhs.data).all(|(a, b)| *a <= *b + tol)
    }

    /// Frobenius norm (`√Σ m_{ij}²`) — an upper bound on the spectral norm,
    /// handy for sanity checks.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Sum of entries of row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    /// Permutes rows by `perm` (row `i` of the result is row `perm[i]` of
    /// `self`). Used to test norm property 7 (permutation invariance).
    pub fn permute_rows(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rows);
        Self::from_fn(self.rows, self.cols, |i, j| self[(perm[i], j)])
    }

    /// Permutes columns by `perm` (column `j` of the result is column
    /// `perm[j]` of `self`).
    pub fn permute_cols(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.cols);
        Self::from_fn(self.rows, self.cols, |i, j| self[(i, perm[j])])
    }

    /// Places `blocks` on the diagonal of an otherwise-zero matrix
    /// (norm property 8: `‖diag(M₁,…,M_k)‖ = maxᵢ ‖Mᵢ‖`).
    pub fn block_diag(blocks: &[DenseMatrix]) -> Self {
        let rows = blocks.iter().map(|b| b.rows).sum();
        let cols = blocks.iter().map(|b| b.cols).sum();
        let mut out = Self::zeros(rows, cols);
        let (mut r0, mut c0) = (0, 0);
        for b in blocks {
            for i in 0..b.rows {
                for j in 0..b.cols {
                    out[(r0 + i, c0 + j)] = b[(i, j)];
                }
            }
            r0 += b.rows;
            c0 += b.cols;
        }
        out
    }

    /// Pretty multi-line rendering with a fixed precision, for the
    /// figure-reproduction binaries.
    pub fn render(&self, precision: usize) -> String {
        let mut s = String::new();
        for i in 0..self.rows {
            s.push_str("[ ");
            for j in 0..self.cols {
                let v = self[(i, j)];
                if v == 0.0 {
                    s.push_str(&format!("{:>w$} ", ".", w = precision + 3));
                } else {
                    s.push_str(&format!("{:>w$.p$} ", v, w = precision + 3, p = precision));
                }
            }
            s.push_str("]\n");
        }
        s
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
    }

    #[test]
    fn index_and_row() {
        let m = sample();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 1)], 3.0);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let id = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            DenseMatrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]])
        );
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let x = vec![1.0, -1.0];
        assert_eq!(a.matvec(&x), vec![-1.0, -1.0]);
    }

    #[test]
    fn add_scale() {
        let a = sample();
        let s = a.add(&a);
        assert_eq!(s, a.scale(2.0));
    }

    #[test]
    fn symmetry_checks() {
        let sym = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]);
        assert!(sym.is_symmetric(0.0));
        assert!(!sample().is_symmetric(0.0));
        // Non-square is never symmetric.
        assert!(!DenseMatrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn frobenius_and_max_abs() {
        let m = sample();
        assert!((m.frobenius() - (30.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn block_diag_layout() {
        let a = DenseMatrix::from_rows(&[vec![1.0]]);
        let b = DenseMatrix::from_rows(&[vec![2.0, 3.0], vec![4.0, 5.0]]);
        let d = DenseMatrix::block_diag(&[a, b]);
        assert_eq!(d.rows(), 3);
        assert_eq!(d.cols(), 3);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(2, 2)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(2, 0)], 0.0);
    }

    #[test]
    fn permutations_preserve_multiset() {
        let m = sample();
        let p = m.permute_rows(&[1, 0]).permute_cols(&[1, 0]);
        assert_eq!(p[(0, 0)], 4.0);
        assert_eq!(p[(1, 1)], 1.0);
    }

    #[test]
    fn entrywise_order() {
        let m = sample();
        let bigger = m.scale(2.0);
        assert!(m.le_entrywise(&bigger, 0.0));
        assert!(!bigger.le_entrywise(&m, 0.0));
    }

    #[test]
    fn render_marks_zeros() {
        let m = DenseMatrix::zeros(1, 2);
        let r = m.render(2);
        assert!(r.contains('.'));
    }
}
