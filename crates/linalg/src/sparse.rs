//! Compressed sparse row (CSR) matrices over `f64`.
//!
//! The delay matrix `M(λ)` of a gossip protocol (Definition 3.4) has one row
//! and column per *activation* `(x, y, i)` and a nonzero only when two
//! activations are consecutive around a common vertex within a systolic
//! period — typically a handful of nonzeros per row regardless of the
//! network size. CSR with a transpose kept alongside makes the
//! `x ↦ Mᵀ(Mx)` product of power iteration cheap.

use crate::dense::DenseMatrix;

/// Triplet accumulator used to build a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are *summed*, matching the usual COO→CSR
/// convention.
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// New builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Records `m[row, col] += val`.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.entries.push((row as u32, col as u32, val));
    }

    /// Number of recorded (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalizes into CSR form, summing duplicates and dropping exact zeros.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(self.entries.len());
        row_ptr.push(0u32);
        let mut cur_row = 0usize;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, _) = self.entries[i];
            while cur_row < r as usize {
                row_ptr.push(col_idx.len() as u32);
                cur_row += 1;
            }
            // Merge the run of identical (r, c).
            let mut sum = 0.0;
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                sum += self.entries[i].2;
                i += 1;
            }
            if sum != 0.0 {
                col_idx.push(c);
                vals.push(sum);
            }
        }
        while cur_row < self.rows {
            row_ptr.push(col_idx.len() as u32);
            cur_row += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

/// An immutable CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CooBuilder::new(rows, cols).build()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterator over the `(col, val)` pairs of row `i`.
    #[inline]
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i] as usize;
        let hi = self.row_ptr[i + 1] as usize;
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.vals[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Value at `(i, j)` (zero when not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row_entries(i)
            .find(|&(c, _)| c == j)
            .map_or(0.0, |(_, v)| v)
    }

    /// `y ← A·x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.vals[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        }
    }

    /// `y ← Aᵀ·x` without materializing the transpose.
    pub fn matvec_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            for k in lo..hi {
                y[self.col_idx[k] as usize] += self.vals[k] * xi;
            }
        }
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut b = CooBuilder::new(self.cols, self.rows);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                b.push(j, i, v);
            }
        }
        b.build()
    }

    /// Dense copy (small matrices / tests only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                d[(i, j)] = v;
            }
        }
        d
    }

    /// Builds from a dense matrix, keeping nonzero entries.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut b = CooBuilder::new(d.rows(), d.cols());
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                let v = d[(i, j)];
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    /// `true` if every stored value is `≥ 0`.
    pub fn is_nonnegative(&self) -> bool {
        self.vals.iter().all(|&v| v >= 0.0)
    }

    /// Largest stored absolute value.
    pub fn max_abs(&self) -> f64 {
        self.vals.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Maximum row sum (`‖A‖_∞` for nonnegative matrices) — a cheap upper
    /// bound on the spectral radius used to bracket power iteration.
    pub fn max_row_sum(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row_entries(i).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Maximum column (absolute) sum, `‖A‖₁`.
    pub fn max_col_sum(&self) -> f64 {
        let mut sums = vec![0.0_f64; self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                sums[j] += v.abs();
            }
        }
        sums.into_iter().fold(0.0_f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 1, 2.0);
        b.push(1, 2, 3.0);
        b.push(2, 0, 4.0);
        b.push(0, 1, 1.0); // duplicate, should sum to 3.0
        b.build()
    }

    #[test]
    fn duplicates_are_summed() {
        let m = sample();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn exact_zero_sums_are_dropped() {
        let mut b = CooBuilder::new(1, 1);
        b.push(0, 0, 5.0);
        b.push(0, 0, -5.0);
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        let mut y = vec![0.0; 3];
        m.matvec(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0, 4.0]);
    }

    #[test]
    fn matvec_transpose_matches_materialized() {
        let m = sample();
        let t = m.transpose();
        let x = vec![1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        m.matvec_transpose(&x, &mut y1);
        t.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d);
        assert_eq!(m, back);
    }

    #[test]
    fn empty_rows_have_valid_pointers() {
        let mut b = CooBuilder::new(4, 4);
        b.push(3, 3, 1.0);
        let m = b.build();
        assert_eq!(m.row_entries(0).count(), 0);
        assert_eq!(m.row_entries(2).count(), 0);
        assert_eq!(m.get(3, 3), 1.0);
    }

    #[test]
    fn norms_bounds() {
        let m = sample();
        assert_eq!(m.max_row_sum(), 4.0);
        assert_eq!(m.max_col_sum(), 4.0);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_nonnegative());
    }

    #[test]
    fn zero_matrix() {
        let z = CsrMatrix::zeros(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 5);
        let mut y = vec![1.0; 2];
        z.matvec(&[1.0; 5], &mut y);
        assert_eq!(y, vec![0.0, 0.0]);
    }
}
