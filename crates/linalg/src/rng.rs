//! A tiny, deterministic xorshift64* generator.
//!
//! Power iteration needs a "generic" starting vector; any vector with a
//! nonzero component along the dominant eigenvector works, and for the
//! nonnegative matrices this workspace cares about a strictly positive
//! vector is guaranteed generic. We still perturb the all-ones vector with a
//! cheap deterministic stream so that symmetric structures cannot place the
//! start exactly orthogonal to the dominant eigenspace of a *signed* test
//! matrix. Using our own generator keeps `rand` out of the hot path and
//! makes every numeric result byte-reproducible.

/// Deterministic xorshift64* stream.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a stream from a nonzero seed (a zero seed is mapped to a
    /// fixed odd constant, as xorshift has a zero fixpoint).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        // Must not get stuck at zero.
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = XorShift64::new(99);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = XorShift64::new(1234);
        let mut buckets = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[(r.next_f64() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            // Each bucket should be within 10% of n/10.
            assert!((b as f64 - n as f64 / 10.0).abs() < n as f64 / 100.0);
        }
    }
}
