//! Dense vector helpers shared by the norm and matrix code.

/// Euclidean (L2) norm of a vector.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Dot product; the slices must have equal length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Scales `x` in place so that `‖x‖₂ = 1`; returns the former norm.
///
/// A zero vector is left untouched and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
    n
}

/// `y ← y + a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Maximum absolute component (`‖x‖_∞`).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Component-wise `x ≤ y` check with a tolerance, used for the paper's
/// semi-eigenvector inequality `Mx ≤ e·x` (Definition 2.2).
pub fn le_componentwise(x: &[f64], y: &[f64], tol: f64) -> bool {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).all(|(a, b)| *a <= *b + tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_dot() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        let old = normalize(&mut v);
        assert_eq!(old, 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn inf_norm() {
        assert_eq!(norm_inf(&[-4.0, 2.0, 3.0]), 4.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn componentwise_le() {
        assert!(le_componentwise(&[1.0, 2.0], &[1.0, 2.5], 1e-12));
        assert!(!le_componentwise(&[1.1, 2.0], &[1.0, 2.5], 1e-12));
        assert!(le_componentwise(&[1.0 + 1e-13, 2.0], &[1.0, 2.0], 1e-12));
    }
}
