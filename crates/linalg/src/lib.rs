//! Linear-algebra substrate for the systolic-gossip reproduction.
//!
//! The lower-bound technique of Flammini & Pérennès (Section 2 of the paper)
//! relies on a small set of classical facts about the Euclidean matrix norm
//! of nonnegative matrices:
//!
//! * `‖M‖₂ = √ρ(MᵀM)` where `ρ` is the spectral radius,
//! * nonnegative monotonicity (`M ≤ N ⇒ ‖M‖ ≤ ‖N‖`),
//! * sub-multiplicativity and the triangle inequality,
//! * block-diagonal decomposition (`‖M‖ = maxᵢ ‖Mᵢ‖`),
//! * positive *semi-eigenvectors* (`Mx ≤ e·x` with `x > 0` implies
//!   `ρ(M) ≤ e`, Lemma 2.1).
//!
//! This crate implements exactly what the paper needs, from scratch:
//! dense and CSR sparse matrices over `f64`, power iteration for spectral
//! norms and radii of nonnegative matrices, the gossip polynomials
//! `p_i(λ) = 1 + λ² + ⋯ + λ^{2i−2}`, robust scalar root finding
//! (bisection and Brent) and derivative-free 1-D maximization.
//!
//! Everything is deterministic: random starting vectors for power iteration
//! use a seeded [xorshift](rng::XorShift64) generator so that test failures
//! reproduce.

pub mod dense;
pub mod norm;
pub mod optimize;
pub mod poly;
pub mod rng;
pub mod roots;
pub mod sparse;
pub mod vector;

pub use dense::DenseMatrix;
pub use norm::{spectral_norm_dense, spectral_norm_sparse, spectral_radius_dense, PowerIterOpts};
pub use optimize::{golden_section_max, maximize_scan_refine};
pub use poly::{gossip_p, gossip_p_eval, Polynomial};
pub use roots::{bisect_increasing, brent_root, RootError};
pub use sparse::{CooBuilder, CsrMatrix};

/// Convenience alias used across the workspace: `log₂`.
#[inline]
pub fn log2(x: f64) -> f64 {
    x.log2()
}

/// Machine-precision-ish comparison helper used across the workspace tests.
///
/// Returns `true` if `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser), the standard mixed criterion.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(0.0, 0.0, 1e-15));
    }

    #[test]
    fn log2_matches_std() {
        assert!(approx_eq(log2(8.0), 3.0, 1e-12));
        assert!(approx_eq(log2(1.0 / 0.618_034), 0.694_242, 1e-5));
    }
}
