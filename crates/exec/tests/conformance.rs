//! Fault-free conformance against the lockstep simulator.
//!
//! With an empty fault plan, the driver's completion round must equal
//! `sg_sim`'s `completed_at` exactly: sends are computed from
//! beginning-of-round knowledge (the Definition 3.1 snapshot), delta
//! suppression only ever removes items the receiver already holds, and
//! zero-delay messages merge at the end of their sending round. The
//! registry-wide sweep lives in `sg-scenario` (`tests/
//! exec_conformance.rs`); this suite pins the mechanism on the protocol
//! zoo directly.

use sg_exec::{execute_protocol, DriverConfig, FaultPlan};
use sg_sim::run_systolic;
use systolic_gossip::Network;

#[test]
fn fault_free_execution_matches_the_simulator_exactly() {
    let zoo = [
        Network::Path { n: 8 },
        Network::Path { n: 13 },
        Network::Cycle { n: 8 },
        Network::Cycle { n: 15 },
        Network::Hypercube { k: 3 },
        Network::Hypercube { k: 5 },
        Network::Knodel { delta: 3, n: 8 },
        Network::Knodel { delta: 4, n: 16 },
        Network::Torus2d { w: 4, h: 4 },
        Network::Grid2d { w: 5, h: 4 },
        Network::DeBruijn { d: 2, dd: 4 },
        Network::CubeConnectedCycles { k: 3 },
        Network::WrappedButterfly { d: 2, dd: 3 },
        Network::Complete { n: 9 },
        Network::DaryTree { d: 2, h: 3 },
    ];
    let mut checked = 0;
    for net in zoo {
        let g = net.build();
        let n = g.vertex_count();
        let Some(sp) = net.reference_protocol() else {
            continue;
        };
        sp.validate(&g).expect("reference protocols validate");
        let budget = 40 * n + 200;
        let sim = run_systolic(&sp, n, budget, true);
        let report = execute_protocol(
            &sp,
            n,
            FaultPlan::fault_free(),
            DriverConfig {
                threads: 1,
                max_rounds: budget as u64,
                record_events: false,
            },
        );
        let expected = sim.completed_at.map(|t| t as u64);
        assert_eq!(
            report.completed_at,
            expected,
            "{}: driver vs simulator rounds",
            net.name()
        );
        assert_eq!(report.dropped + report.delayed + report.lost_crash, 0);
        // Every curve point the simulator saw, the fleet saw too: the
        // executed knowledge evolution is identical round for round.
        let sim_curve: Vec<u32> = sim.trace.iter().map(|&m| m as u32).collect();
        let driven = report.min_curve.len().min(sim_curve.len());
        assert_eq!(
            &report.min_curve[..driven],
            &sim_curve[..driven],
            "{}: knowledge curves diverge",
            net.name()
        );
        checked += 1;
    }
    assert!(checked >= 14, "only {checked} networks exercised");
}

#[test]
fn fault_free_threaded_runs_match_sequential() {
    let net = Network::Hypercube { k: 5 };
    let n = net.build().vertex_count();
    let sp = net.reference_protocol().unwrap();
    let base = execute_protocol(
        &sp,
        n,
        FaultPlan::fault_free(),
        DriverConfig {
            threads: 1,
            max_rounds: 1000,
            record_events: true,
        },
    );
    for threads in [2, 8] {
        let got = execute_protocol(
            &sp,
            n,
            FaultPlan::fault_free(),
            DriverConfig {
                threads,
                max_rounds: 1000,
                record_events: true,
            },
        );
        assert_eq!(base, got, "threads = {threads}");
    }
}
