//! Wire-transport differential: a node served over a byte-stream (TCP
//! loopback) or channel transport behaves byte-identically to the same
//! node stepped in-process.

use sg_exec::{
    drive_round, encode, node_schedules, serve_node, ChannelTransport, LineTransport, Msg, Node,
    SystolicNode, Transport,
};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use systolic_gossip::Network;

/// Drives vertex `watched` of `net` for `rounds` rounds over transport
/// `t`, feeding it exactly the deliveries an in-process fleet produces,
/// and returns the wire node's per-round sends.
fn drive_watched<T: Transport>(
    t: &mut T,
    net: &Network,
    watched: u32,
    rounds: u64,
) -> Vec<Vec<Msg>> {
    let g = net.build();
    let n = g.vertex_count();
    let sp = net.reference_protocol().expect("reference protocol");
    let schedules = node_schedules(&sp, n);

    // The in-process fleet runs every vertex; the wire node plays
    // `watched` and must produce identical sends given identical input.
    let mut fleet: Vec<SystolicNode> = (0..n)
        .map(|v| SystolicNode::new(v as u32, n as u32, schedules[v].clone()))
        .collect();
    t.send(&fleet[watched as usize].init_msg()).unwrap();

    let mut wire_sends = Vec::new();
    for r in 0..rounds {
        let mut outs: Vec<Vec<Msg>> = fleet.iter_mut().map(|nd| nd.on_round(r)).collect();
        let to_watched: Vec<Msg> = outs
            .iter()
            .flatten()
            .filter(|m| m.dest() == Some(watched))
            .cloned()
            .collect();
        let (dones, sends): (Vec<Msg>, Vec<Msg>) = drive_round(t, r, &to_watched)
            .unwrap()
            .into_iter()
            .partition(|m| matches!(m, Msg::Done { .. }));
        // The wire node announces `done` asynchronously right after the
        // completing delivery; the in-process driver collects it via
        // `take_done` instead, so it is compared separately.
        for d in &dones {
            assert_eq!(d.src(), watched);
        }
        assert_eq!(
            sends, outs[watched as usize],
            "round {r}: wire and in-process sends diverge"
        );
        wire_sends.push(sends);
        // Deliver everything fleet-internally too.
        let deliveries: Vec<Msg> = outs.iter_mut().flat_map(std::mem::take).collect();
        for msg in deliveries {
            let to = msg.dest().unwrap() as usize;
            fleet[to].on_message(&msg);
        }
        for nd in &mut fleet {
            nd.end_round(r + 1);
        }
    }
    t.send(&Msg::Done {
        from: u32::MAX,
        round: rounds,
        count: 0,
    })
    .unwrap();
    wire_sends
}

#[test]
fn channel_served_node_matches_in_process() {
    let (mut driver_side, mut node_side) = ChannelTransport::pair();
    let handle = std::thread::spawn(move || serve_node(&mut node_side));
    let sends = drive_watched(&mut driver_side, &Network::Hypercube { k: 3 }, 3, 12);
    drop(driver_side);
    handle.join().unwrap().unwrap();
    assert!(
        sends.iter().any(|s| !s.is_empty()),
        "the watched vertex must actually send"
    );
}

#[test]
fn tcp_served_node_matches_in_process() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut t = LineTransport::new(reader, stream);
        serve_node(&mut t)
    });
    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    let mut t = LineTransport::new(reader, stream);
    let sends = drive_watched(&mut t, &Network::Knodel { delta: 3, n: 8 }, 5, 10);
    drop(t);
    server.join().unwrap().unwrap();
    assert!(sends.iter().any(|s| !s.is_empty()));
}

#[test]
fn wire_node_announces_done_over_the_transport() {
    // P_2: one exchange completes both vertices; the wire node must
    // push its `done` line without being asked.
    let net = Network::Path { n: 2 };
    let sp = net.reference_protocol().unwrap();
    let schedules = node_schedules(&sp, 2);
    let (mut driver_side, mut node_side) = ChannelTransport::pair();
    let handle = std::thread::spawn(move || serve_node(&mut node_side));
    let node1 = SystolicNode::new(1, 2, schedules[1].clone());
    driver_side.send(&node1.init_msg()).unwrap();
    let _ = drive_round(
        &mut driver_side,
        0,
        &[Msg::Gossip {
            from: 0,
            to: 1,
            seq: 0,
            items: vec![0],
        }],
    )
    .unwrap();
    let done = driver_side.recv().unwrap().expect("done line");
    assert_eq!(
        done,
        Msg::Done {
            from: 1,
            round: 1,
            count: 2
        },
        "wire line was {}",
        encode(&done)
    );
    driver_side
        .send(&Msg::Done {
            from: u32::MAX,
            round: 1,
            count: 0,
        })
        .unwrap();
    handle.join().unwrap().unwrap();
}
