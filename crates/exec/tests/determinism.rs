//! Same seed + same fault plan ⇒ byte-identical event trace and report
//! at any thread count — the determinism bar of `sg-search`.

use sg_exec::{execute_protocol, Crash, DriverConfig, FaultPlan};
use systolic_gossip::Network;

fn faulty_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_prob: 0.08,
        max_delay: 2,
        crashes: vec![
            Crash {
                node: 0,
                at_round: 2,
                restart_round: Some(6),
            },
            Crash {
                node: 5,
                at_round: 4,
                restart_round: Some(9),
            },
        ],
    }
}

#[test]
fn faulty_runs_are_bit_identical_across_thread_counts() {
    for net in [
        Network::Hypercube { k: 4 },
        Network::Knodel { delta: 4, n: 16 },
        Network::Cycle { n: 12 },
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let sp = net.reference_protocol().expect("reference protocol");
        let reports: Vec<_> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                execute_protocol(
                    &sp,
                    n,
                    faulty_plan(1997),
                    DriverConfig {
                        threads,
                        max_rounds: 4000,
                        record_events: true,
                    },
                )
            })
            .collect();
        let completed = reports[0].completed_at;
        assert!(
            completed.is_some(),
            "{}: faulty run should still complete",
            net.name()
        );
        assert!(
            !reports[0].events.is_empty(),
            "{}: trace recorded",
            net.name()
        );
        for r in &reports[1..] {
            assert_eq!(reports[0], *r, "{}: reports diverged", net.name());
            assert_eq!(
                reports[0].render(),
                r.render(),
                "{}: rendered reports diverged",
                net.name()
            );
        }
    }
}

#[test]
fn different_seeds_give_different_fault_patterns() {
    let net = Network::Hypercube { k: 4 };
    let n = net.build().vertex_count();
    let sp = net.reference_protocol().unwrap();
    let cfg = DriverConfig {
        threads: 1,
        max_rounds: 4000,
        record_events: true,
    };
    let a = execute_protocol(&sp, n, faulty_plan(1), cfg);
    let b = execute_protocol(&sp, n, faulty_plan(2), cfg);
    assert_ne!(a.events, b.events, "seeds must matter");
}

#[test]
fn faults_cost_rounds_but_never_correctness() {
    let net = Network::Knodel { delta: 4, n: 16 };
    let n = net.build().vertex_count();
    let sp = net.reference_protocol().unwrap();
    let cfg = DriverConfig {
        threads: 2,
        max_rounds: 4000,
        record_events: false,
    };
    let clean = execute_protocol(&sp, n, FaultPlan::fault_free(), cfg);
    let lossy = execute_protocol(&sp, n, FaultPlan::lossy(7, 0.10), cfg);
    let (c, l) = (
        clean.completed_at.expect("clean completes"),
        lossy.completed_at.expect("lossy completes"),
    );
    assert!(l >= c, "losing messages cannot speed gossip up ({l} < {c})");
    assert!(lossy.dropped > 0, "10% drops on a real run must fire");
    assert!(
        lossy.retransmissions > 0,
        "dropped deltas must be retransmitted by the repeating period"
    );
    assert_eq!(lossy.divergence(c), Some(l as i64 - c as i64));
    // Every node announced completion exactly once.
    assert_eq!(clean.done_msgs, n as u64);
    assert_eq!(lossy.done_msgs, n as u64);
}
