//! The per-run execution report.

/// Everything one driver run produced. Deliberately free of any
/// "how it was run" detail (thread count, wall-clock): the determinism
/// suite compares whole reports byte-for-byte across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Network order (= item count).
    pub n: usize,
    /// Systolic period of the executed protocol.
    pub s: usize,
    /// 1-based round after which every node held all items, `None` if
    /// the round budget ran out first.
    pub completed_at: Option<u64>,
    /// Rounds actually driven.
    pub rounds_run: u64,
    /// Gossip messages handed to the transport.
    pub gossip_sent: u64,
    /// Ack messages handed to the transport.
    pub acks_sent: u64,
    /// Messages the fault plan dropped.
    pub dropped: u64,
    /// Messages the fault plan delayed by ≥ 1 round.
    pub delayed: u64,
    /// Messages delivered to a live node.
    pub delivered: u64,
    /// Messages lost because the destination was crashed at delivery.
    pub lost_crash: u64,
    /// Gossip sends that repeated at least one already-sent item.
    pub retransmissions: u64,
    /// `done` announcements collected from the fleet.
    pub done_msgs: u64,
    /// Minimum items-known across the fleet after each round.
    pub min_curve: Vec<u32>,
    /// Ordered event trace (only when the driver records events).
    pub events: Vec<String>,
}

impl RunReport {
    /// Extra rounds over the fault-free optimum `optimum`; `None` until
    /// the run completed.
    pub fn divergence(&self, optimum: u64) -> Option<i64> {
        self.completed_at.map(|t| t as i64 - optimum as i64)
    }

    /// The report as a stable human-readable block. Byte-identical for
    /// byte-identical runs — the determinism suite compares this string.
    pub fn render(&self) -> String {
        let mut out = format!(
            "n = {}, s = {}: {} after {} rounds\n",
            self.n,
            self.s,
            match self.completed_at {
                Some(t) => format!("completed at round {t}"),
                None => "did not complete".to_string(),
            },
            self.rounds_run,
        );
        out.push_str(&format!(
            "  gossip {} (retransmitted {}), acks {}, delivered {}, \
             dropped {}, delayed {}, lost-to-crash {}, done {}\n",
            self.gossip_sent,
            self.retransmissions,
            self.acks_sent,
            self.delivered,
            self.dropped,
            self.delayed,
            self.lost_crash,
            self.done_msgs,
        ));
        for e in &self.events {
            out.push_str("  ");
            out.push_str(e);
            out.push('\n');
        }
        out
    }
}
