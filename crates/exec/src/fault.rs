//! Declarative fault plans with counter-based deterministic sampling.
//!
//! Every fault decision is a pure function of `(seed, round, from, to,
//! seq)` through a splitmix64-style mix — there is no shared mutable
//! RNG stream — so a run's faults do not depend on the order the driver
//! evaluates them in. That is what makes same-seed runs bit-identical
//! at any thread count (the determinism bar of `sg-search`).

use crate::message::NodeId;

/// One node crash: the node goes down at the *start* of `at_round` and
/// (optionally) comes back at the start of `restart_round`, knowledge
/// intact (a warm restart). While down it sends nothing, and every
/// message addressed to it is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashing vertex.
    pub node: NodeId,
    /// First round the node is down.
    pub at_round: u64,
    /// First round the node is back up; `None` = down forever.
    pub restart_round: Option<u64>,
}

/// A declarative fault plan the driver injects from.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed of the counter-based samplers.
    pub seed: u64,
    /// Per-message drop probability on every link, in `[0, 1]`.
    pub drop_prob: f64,
    /// Extra delivery delay, uniform over `0..=max_delay` rounds
    /// (`0` = always delivered in the sending round, the fault-free
    /// timing).
    pub max_delay: u32,
    /// Scheduled crash/restart events.
    pub crashes: Vec<Crash>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::fault_free()
    }
}

/// Mixes the fault-decision counter into a uniform 64-bit word.
fn mix(seed: u64, round: u64, from: NodeId, to: NodeId, seq: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.wrapping_add(1)))
        .wrapping_add(round.wrapping_mul(0xD6E8_FEB8_6659_FD93))
        .wrapping_add(u64::from(from) << 32 | u64::from(to))
        .wrapping_add(seq.wrapping_mul(0xA076_1D64_78BD_642F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// No faults at all: the conformance configuration.
    pub fn fault_free() -> Self {
        Self {
            seed: 0,
            drop_prob: 0.0,
            max_delay: 0,
            crashes: Vec::new(),
        }
    }

    /// A seeded lossy-link plan: every message dropped independently
    /// with probability `drop_prob`.
    pub fn lossy(seed: u64, drop_prob: f64) -> Self {
        Self {
            seed,
            drop_prob,
            max_delay: 0,
            crashes: Vec::new(),
        }
    }

    /// `true` when the plan injects nothing — the driver then must
    /// reproduce the lockstep simulator exactly.
    pub fn is_fault_free(&self) -> bool {
        self.drop_prob <= 0.0 && self.max_delay == 0 && self.crashes.is_empty()
    }

    /// Should the message `(from, to, seq)` sent in `round` be dropped?
    pub fn drops(&self, round: u64, from: NodeId, to: NodeId, seq: u64) -> bool {
        if self.drop_prob <= 0.0 {
            return false;
        }
        if self.drop_prob >= 1.0 {
            return true;
        }
        let r = mix(self.seed, round, from, to, seq, 0xD0);
        // Top 53 bits → uniform in [0, 1).
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        u < self.drop_prob
    }

    /// Extra delivery delay (in rounds) for the message `(from, to,
    /// seq)` sent in `round`.
    pub fn delay(&self, round: u64, from: NodeId, to: NodeId, seq: u64) -> u32 {
        if self.max_delay == 0 {
            return 0;
        }
        let r = mix(self.seed, round, from, to, seq, 0xDE);
        (r % u64::from(self.max_delay + 1)) as u32
    }

    /// Is `node` down during `round`?
    pub fn down_at(&self, node: NodeId, round: u64) -> bool {
        self.crashes.iter().any(|c| {
            c.node == node && round >= c.at_round && c.restart_round.is_none_or(|r| round < r)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plan_injects_nothing() {
        let p = FaultPlan::fault_free();
        assert!(p.is_fault_free());
        for seq in 0..100 {
            assert!(!p.drops(seq, 0, 1, seq));
            assert_eq!(p.delay(seq, 0, 1, seq), 0);
            assert!(!p.down_at(0, seq));
        }
    }

    #[test]
    fn drop_sampling_is_a_pure_function_of_the_counter() {
        let p = FaultPlan::lossy(42, 0.3);
        let a: Vec<bool> = (0..200).map(|s| p.drops(3, 1, 2, s)).collect();
        let b: Vec<bool> = (0..200).map(|s| p.drops(3, 1, 2, s)).collect();
        assert_eq!(a, b);
        let dropped = a.iter().filter(|&&d| d).count();
        assert!((20..=110).contains(&dropped), "{dropped} of 200 at p=0.3");
        // A different seed gives a different pattern.
        let c: Vec<bool> = (0..200)
            .map(|s| FaultPlan::lossy(43, 0.3).drops(3, 1, 2, s))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn delay_sampling_stays_in_range() {
        let p = FaultPlan {
            seed: 7,
            drop_prob: 0.0,
            max_delay: 3,
            crashes: Vec::new(),
        };
        let mut seen = [false; 4];
        for s in 0..400 {
            let d = p.delay(s, 0, 1, s);
            assert!(d <= 3);
            seen[d as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "all delays realized: {seen:?}");
    }

    #[test]
    fn crash_windows_honor_restart() {
        let p = FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            max_delay: 0,
            crashes: vec![
                Crash {
                    node: 3,
                    at_round: 2,
                    restart_round: Some(5),
                },
                Crash {
                    node: 4,
                    at_round: 1,
                    restart_round: None,
                },
            ],
        };
        assert!(!p.down_at(3, 1));
        assert!(p.down_at(3, 2));
        assert!(p.down_at(3, 4));
        assert!(!p.down_at(3, 5));
        assert!(p.down_at(4, 100));
        assert!(!p.down_at(0, 2));
    }
}
