//! The [`Node`] trait and its systolic implementation.
//!
//! A [`SystolicNode`] runs one vertex of a compiled schedule: each round
//! it sends on its scheduled arcs — but only the items it believes the
//! target is still missing (`others_know`) — merges whatever arrived,
//! and acknowledges received gossip with a knowledge summary. Because
//! the systolic period repeats forever, an arc whose message was dropped
//! simply fires again next period and re-sends the un-acknowledged
//! delta: the schedule itself is the retransmission loop, bounded by
//! `others_know` so traffic stops as soon as the estimates catch up.
//!
//! `others_know[v]` is only ever updated from messages `v` actually
//! produced (its acks and its gossip), so it is always a sound
//! *underestimate* of `v`'s knowledge. Two consequences the tests lean
//! on: a suppressed item is always one the target already holds (so
//! fault-free execution is knowledge-for-knowledge identical to the
//! lockstep simulator), and an empty delta proves the target knows
//! everything the sender does (so suppression can never deadlock a run).

use crate::message::{Msg, NodeId};
use sg_protocol::protocol::SystolicProtocol;

/// A fixed-width item bitset: one bit per gossip item.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn set(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }

    fn or(&mut self, other: &Bits) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Items of `self` absent from `mask`, in increasing order.
    fn minus(&self, mask: &Bits) -> Vec<u32> {
        let mut out = Vec::new();
        for (wi, (w, m)) in self.words.iter().zip(&mask.words).enumerate() {
            let mut diff = w & !m;
            while diff != 0 {
                let b = diff.trailing_zeros();
                out.push(wi as u32 * 64 + b);
                diff &= diff - 1;
            }
        }
        out
    }

    fn intersects(&self, other: &Bits) -> bool {
        self.words.iter().zip(&other.words).any(|(w, o)| w & o != 0)
    }

    /// All set items, in increasing order.
    fn items(&self) -> Vec<u32> {
        let empty = Bits::new(self.words.len() * 64);
        self.minus(&empty)
    }
}

/// One vertex of the executed network.
///
/// The driver calls [`Node::on_round`] with beginning-of-round state
/// (sends are computed *before* the round's deliveries, matching the
/// Definition 3.1 snapshot semantics of the simulator), then delivers
/// the round's arrivals through [`Node::on_message`].
pub trait Node: Send {
    /// The vertex this node runs.
    fn id(&self) -> NodeId;
    /// Produces the round's outgoing messages: queued acks first, then
    /// the scheduled gossip sends.
    fn on_round(&mut self, round: u64) -> Vec<Msg>;
    /// Delivers one routed message (gossip or ack).
    fn on_message(&mut self, msg: &Msg);
    /// End-of-round bookkeeping after the round's deliveries: stamps
    /// completion with `round` so the `done` announcement carries the
    /// round it actually happened in.
    fn end_round(&mut self, round: u64);
    /// The `done` announcement, yielded exactly once after the node
    /// first holds all items.
    fn take_done(&mut self) -> Option<Msg>;
    /// Gossip sends that repeated at least one already-sent item.
    fn retransmissions(&self) -> u64 {
        0
    }
    /// `true` once the node holds all `n` items.
    fn is_complete(&self) -> bool;
    /// Number of items currently held.
    fn items_known(&self) -> u32;
}

/// Per-target estimate state of a [`SystolicNode`].
#[derive(Debug, Clone)]
struct TargetState {
    target: NodeId,
    /// Sound underestimate of the target's knowledge.
    known: Bits,
    /// Items already sent to the target at least once.
    sent: Bits,
}

/// The systolic [`Node`]: one vertex of a compiled [`SystolicProtocol`].
#[derive(Debug, Clone)]
pub struct SystolicNode {
    id: NodeId,
    n: u32,
    /// `schedule[i]` = targets of round `i mod s`.
    schedule: Vec<Vec<NodeId>>,
    knowledge: Bits,
    /// One entry per distinct scheduled target, sorted by target id.
    targets: Vec<TargetState>,
    /// Acks queued during delivery, flushed with the next round's sends.
    pending: Vec<Msg>,
    seq: u64,
    done: Option<Msg>,
    complete_at: Option<u64>,
    /// Gossip sends that repeated at least one already-sent item.
    retransmissions: u64,
}

impl SystolicNode {
    /// Builds the node for vertex `id` of an order-`n` network with the
    /// given per-round-in-period send targets.
    pub fn new(id: NodeId, n: u32, schedule: Vec<Vec<NodeId>>) -> Self {
        let mut knowledge = Bits::new(n as usize);
        knowledge.set(id);
        let mut target_ids: Vec<NodeId> = schedule.iter().flatten().copied().collect();
        target_ids.sort_unstable();
        target_ids.dedup();
        let targets = target_ids
            .into_iter()
            .map(|target| TargetState {
                target,
                known: {
                    // Every vertex starts knowing its own item.
                    let mut b = Bits::new(n as usize);
                    b.set(target);
                    b
                },
                sent: Bits::new(n as usize),
            })
            .collect();
        let mut node = Self {
            id,
            n,
            schedule,
            knowledge,
            targets,
            pending: Vec::new(),
            seq: 0,
            done: None,
            complete_at: None,
            retransmissions: 0,
        };
        node.check_complete(0);
        node
    }

    /// Rebuilds a node from its [`Msg::Init`] wire message.
    pub fn from_init(msg: &Msg) -> Option<Self> {
        match msg {
            Msg::Init { node, n, schedule } => Some(Self::new(*node, *n, schedule.clone())),
            _ => None,
        }
    }

    /// The node's init message (what a driver writes to a wire node).
    pub fn init_msg(&self) -> Msg {
        Msg::Init {
            node: self.id,
            n: self.n,
            schedule: self.schedule.clone(),
        }
    }

    fn target_mut(&mut self, v: NodeId) -> Option<&mut TargetState> {
        let i = self.targets.binary_search_by_key(&v, |t| t.target).ok()?;
        Some(&mut self.targets[i])
    }

    fn check_complete(&mut self, round: u64) {
        if self.complete_at.is_none() && self.knowledge.count() == self.n {
            self.complete_at = Some(round);
            self.done = Some(Msg::Done {
                from: self.id,
                round,
                count: self.n,
            });
        }
    }
}

impl Node for SystolicNode {
    fn id(&self) -> NodeId {
        self.id
    }

    fn on_round(&mut self, round: u64) -> Vec<Msg> {
        let mut out = std::mem::take(&mut self.pending);
        if self.schedule.is_empty() {
            return out;
        }
        let slot = (round % self.schedule.len() as u64) as usize;
        // The borrow checker would reject `self.target_mut` while
        // iterating the slot; index the parallel arrays instead.
        let targets: Vec<NodeId> = self.schedule[slot].clone();
        for v in targets {
            let Some(i) = self.targets.binary_search_by_key(&v, |t| t.target).ok() else {
                continue;
            };
            let st = &mut self.targets[i];
            let items = self.knowledge.minus(&st.known);
            if items.is_empty() {
                continue;
            }
            let mut delta = Bits::new(self.n as usize);
            for &it in &items {
                delta.set(it);
            }
            if delta.intersects(&st.sent) {
                self.retransmissions += 1;
            }
            st.sent.or(&delta);
            out.push(Msg::Gossip {
                from: self.id,
                to: v,
                seq: self.seq,
                items,
            });
            self.seq += 1;
        }
        out
    }

    fn on_message(&mut self, msg: &Msg) {
        match msg {
            Msg::Gossip {
                from, seq, items, ..
            } => {
                for &it in items {
                    self.knowledge.set(it);
                }
                // The sender provably knows what it sent, plus its own
                // item — fold that into the estimate if it is a target.
                if let Some(st) = self.target_mut(*from) {
                    for &it in items {
                        st.known.set(it);
                    }
                }
                // Acknowledge with a full knowledge summary; control
                // traffic only, never merged into knowledge on the
                // other side.
                self.pending.push(Msg::Ack {
                    from: self.id,
                    to: *from,
                    seq: *seq,
                    items: self.knowledge.items(),
                });
            }
            Msg::Ack { from, items, .. } => {
                if let Some(st) = self.target_mut(*from) {
                    for &it in items {
                        st.known.set(it);
                    }
                }
            }
            _ => {}
        }
    }

    fn end_round(&mut self, round: u64) {
        self.check_complete(round);
    }

    fn take_done(&mut self) -> Option<Msg> {
        self.done.take()
    }

    fn is_complete(&self) -> bool {
        self.complete_at.is_some()
    }

    fn items_known(&self) -> u32 {
        self.knowledge.count()
    }

    fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

/// Splits a compiled protocol into per-vertex schedules:
/// `result[v][i]` = the targets vertex `v` sends to in round `i mod s`.
pub fn node_schedules(sp: &SystolicProtocol, n: usize) -> Vec<Vec<Vec<NodeId>>> {
    let s = sp.s();
    let mut out = vec![vec![Vec::new(); s]; n];
    for (i, round) in sp.period().iter().enumerate() {
        for arc in round.arcs() {
            out[arc.from as usize][i].push(arc.to);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::digraph::Arc;
    use sg_protocol::mode::Mode;
    use sg_protocol::round::Round;

    fn two_path() -> SystolicProtocol {
        // P_2 full duplex: both arcs every round.
        SystolicProtocol::new(
            vec![Round::new(vec![Arc::new(0, 1), Arc::new(1, 0)])],
            Mode::FullDuplex,
        )
    }

    #[test]
    fn node_schedules_split_the_period_by_source() {
        let sp = two_path();
        let sched = node_schedules(&sp, 2);
        assert_eq!(sched[0], vec![vec![1]]);
        assert_eq!(sched[1], vec![vec![0]]);
    }

    #[test]
    fn delta_sends_and_ack_suppression() {
        let sched = node_schedules(&two_path(), 2);
        let mut a = SystolicNode::new(0, 2, sched[0].clone());
        let out = a.on_round(0);
        assert_eq!(out.len(), 1);
        let Msg::Gossip { items, seq, .. } = &out[0] else {
            panic!("expected gossip")
        };
        assert_eq!(items, &vec![0]);
        // The ack from node 1 reports it now knows both items: node 0's
        // next scheduled send has an empty delta and is suppressed.
        a.on_message(&Msg::Ack {
            from: 1,
            to: 0,
            seq: *seq,
            items: vec![0, 1],
        });
        assert!(a.on_round(1).is_empty());
        assert_eq!(a.retransmissions(), 0);
    }

    #[test]
    fn unacked_sends_retransmit_next_period() {
        let sched = node_schedules(&two_path(), 2);
        let mut a = SystolicNode::new(0, 2, sched[0].clone());
        assert_eq!(a.on_round(0).len(), 1);
        // No ack arrives (the message was dropped): the next period
        // re-fires the arc and re-sends the same item.
        let out = a.on_round(1);
        assert_eq!(out.len(), 1);
        assert_eq!(a.retransmissions(), 1);
    }

    #[test]
    fn gossip_merges_and_acks_report_the_merged_state() {
        let sched = node_schedules(&two_path(), 2);
        let mut b = SystolicNode::new(1, 2, sched[1].clone());
        assert_eq!(b.items_known(), 1);
        b.on_message(&Msg::Gossip {
            from: 0,
            to: 1,
            seq: 0,
            items: vec![0],
        });
        b.end_round(0);
        assert!(b.is_complete());
        assert_eq!(b.items_known(), 2);
        let done = b.take_done().expect("done once");
        assert_eq!(
            done,
            Msg::Done {
                from: 1,
                round: 0,
                count: 2
            }
        );
        assert!(b.take_done().is_none());
        // The queued ack flushes ahead of the round's gossip.
        let out = b.on_round(1);
        assert!(matches!(&out[0], Msg::Ack { items, .. } if items == &vec![0, 1]));
    }

    #[test]
    fn init_round_trips_through_the_wire_form() {
        let sched = node_schedules(&two_path(), 2);
        let node = SystolicNode::new(0, 2, sched[0].clone());
        let rebuilt = SystolicNode::from_init(&node.init_msg()).unwrap();
        assert_eq!(rebuilt.id(), 0);
        assert_eq!(rebuilt.items_known(), 1);
    }
}
