//! Message transports and the wire node loop.
//!
//! A [`Transport`] moves encoded [`Msg`] lines between a node and
//! whoever drives it. [`ChannelTransport`] runs over in-process
//! channels; [`LineTransport`] runs over any byte streams — stdin/
//! stdout for a real maelstrom-style process ([`serve_stdio`]), or a
//! TCP socket in the differential tests. [`serve_node`] is the node
//! loop behind either: `init` builds the node, each `round` tick
//! answers with the round's sends closed by an echoed `round` fence,
//! routed messages merge immediately (announcing `done` the moment
//! completion happens), and a driver-sent `done` shuts the loop down.

use crate::message::{decode, encode, Msg, NodeId};
use crate::node::{Node, SystolicNode};
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::sync::mpsc::{Receiver, RecvError, Sender};

/// A bidirectional line-message channel.
pub trait Transport {
    /// Ships one message.
    fn send(&mut self, msg: &Msg) -> io::Result<()>;
    /// Receives the next message; `None` on orderly shutdown (EOF /
    /// disconnected peer).
    fn recv(&mut self) -> io::Result<Option<Msg>>;
}

/// Transport over in-process channels of encoded lines.
///
/// [`ChannelTransport::pair`] returns the two connected endpoints —
/// hand one to a thread running [`serve_node`] and drive from the
/// other.
pub struct ChannelTransport {
    tx: Sender<String>,
    rx: Receiver<String>,
    /// Locally queued lines (lets tests pre-load without a peer).
    queue: VecDeque<String>,
}

impl ChannelTransport {
    /// Two connected endpoints.
    pub fn pair() -> (Self, Self) {
        let (atx, brx) = std::sync::mpsc::channel();
        let (btx, arx) = std::sync::mpsc::channel();
        (
            Self {
                tx: atx,
                rx: arx,
                queue: VecDeque::new(),
            },
            Self {
                tx: btx,
                rx: brx,
                queue: VecDeque::new(),
            },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, msg: &Msg) -> io::Result<()> {
        self.tx
            .send(encode(msg))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer hung up"))
    }

    fn recv(&mut self) -> io::Result<Option<Msg>> {
        let line = match self.queue.pop_front() {
            Some(l) => l,
            None => match self.rx.recv() {
                Ok(l) => l,
                Err(RecvError) => return Ok(None),
            },
        };
        decode(&line)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Transport speaking JSONL over byte streams.
pub struct LineTransport<R, W> {
    reader: R,
    writer: W,
}

impl<R: BufRead, W: Write> LineTransport<R, W> {
    /// Wraps a reader/writer pair.
    pub fn new(reader: R, writer: W) -> Self {
        Self { reader, writer }
    }
}

impl<R: BufRead, W: Write> Transport for LineTransport<R, W> {
    fn send(&mut self, msg: &Msg) -> io::Result<()> {
        self.writer.write_all(encode(msg).as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<Option<Msg>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        decode(line.trim())
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The wire node loop: runs one [`SystolicNode`] behind a transport
/// until the peer hangs up or sends `done`. Byte-identical behavior to
/// an in-process node handed the same rounds and deliveries — the
/// `transport` differential test drives both and compares.
pub fn serve_node<T: Transport>(t: &mut T) -> io::Result<()> {
    let mut node: Option<SystolicNode> = None;
    let mut current = 0u64;
    while let Some(msg) = t.recv()? {
        match &msg {
            Msg::Init { .. } => {
                let built = SystolicNode::from_init(&msg)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad init"))?;
                node = Some(built);
            }
            Msg::Round { round, .. } => {
                current = *round;
                let n = node.as_mut().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "round before init")
                })?;
                for out in n.on_round(*round) {
                    t.send(&out)?;
                }
                // The fence: the driver reads until it sees the echo.
                let fence = Msg::Round {
                    round: *round,
                    from: n.id(),
                };
                t.send(&fence)?;
            }
            Msg::Gossip { .. } | Msg::Ack { .. } => {
                let n = node.as_mut().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "message before init")
                })?;
                n.on_message(&msg);
                // Deliveries land at the end of the ticked round, so
                // completion is stamped the same way the in-process
                // driver stamps it.
                n.end_round(current + 1);
                if let Some(done) = n.take_done() {
                    t.send(&done)?;
                }
            }
            Msg::Done { .. } => break,
        }
    }
    Ok(())
}

/// Runs one node over stdin/stdout — the maelstrom-style process entry
/// point (`sg-node`).
pub fn serve_stdio() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut t = LineTransport::new(stdin.lock(), stdout.lock());
    serve_node(&mut t)
}

/// Hands a driver-side transport the node's deliveries for a round and
/// collects the node's sends up to the fence. A convenience for
/// driving wire nodes lockstep from tests and tools.
pub fn drive_round<T: Transport>(
    t: &mut T,
    round: u64,
    deliveries: &[Msg],
) -> io::Result<Vec<Msg>> {
    t.send(&Msg::Round {
        round,
        from: NodeId::MAX,
    })?;
    let mut sends = Vec::new();
    loop {
        match t.recv()? {
            Some(Msg::Round { round: r, .. }) if r == round => break,
            Some(m) => sends.push(m),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "node hung up mid-round",
                ))
            }
        }
    }
    for d in deliveries {
        t.send(d)?;
    }
    Ok(sends)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_round_trips_messages() {
        let (mut a, mut b) = ChannelTransport::pair();
        let msg = Msg::Gossip {
            from: 0,
            to: 1,
            seq: 7,
            items: vec![0, 2],
        };
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), Some(msg));
        drop(a);
        assert_eq!(b.recv().unwrap(), None);
    }

    #[test]
    fn line_transport_skips_blank_lines_and_reports_eof() {
        let input = format!(
            "\n{}\n\n{}\n",
            encode(&Msg::Round { round: 1, from: 9 }),
            encode(&Msg::Done {
                from: 2,
                round: 3,
                count: 4
            }),
        );
        let mut out: Vec<u8> = Vec::new();
        let mut t = LineTransport::new(input.as_bytes(), &mut out);
        assert_eq!(t.recv().unwrap(), Some(Msg::Round { round: 1, from: 9 }));
        assert!(matches!(t.recv().unwrap(), Some(Msg::Done { .. })));
        assert_eq!(t.recv().unwrap(), None);
    }
}
