//! The deterministic seeded driver.
//!
//! [`Driver::run`] steps the node fleet round by round through four
//! phases:
//!
//! 1. **send** — every live node produces its round's messages from
//!    beginning-of-round state (the Definition 3.1 snapshot), in
//!    parallel across disjoint node chunks;
//! 2. **transport** — each message is rolled against the
//!    [`FaultPlan`]'s counter-based samplers (drop, then delay) and
//!    bucketed by delivery round, sequentially in node order;
//! 3. **deliver** — the round's due messages are sorted by
//!    `(to, from, seq)`, messages to crashed nodes are discarded, and
//!    the rest merge into the fleet in parallel per destination;
//! 4. **detect** — `done` announcements are collected and the run ends
//!    one round after every node holds all items.
//!
//! Parallelism never touches ordering: nodes only mutate their own
//! state, every cross-node list is produced or sorted in a fixed
//! order, and fault decisions are pure counter functions — so reports
//! and event traces are byte-identical at any thread count.

use crate::fault::FaultPlan;
use crate::message::{Msg, NodeId};
use crate::node::{node_schedules, Node, SystolicNode};
use crate::report::RunReport;
use sg_protocol::protocol::SystolicProtocol;

/// Knobs of one driver run.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Worker threads for the send/deliver phases (`0` or `1` =
    /// sequential). Never affects results, only wall-clock.
    pub threads: usize,
    /// Round budget: the run reports `completed_at: None` past it.
    pub max_rounds: u64,
    /// Record a per-message event trace into the report (the
    /// determinism suite's comparison surface; costly on big runs).
    pub record_events: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            max_rounds: 100_000,
            record_events: false,
        }
    }
}

/// An in-flight routed message.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    msg: Msg,
}

/// Runs `f` over `(fleet index, node, slot)` across disjoint chunks of
/// the fleet. Nodes only ever see their own slot, so chunk boundaries
/// (and therefore the thread count) cannot affect results.
fn for_each_node<N: Node, T: Send>(
    nodes: &mut [N],
    slots: &mut [T],
    threads: usize,
    f: impl Fn(usize, &mut N, &mut T) + Sync,
) {
    let threads = threads.max(1).min(nodes.len().max(1));
    if threads <= 1 {
        for (i, (node, slot)) in nodes.iter_mut().zip(slots.iter_mut()).enumerate() {
            f(i, node, slot);
        }
        return;
    }
    let chunk = nodes.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, (node_chunk, slot_chunk)) in nodes
            .chunks_mut(chunk)
            .zip(slots.chunks_mut(chunk))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                for (j, (node, slot)) in
                    node_chunk.iter_mut().zip(slot_chunk.iter_mut()).enumerate()
                {
                    f(ci * chunk + j, node, slot);
                }
            });
        }
    });
}

/// The execution driver: a node fleet, a fault plan, and the round loop.
pub struct Driver<N: Node> {
    nodes: Vec<N>,
    plan: FaultPlan,
    cfg: DriverConfig,
}

impl Driver<SystolicNode> {
    /// Builds a systolic fleet: one [`SystolicNode`] per vertex, each
    /// handed its slice of the compiled period via the same `init`
    /// structure the wire transport ships.
    pub fn systolic(sp: &SystolicProtocol, n: usize, plan: FaultPlan, cfg: DriverConfig) -> Self {
        let nodes = node_schedules(sp, n)
            .into_iter()
            .enumerate()
            .map(|(v, schedule)| SystolicNode::new(v as NodeId, n as u32, schedule))
            .collect();
        Self { nodes, plan, cfg }
    }
}

impl<N: Node> Driver<N> {
    /// A driver over an arbitrary pre-built fleet.
    pub fn new(nodes: Vec<N>, plan: FaultPlan, cfg: DriverConfig) -> Self {
        Self { nodes, plan, cfg }
    }

    /// Collects a node's pending `done` announcement into the report.
    fn collect_done(report: &mut RunReport, node: &mut N, record: bool) {
        if let Some(Msg::Done { from, round, count }) = node.take_done() {
            report.done_msgs += 1;
            if record {
                report
                    .events
                    .push(format!("round {round}: done from {from} ({count} items)"));
            }
        }
    }

    /// Drives the fleet to completion (or the round budget) and returns
    /// the run report.
    pub fn run(&mut self) -> RunReport {
        let n = self.nodes.len();
        let mut report = RunReport {
            n,
            s: 0,
            completed_at: None,
            rounds_run: 0,
            gossip_sent: 0,
            acks_sent: 0,
            dropped: 0,
            delayed: 0,
            delivered: 0,
            lost_crash: 0,
            retransmissions: 0,
            done_msgs: 0,
            min_curve: Vec::new(),
            events: Vec::new(),
        };
        let mut in_flight: Vec<InFlight> = Vec::new();
        let record = self.cfg.record_events;

        // Nodes born complete (n = 1 fleets) announce immediately.
        for node in &mut self.nodes {
            Self::collect_done(&mut report, node, record);
        }

        for r in 0..self.cfg.max_rounds {
            if self.nodes.iter().all(|nd| nd.is_complete()) {
                report.completed_at = Some(r);
                break;
            }
            report.rounds_run = r + 1;

            // Phase 1 — send, from beginning-of-round state.
            let mut outs: Vec<Vec<Msg>> = vec![Vec::new(); n];
            let plan = &self.plan;
            for_each_node(
                &mut self.nodes,
                &mut outs,
                self.cfg.threads,
                |i, node, out| {
                    if !plan.down_at(i as NodeId, r) {
                        *out = node.on_round(r);
                    }
                },
            );

            // Phase 2 — transport, sequential in node order.
            for out in &outs {
                for msg in out {
                    let from = msg.src();
                    let to = msg.dest().expect("nodes only emit routed messages");
                    let seq = msg.seq().expect("routed messages carry a seq");
                    match msg {
                        Msg::Gossip { .. } => report.gossip_sent += 1,
                        Msg::Ack { .. } => report.acks_sent += 1,
                        _ => {}
                    }
                    if self.plan.drops(r, from, to, seq) {
                        report.dropped += 1;
                        if record {
                            report.events.push(format!(
                                "round {r}: drop {} {from}->{to} seq {seq}",
                                msg.kind()
                            ));
                        }
                        continue;
                    }
                    let d = self.plan.delay(r, from, to, seq);
                    if d > 0 {
                        report.delayed += 1;
                        if record {
                            report.events.push(format!(
                                "round {r}: delay {} {from}->{to} seq {seq} by {d}",
                                msg.kind()
                            ));
                        }
                    }
                    in_flight.push(InFlight {
                        deliver_at: r + u64::from(d),
                        msg: msg.clone(),
                    });
                }
            }

            // Phase 3 — deliver everything due this round, in
            // `(to, from, seq)` order regardless of send interleaving.
            let mut due: Vec<Msg> = Vec::new();
            in_flight.retain(|m| {
                if m.deliver_at == r {
                    due.push(m.msg.clone());
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|m| (m.dest(), m.src(), m.seq()));
            let mut inboxes: Vec<Vec<Msg>> = vec![Vec::new(); n];
            for msg in due {
                let to = msg.dest().expect("routed");
                if self.plan.down_at(to, r) {
                    report.lost_crash += 1;
                    if record {
                        report.events.push(format!(
                            "round {r}: lost-to-crash {} {}->{to} seq {}",
                            msg.kind(),
                            msg.src(),
                            msg.seq().unwrap_or(0),
                        ));
                    }
                    continue;
                }
                report.delivered += 1;
                inboxes[to as usize].push(msg);
            }
            for_each_node(
                &mut self.nodes,
                &mut inboxes,
                self.cfg.threads,
                |_, node, inbox| {
                    for msg in inbox.iter() {
                        node.on_message(msg);
                    }
                    node.end_round(r + 1);
                },
            );

            // Phase 4 — completion bookkeeping, sequential in node order.
            let mut min_count = u32::MAX;
            for node in &mut self.nodes {
                Self::collect_done(&mut report, node, record);
                min_count = min_count.min(node.items_known());
            }
            report.min_curve.push(if n == 0 { 0 } else { min_count });
        }
        if report.completed_at.is_none() && self.nodes.iter().all(|nd| nd.is_complete()) {
            report.completed_at = Some(report.rounds_run);
        }
        report.retransmissions = self.nodes.iter().map(|nd| nd.retransmissions()).sum();
        report
    }
}

/// Compiles `sp` into a systolic fleet, runs it under `plan`, and
/// returns the report with the protocol's period filled in.
pub fn execute_protocol(
    sp: &SystolicProtocol,
    n: usize,
    plan: FaultPlan,
    cfg: DriverConfig,
) -> RunReport {
    let mut driver = Driver::systolic(sp, n, plan, cfg);
    let mut report = driver.run();
    report.s = sp.s();
    report
}
