//! `sg-node` — one systolic vertex as a maelstrom-style process.
//!
//! Speaks the JSONL wire protocol over stdin/stdout: an `init` line
//! builds the node, each `round` tick answers with the round's sends
//! closed by an echoed `round` fence, `gossip`/`ack` lines merge
//! immediately (emitting `done` the moment the node holds everything),
//! and a driver-sent `done` (or EOF) shuts the process down.

fn main() {
    if let Err(e) = sg_exec::serve_stdio() {
        eprintln!("sg-node: {e}");
        std::process::exit(1);
    }
}
