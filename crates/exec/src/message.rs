//! The typed wire messages and their JSONL codec.
//!
//! Every message is one JSON object per line — the maelstrom convention —
//! so a node behind the stdio transport and a node stepped in-process
//! speak byte-identical protocol. The codec is hand-rolled over the
//! small closed grammar the five message types need (unsigned integers,
//! short strings, integer arrays, and the nested schedule array), which
//! keeps the crate dependency-free.

use std::fmt::Write as _;

/// Index of a vertex in the executed network; doubles as the node
/// address on the wire.
pub type NodeId = u32;

/// One wire message. `Gossip` and `Ack` are the only messages the
/// driver routes through the faulty transport; `Init`/`Round`/`Done`
/// are control-plane and always reliable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Driver → node: identity, network order, and the node's slice of
    /// the compiled period (`schedule[i]` = targets of round `i mod s`).
    Init {
        /// The vertex this node runs.
        node: NodeId,
        /// Network order (= number of gossip items).
        n: u32,
        /// Per-round-in-period send targets.
        schedule: Vec<Vec<NodeId>>,
    },
    /// Driver → node: round tick. A node behind the wire transport
    /// echoes the tick back (with `from` set) as the fence closing its
    /// batch of sends for the round.
    Round {
        /// 0-based global round index.
        round: u64,
        /// `NodeId::MAX` from the driver; the echoing node's id on the
        /// fence reply.
        from: NodeId,
    },
    /// Node → node payload: the items of knowledge the sender believes
    /// the receiver is missing, captured at the beginning of the round.
    Gossip {
        /// Sending vertex.
        from: NodeId,
        /// Receiving vertex.
        to: NodeId,
        /// Per-sender sequence number (the retransmission key).
        seq: u64,
        /// Item ids carried (sorted).
        items: Vec<u32>,
    },
    /// Node → node control: a knowledge *summary* — everything the
    /// acking node currently knows. Updates the receiver's `others_know`
    /// estimate and is never merged into its knowledge, so the payload
    /// channel stays exactly the scheduled systolic arcs.
    Ack {
        /// Acking vertex.
        from: NodeId,
        /// Vertex whose gossip is being acknowledged.
        to: NodeId,
        /// Per-sender sequence number.
        seq: u64,
        /// Item ids the acking node knows (sorted).
        items: Vec<u32>,
    },
    /// Node → driver: emitted exactly once, when the node first holds
    /// all `n` items.
    Done {
        /// The completed vertex.
        from: NodeId,
        /// Round at which completion was observed.
        round: u64,
        /// Items held (= `n`).
        count: u32,
    },
}

impl Msg {
    /// Stable lowercase tag (the wire `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Init { .. } => "init",
            Msg::Round { .. } => "round",
            Msg::Gossip { .. } => "gossip",
            Msg::Ack { .. } => "ack",
            Msg::Done { .. } => "done",
        }
    }

    /// The destination vertex, for messages the driver routes between
    /// nodes (`Gossip`/`Ack`); `None` for control-plane messages.
    pub fn dest(&self) -> Option<NodeId> {
        match self {
            Msg::Gossip { to, .. } | Msg::Ack { to, .. } => Some(*to),
            _ => None,
        }
    }

    /// The originating vertex (`NodeId::MAX` on driver-issued ticks).
    pub fn src(&self) -> NodeId {
        match self {
            Msg::Init { node, .. } => *node,
            Msg::Round { from, .. }
            | Msg::Gossip { from, .. }
            | Msg::Ack { from, .. }
            | Msg::Done { from, .. } => *from,
        }
    }

    /// The per-sender sequence number of routed messages.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Msg::Gossip { seq, .. } | Msg::Ack { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

fn push_items(out: &mut String, key: &str, items: &[u32]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{it}");
    }
    out.push(']');
}

/// Encodes a message as one JSON line (no trailing newline).
pub fn encode(msg: &Msg) -> String {
    let mut out = String::new();
    match msg {
        Msg::Init { node, n, schedule } => {
            let _ = write!(
                out,
                "{{\"type\":\"init\",\"node\":{node},\"n\":{n},\"schedule\":["
            );
            for (i, round) in schedule.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, t) in round.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{t}");
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        Msg::Round { round, from } => {
            let _ = write!(
                out,
                "{{\"type\":\"round\",\"round\":{round},\"from\":{from}}}"
            );
        }
        Msg::Gossip {
            from,
            to,
            seq,
            items,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"gossip\",\"from\":{from},\"to\":{to},\"seq\":{seq}"
            );
            push_items(&mut out, "items", items);
            out.push('}');
        }
        Msg::Ack {
            from,
            to,
            seq,
            items,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"ack\",\"from\":{from},\"to\":{to},\"seq\":{seq}"
            );
            push_items(&mut out, "items", items);
            out.push('}');
        }
        Msg::Done { from, round, count } => {
            let _ = write!(
                out,
                "{{\"type\":\"done\",\"from\":{from},\"round\":{round},\"count\":{count}}}"
            );
        }
    }
    out
}

/// Why a line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// A parsed JSON value of the message grammar: unsigned integers,
/// strings, and (possibly nested) arrays.
enum JVal {
    Num(u64),
    Str(String),
    Arr(Vec<JVal>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Self {
        Self {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return err("escapes are not part of the message grammar");
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| WireError("invalid utf-8".into()))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        err("unterminated string")
    }

    fn number(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return err(format!("expected digit at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| WireError("integer out of range".into()))
    }

    fn value(&mut self) -> Result<JVal, WireError> {
        match self.peek() {
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JVal::Arr(items));
                        }
                        _ => return err("expected `,` or `]` in array"),
                    }
                }
            }
            Some(b) if b.is_ascii_digit() => Ok(JVal::Num(self.number()?)),
            _ => err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Vec<(String, JVal)>, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return err("expected `,` or `}` in object"),
            }
        }
    }
}

fn get_num(fields: &[(String, JVal)], key: &str) -> Result<u64, WireError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, JVal::Num(v))) => Ok(*v),
        _ => err(format!("missing integer field `{key}`")),
    }
}

fn as_u32(v: u64, key: &str) -> Result<u32, WireError> {
    u32::try_from(v).map_err(|_| WireError(format!("field `{key}` exceeds u32")))
}

fn get_items(fields: &[(String, JVal)], key: &str) -> Result<Vec<u32>, WireError> {
    let Some((_, JVal::Arr(arr))) = fields.iter().find(|(k, _)| k == key) else {
        return err(format!("missing array field `{key}`"));
    };
    arr.iter()
        .map(|v| match v {
            JVal::Num(x) => as_u32(*x, key),
            _ => err(format!("field `{key}` must hold integers")),
        })
        .collect()
}

/// Decodes one JSON line into a message.
pub fn decode(line: &str) -> Result<Msg, WireError> {
    let mut p = Parser::new(line);
    let fields = p.object()?;
    if p.peek().is_some() {
        return err("trailing bytes after the object");
    }
    let Some((_, JVal::Str(ty))) = fields.iter().find(|(k, _)| k == "type") else {
        return err("missing `type` field");
    };
    match ty.as_str() {
        "init" => {
            let Some((_, JVal::Arr(rounds))) = fields.iter().find(|(k, _)| k == "schedule") else {
                return err("missing `schedule` field");
            };
            let schedule = rounds
                .iter()
                .map(|r| match r {
                    JVal::Arr(ts) => ts
                        .iter()
                        .map(|t| match t {
                            JVal::Num(x) => as_u32(*x, "schedule"),
                            _ => err("schedule targets must be integers"),
                        })
                        .collect(),
                    _ => err("schedule rounds must be arrays"),
                })
                .collect::<Result<Vec<Vec<u32>>, _>>()?;
            Ok(Msg::Init {
                node: as_u32(get_num(&fields, "node")?, "node")?,
                n: as_u32(get_num(&fields, "n")?, "n")?,
                schedule,
            })
        }
        "round" => Ok(Msg::Round {
            round: get_num(&fields, "round")?,
            from: as_u32(get_num(&fields, "from")?, "from")?,
        }),
        "gossip" => Ok(Msg::Gossip {
            from: as_u32(get_num(&fields, "from")?, "from")?,
            to: as_u32(get_num(&fields, "to")?, "to")?,
            seq: get_num(&fields, "seq")?,
            items: get_items(&fields, "items")?,
        }),
        "ack" => Ok(Msg::Ack {
            from: as_u32(get_num(&fields, "from")?, "from")?,
            to: as_u32(get_num(&fields, "to")?, "to")?,
            seq: get_num(&fields, "seq")?,
            items: get_items(&fields, "items")?,
        }),
        "done" => Ok(Msg::Done {
            from: as_u32(get_num(&fields, "from")?, "from")?,
            round: get_num(&fields, "round")?,
            count: as_u32(get_num(&fields, "count")?, "count")?,
        }),
        other => err(format!(
            "unknown message type `{other}` (types: init, round, gossip, ack, done)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Init {
                node: 3,
                n: 8,
                schedule: vec![vec![2, 4], vec![], vec![3]],
            },
            Msg::Round {
                round: 7,
                from: NodeId::MAX,
            },
            Msg::Gossip {
                from: 1,
                to: 2,
                seq: 12,
                items: vec![0, 1, 4],
            },
            Msg::Ack {
                from: 2,
                to: 1,
                seq: 12,
                items: vec![],
            },
            Msg::Done {
                from: 5,
                round: 9,
                count: 8,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for msg in samples() {
            let line = encode(&msg);
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(decode(&line).unwrap(), msg, "{line}");
        }
    }

    #[test]
    fn encoding_is_plain_jsonl() {
        let line = encode(&Msg::Gossip {
            from: 1,
            to: 2,
            seq: 3,
            items: vec![7],
        });
        assert_eq!(
            line,
            "{\"type\":\"gossip\",\"from\":1,\"to\":2,\"seq\":3,\"items\":[7]}"
        );
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"type\":\"nope\"}",
            "{\"type\":\"round\",\"round\":1}",
            "{\"type\":\"gossip\",\"from\":1,\"to\":2,\"seq\":3,\"items\":[\"x\"]}",
            "{\"type\":\"done\",\"from\":1,\"round\":2,\"count\":3}x",
        ] {
            assert!(decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn decode_tolerates_whitespace_and_field_order() {
        let line = " { \"round\" : 4 , \"from\" : 9 , \"type\" : \"round\" } ";
        assert_eq!(decode(line).unwrap(), Msg::Round { round: 4, from: 9 });
    }
}
