//! # sg-exec
//!
//! The distributed execution harness of the systolic-gossip
//! reproduction: compiled schedules run as fault-injected
//! message-passing nodes instead of rows in a lockstep simulator.
//!
//! * [`message`] — the five typed JSONL wire messages (`init`, `round`,
//!   `gossip`, `ack`, `done`) and their dependency-free codec;
//! * [`node`] — the [`Node`] trait and [`SystolicNode`]: one vertex of
//!   a compiled [`sg_protocol::protocol::SystolicProtocol`], sending
//!   deltas on its scheduled arcs with `others_know`-bounded
//!   retransmission (the repeating period *is* the retry loop);
//! * [`fault`] — declarative [`FaultPlan`]s (link drops, delivery
//!   delays, crash/restart) with counter-based sampling: every fault
//!   decision is a pure function of `(seed, round, link, seq)`;
//! * [`driver`] — the deterministic seeded [`Driver`]: steps the fleet,
//!   injects faults, detects global completion, and reports — with
//!   byte-identical results at any thread count;
//! * [`transport`] — in-process channel and stdio/byte-stream JSONL
//!   transports behind one [`Transport`] trait, plus the wire node
//!   loop (`sg-node` runs it over stdin/stdout);
//! * [`report`] — the per-run [`RunReport`] (rounds-to-completion,
//!   message accounting, divergence from the fault-free optimum).
//!
//! Fault-free execution is knowledge-for-knowledge identical to the
//! lockstep engines in `sg-sim` — the conformance suite checks the
//! driver's completion round against the simulator's on every registry
//! scenario with a deterministic protocol.

pub mod driver;
pub mod fault;
pub mod message;
pub mod node;
pub mod report;
pub mod transport;

pub use driver::{execute_protocol, Driver, DriverConfig};
pub use fault::{Crash, FaultPlan};
pub use message::{decode, encode, Msg, NodeId, WireError};
pub use node::{node_schedules, Node, SystolicNode};
pub use report::RunReport;
pub use transport::{
    drive_round, serve_node, serve_stdio, ChannelTransport, LineTransport, Transport,
};
