//! The search scenarios end-to-end through the batch runner: at least
//! three small registry topologies must come back with an `Optimal`
//! certificate (the found schedule's simulated gossip time equals the
//! paper's lower bound), and every other (network, period) point must
//! report its found-vs-bound relation explicitly — never drop it.

use sg_scenario::{find, run_batch, BatchOptions, SearchSpec};
use std::collections::HashSet;
use systolic_gossip::Value;

fn text(v: Option<&Value>) -> &str {
    match v {
        Some(Value::Text(t)) => t,
        other => panic!("expected text, got {other:?}"),
    }
}

#[test]
fn search_scenarios_reproduce_optimal_schedules_and_report_gaps() {
    let mut scenarios = Vec::new();
    for name in [
        "search-path",
        "search-cycle",
        "search-cycle-s2",
        "search-hypercube",
        "search-knodel",
    ] {
        let mut sc = find(name).unwrap_or_else(|| panic!("missing {name}"));
        // Trimmed effort: the optimal points below are reachable from the
        // builder seeds, so a short anneal suffices and the test stays
        // fast in debug builds.
        sc.search = SearchSpec {
            restarts: 2,
            iterations: 80,
            seed: 1997,
        };
        scenarios.push(sc);
    }
    let report = run_batch(&scenarios, &BatchOptions::default());
    let rows = report.tagged_rows();
    let search_rows: Vec<_> = rows
        .iter()
        .filter(|r| matches!(r.get("kind"), Some(Value::Text(t)) if t == "search"))
        .collect();
    assert!(
        search_rows.len() >= 8,
        "expected one row per (network, period), got {}",
        search_rows.len()
    );

    let mut optimal_networks: HashSet<String> = HashSet::new();
    for row in &search_rows {
        let network = text(row.get("network")).to_string();
        let verdict = text(row.get("verdict"));
        assert!(
            ["optimal", "gap", "bound-slack", "incomplete"].contains(&verdict),
            "{network}: unknown verdict `{verdict}`"
        );
        // Every completed search reports found vs floor explicitly.
        if verdict != "incomplete" {
            let found = match row.get("found_rounds") {
                Some(Value::Int(t)) => *t,
                other => panic!("{network}: found_rounds missing, got {other:?}"),
            };
            let floor = match row.get("floor_rounds") {
                Some(Value::Int(t)) => *t,
                other => panic!("{network}: floor_rounds missing, got {other:?}"),
            };
            let gap = match row.get("gap_rounds") {
                Some(Value::Int(t)) => *t,
                other => panic!("{network}: gap_rounds missing, got {other:?}"),
            };
            assert_eq!(gap, found - floor, "{network}: gap must be found − floor");
            if verdict == "optimal" {
                assert_eq!(gap, 0, "{network}: optimal means zero gap");
                optimal_networks.insert(network);
            } else {
                assert!(gap > 0, "{network}: non-optimal verdicts carry the gap");
            }
        }
    }
    // The acceptance bar: at least three distinct small topologies where
    // synthesis meets the paper lower bound exactly.
    assert!(
        optimal_networks.len() >= 3,
        "only {optimal_networks:?} certified optimal"
    );
}

#[test]
fn degenerate_s2_search_uses_the_linear_bound() {
    let mut sc = find("search-cycle-s2").expect("registered");
    sc.search = SearchSpec {
        restarts: 2,
        iterations: 60,
        seed: 7,
    };
    let report = run_batch(std::slice::from_ref(&sc), &BatchOptions::default());
    let rows = report.tagged_rows();
    let row = rows
        .iter()
        .find(|r| matches!(r.get("kind"), Some(Value::Text(t)) if t == "search"))
        .expect("one search row");
    // The s = 2 half-duplex floor on C_8 is the paper's linear n − 1 = 7.
    assert_eq!(text(row.get("floor_source")), "linear-s2");
    assert_eq!(row.get("floor_rounds"), Some(&Value::Int(7)));
}
