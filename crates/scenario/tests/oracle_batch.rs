//! The shared bound oracle through the batch executor: one batch run
//! computes each `(network, mode, period)` bound at most once, no matter
//! how many scenarios and units ask for it, and the exact-enumeration
//! scenarios come back with settled verdicts.

use sg_scenario::{find, run_batch, BatchOptions, Scenario, Task};
use systolic_gossip::sg_bounds::pfun::Period;
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::{Network, Value};

fn opts() -> BatchOptions {
    BatchOptions {
        threads: 4,
        ..Default::default()
    }
}

/// Two scenarios hammering the same (network, mode, period) keys — a
/// bound sweep and a simulation — plus a period sweep on one network:
/// the oracle must compute each distinct key exactly once per batch.
#[test]
fn batch_queries_the_oracle_at_most_once_per_key() {
    let nets = [
        Network::Hypercube { k: 6 },
        Network::DeBruijn { d: 2, dd: 6 },
    ];
    let scenarios = vec![
        Scenario::new("bounds-a", "bound sweep", Task::Bound, Mode::HalfDuplex)
            .networks(nets)
            .periods([
                Period::Systolic(4),
                Period::Systolic(6),
                Period::NonSystolic,
            ]),
        // The identical sweep again: all cache hits, zero new computes.
        Scenario::new(
            "bounds-b",
            "same sweep again",
            Task::Bound,
            Mode::HalfDuplex,
        )
        .networks(nets)
        .periods([
            Period::Systolic(4),
            Period::Systolic(6),
            Period::NonSystolic,
        ]),
        // The simulate unit asks for each network's own protocol period.
        Scenario::new("sim", "simulate", Task::Simulate, Mode::HalfDuplex).networks(nets),
    ];
    let report = run_batch(&scenarios, &opts());
    let stats = report.cache.oracle;

    // Distinct (network, mode, period) keys a batch of these scenarios
    // can touch: 2 networks × 3 sweep periods, plus at most one
    // protocol-period key per simulated network.
    let max_distinct = 2 * 3 + 2;
    assert!(
        stats.computes <= max_distinct,
        "{} computes exceed the {max_distinct} distinct keys",
        stats.computes
    );
    // The duplicate sweep and the per-unit fan-out mean strictly more
    // lookups than computes — the memo is actually being shared.
    assert!(
        stats.lookups > stats.computes,
        "lookups {} vs computes {}",
        stats.lookups,
        stats.computes
    );
    // The repeated bound scenario alone guarantees ≥ 6 duplicate hits.
    assert!(stats.lookups >= stats.computes + 6);
}

/// Family tables share the oracle too: the repeated fig5 sweep costs one
/// optimizer run per distinct (family, mode, period) cell.
#[test]
fn family_tables_share_cells_across_scenarios() {
    let fig5 = find("fig5").expect("fig5");
    let twice = vec![fig5.clone(), {
        let mut again = fig5;
        again.name = "fig5-again";
        again
    }];
    let report = run_batch(&twice, &opts());
    let stats = report.cache.oracle;
    assert!(stats.family_lookups >= 2 * stats.family_computes);
}

/// The enumeration scenarios end-to-end: the two settled gaps come back
/// `proven-optimal` with the recorded optima, and the directed P_6
/// period-3 point reports exact infeasibility.
#[test]
fn enumeration_scenarios_settle_the_gaps() {
    let scenarios: Vec<_> = ["enum-hypercube", "enum-cycle", "enum-path-directed"]
        .iter()
        .map(|n| find(n).expect(n))
        .collect();
    let report = run_batch(&scenarios, &opts());

    let get = |scenario: &str, s: i64, field: &str| -> Option<Value> {
        report
            .outcomes
            .iter()
            .find(|o| o.name == scenario)
            .and_then(|o| {
                o.rows
                    .iter()
                    .find(|r| r.get("s") == Some(&Value::Int(s)))
                    .and_then(|r| r.get(field).cloned())
            })
    };

    assert_eq!(
        get("enum-hypercube", 2, "optimal_rounds"),
        Some(Value::Int(4)),
        "Q_3 at s = 2 settles at 4 rounds"
    );
    assert_eq!(
        get("enum-hypercube", 2, "verdict"),
        Some(Value::Text("proven-optimal".into()))
    );
    assert_eq!(
        get("enum-cycle", 3, "optimal_rounds"),
        Some(Value::Int(5)),
        "C_8 full-duplex at s = 3 settles at 5 rounds"
    );
    assert_eq!(
        get("enum-cycle", 3, "verdict"),
        Some(Value::Text("proven-optimal".into()))
    );
    assert_eq!(
        get("enum-path-directed", 3, "verdict"),
        Some(Value::Text("infeasible".into()))
    );
    assert_eq!(
        get("enum-path-directed", 3, "optimal_rounds"),
        Some(Value::Null)
    );
    assert_eq!(
        get("enum-path-directed", 4, "verdict"),
        Some(Value::Text("proven-optimal".into()))
    );
}

/// The batch `--sim-threads` budget reaches the enumerator's exhaustive
/// pass — and cannot change what it settles.
#[test]
fn enumeration_thread_budget_flows_through_the_batch() {
    let run = |sim_threads| {
        let opts = BatchOptions {
            threads: 2,
            sim_threads,
            ..Default::default()
        };
        run_batch(&[find("enum-hypercube").expect("registered")], &opts)
    };
    let extract = |report: &sg_scenario::BatchReport, field: &str| -> Option<Value> {
        report.outcomes[0]
            .rows
            .iter()
            .find(|r| r.get("s") == Some(&Value::Int(2)))
            .and_then(|r| r.get(field).cloned())
    };
    let serial = run(1);
    let wide = run(4);
    assert_eq!(extract(&serial, "threads"), Some(Value::Int(1)));
    assert_eq!(extract(&wide, "threads"), Some(Value::Int(4)));
    for field in ["optimal_rounds", "enumerated", "pruned", "verdict"] {
        assert_eq!(
            extract(&serial, field),
            extract(&wide, field),
            "{field} must be thread-count-independent"
        );
    }
}
