//! End-to-end: the registry scenarios run through the batch executor and
//! reproduce the former figure binaries' numbers.

use sg_scenario::{find, registry, run_batch, BatchOptions, Task};
use systolic_gossip::sg_bounds::tables;
use systolic_gossip::Value;

fn opts() -> BatchOptions {
    BatchOptions {
        threads: 4,
        ..Default::default()
    }
}

#[test]
fn figure_scenarios_reproduce_the_paper_tables() {
    let scenarios: Vec<_> = ["fig4", "fig5", "fig6", "fig8"]
        .iter()
        .map(|n| find(n).expect(n))
        .collect();
    let report = run_batch(&scenarios, &opts());
    assert!(report.checks_ok(), "paper checks failed");

    let references = [
        tables::fig4(),
        tables::fig5(),
        tables::fig6(),
        tables::fig8(),
    ];
    for (outcome, reference) in report.outcomes.iter().zip(&references) {
        let table = outcome
            .table
            .as_ref()
            .unwrap_or_else(|| panic!("{} produced no table", outcome.name));
        assert_eq!(table.rows.len(), reference.rows.len(), "{}", outcome.name);
        for (got, want) in table.rows.iter().zip(&reference.rows) {
            assert_eq!(got.label, want.label, "{}", outcome.name);
            for (gc, wc) in got.cells.iter().zip(&want.cells) {
                assert!(
                    (gc.value - wc.value).abs() < 1e-12,
                    "{} {}: {} vs {}",
                    outcome.name,
                    got.label,
                    gc.value,
                    wc.value
                );
                assert_eq!(gc.starred, wc.starred, "{} {}", outcome.name, got.label);
            }
        }
    }
}

#[test]
fn batch_executor_memoizes_across_sweep_points() {
    // zoo-bounds sweeps two periods over 15 networks: each network must
    // be built and traversed once, then hit the cache for the second
    // period.
    let sc = find("zoo-bounds").expect("registered");
    let n_networks = sc.networks.len();
    let report = run_batch(&[sc], &opts());
    assert!(report.cache.graph_builds <= n_networks + 1);
    assert!(
        report.cache.graph_hits >= n_networks,
        "expected per-network cache hits, got {:?}",
        report.cache
    );
    // Two bound rows per network.
    let bound_rows = report.outcomes[0]
        .rows
        .iter()
        .filter(|r| r.get("kind") == Some(&Value::Text("bound".into())))
        .count();
    assert_eq!(bound_rows, 2 * n_networks);
}

#[test]
fn simulate_scenarios_are_sound() {
    for name in ["curves", "torus-sweep", "ccc-tour"] {
        let sc = find(name).expect(name);
        let report = run_batch(&[sc], &opts());
        let audits: Vec<_> = report.outcomes[0]
            .rows
            .iter()
            .filter(|r| r.get("kind") == Some(&Value::Text("audit".into())))
            .collect();
        assert!(!audits.is_empty(), "{name}: no audit rows");
        for row in audits {
            assert_eq!(
                row.get("sound"),
                Some(&Value::Bool(true)),
                "{name}: unsound audit: {row:?}"
            );
            assert!(
                !matches!(row.get("measured_rounds"), Some(&Value::Null)),
                "{name}: protocol did not complete: {row:?}"
            );
        }
    }
}

#[test]
fn compare_scenarios_are_sound() {
    for name in ["diameter-bounds-weighted", "random-regular"] {
        let sc = find(name).expect(name);
        let report = run_batch(&[sc], &opts());
        let rows = &report.outcomes[0].rows;
        assert!(!rows.is_empty(), "{name}: no rows");
        for row in rows {
            if let Some(v) = row.get("sound") {
                assert_eq!(v, &Value::Bool(true), "{name}: violation: {row:?}");
            }
        }
    }
}

#[test]
fn every_registered_scenario_expands_to_work() {
    // Smoke: every scenario must produce at least one row or text block
    // when run. Use cheap stand-ins for the expensive ones by checking
    // unit expansion indirectly: matrices/table scenarios run fully, and
    // the rest are covered by the dedicated tests above, so here we only
    // run the tables + matrices subset end-to-end.
    let cheap: Vec<_> = registry()
        .into_iter()
        .filter(|s| matches!(s.task, Task::Bound | Task::Matrices) && s.networks.is_empty())
        .collect();
    assert!(cheap.len() >= 5);
    let report = run_batch(&cheap, &opts());
    for o in &report.outcomes {
        assert!(
            !o.rows.is_empty() || !o.text.is_empty(),
            "{}: produced nothing",
            o.name
        );
    }
}

#[test]
fn tagged_rows_stream_as_json_and_csv() {
    let sc = find("fig4").expect("registered");
    let report = run_batch(&[sc], &opts());
    let rows = report.tagged_rows();
    assert!(!rows.is_empty());
    for row in &rows {
        assert_eq!(row.fields[0].0, "scenario");
        let json = systolic_gossip::to_json_line(row);
        assert!(json.starts_with("{\"scenario\":\"fig4\""), "{json}");
    }
    let csv = systolic_gossip::to_csv(&rows);
    assert!(csv.lines().next().unwrap().starts_with("scenario,"));
    assert_eq!(csv.lines().count(), rows.len() + 1);
}
