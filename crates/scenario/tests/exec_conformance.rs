//! Registry-wide fault-free conformance: for every scenario network
//! with a deterministic protocol and an exact simulator optimum, the
//! message-passing `Driver` under an empty `FaultPlan` completes in
//! exactly the simulator's round count — a differential test of the
//! distributed execution against the compiled lockstep engine, in the
//! same shape as `crates/sim/tests/conformance.rs`.

use sg_exec::{execute_protocol, DriverConfig, FaultPlan};
use sg_scenario::{protocol_for, registry};
use sg_sim::engine::run_systolic;

#[test]
fn every_registry_protocol_executes_in_the_simulated_round_count() {
    let mut pairs_checked = 0usize;
    for scenario in &registry() {
        for net in &scenario.networks {
            // The sim-large-* scenarios are sparse-engine workloads;
            // a per-vertex node fleet at 10⁵⁺ vertices belongs to the
            // bench, not the test suite.
            if net.order_hint().is_some_and(|n| n >= 50_000) {
                continue;
            }
            let g = net.build();
            let n = g.vertex_count();
            if n >= 50_000 {
                continue;
            }
            let Some((_, sp)) = protocol_for(net, &g, scenario.mode) else {
                continue;
            };
            sp.validate(&g)
                .unwrap_or_else(|e| panic!("{}: invalid protocol — {e}", net.name()));
            let budget = 40 * n + 200;
            let sim = run_systolic(&sp, n, budget, true);
            let report = execute_protocol(
                &sp,
                n,
                FaultPlan::fault_free(),
                DriverConfig {
                    max_rounds: budget as u64,
                    ..DriverConfig::default()
                },
            );
            let label = format!("{} / {} (n = {n})", scenario.name, net.name());
            assert_eq!(
                report.completed_at,
                sim.completed_at.map(|r| r as u64),
                "{label}: executed completion diverged from the simulator"
            );
            assert_eq!(
                report.dropped + report.delayed + report.lost_crash,
                0,
                "{label}: fault-free run must not fault"
            );
            // The executed min-curve is the simulator's knowledge trace.
            let prefix: Vec<u32> = sim.trace[..report.min_curve.len()]
                .iter()
                .map(|&c| c as u32)
                .collect();
            assert_eq!(report.min_curve, prefix, "{label}: min-curve diverged");
            pairs_checked += 1;
        }
    }
    assert!(
        pairs_checked >= 30,
        "expected a registry-wide sweep, checked only {pairs_checked}"
    );
}
