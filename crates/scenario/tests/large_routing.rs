//! Regression test for the large-simulation routing gate. The gate
//! used to look only at `order_hint()`, so hint-less families (trees,
//! butterflies, de Bruijn, Kautz) fell through to the dense path at
//! any order — a `db:2,17` (n = 131 072) would try to allocate the
//! n²-bit `Knowledge` table and die, while a `cycle:131072` was
//! correctly routed to the sparse engine. The gate now falls back to
//! the built graph's real order. `BatchOptions::large_sim_min_n` lets
//! the test exercise the routing at toy sizes.

use sg_scenario::{
    run_batch, BatchOptions, EnumerateSpec, ExecSpec, RandomizedSpec, Scenario, SearchSpec, Task,
    WeightScheme,
};
use systolic_gossip::sg_protocol::mode::Mode;
use systolic_gossip::{Network, Value};

fn simulate_scenario(net: Network) -> Scenario {
    Scenario {
        name: "large-routing",
        summary: "routing regression harness",
        task: Task::Simulate,
        mode: Mode::HalfDuplex,
        networks: vec![net],
        degrees: Vec::new(),
        periods: Vec::new(),
        weights: WeightScheme::Unit,
        checks: Vec::new(),
        search: SearchSpec::default(),
        exec: ExecSpec::default(),
        enumerate: EnumerateSpec::default(),
        randomized: RandomizedSpec::default(),
    }
}

/// Which engine a simulate run used, read off the emitted rows:
/// the sparse path tags rows `kind = "large-sim"`, the dense path
/// `kind = "audit"`.
fn engine_kind(net: Network, large_sim_min_n: usize) -> &'static str {
    let opts = BatchOptions {
        threads: 1,
        large_sim_min_n,
        ..BatchOptions::default()
    };
    let report = run_batch(&[simulate_scenario(net)], &opts);
    let rows = &report.outcomes[0].rows;
    let kind_of = |k: &str| {
        rows.iter().any(|r| {
            r.fields
                .iter()
                .any(|(name, v)| name == "kind" && *v == Value::Text(k.to_string()))
        })
    };
    if kind_of("large-sim") {
        "sparse"
    } else if kind_of("audit") {
        "dense"
    } else {
        "none"
    }
}

/// A de Bruijn graph has `order_hint() == None`; at order ≥ the
/// threshold it must still route to the sparse engine, judged by the
/// built graph's real order (db:2,8 has 256 vertices).
#[test]
fn hintless_family_over_threshold_routes_to_sparse_engine() {
    let net = Network::DeBruijn { d: 2, dd: 8 };
    assert_eq!(
        net.order_hint(),
        None,
        "the regression needs a hint-less family"
    );
    assert_eq!(engine_kind(net, 100), "sparse");
}

/// The same hint-less family below the threshold stays on the dense
/// path (curve + λ-audit).
#[test]
fn hintless_family_under_threshold_stays_dense() {
    let net = Network::DeBruijn { d: 2, dd: 4 };
    assert_eq!(net.order_hint(), None);
    assert_eq!(engine_kind(net, 100), "dense");
}

/// Hinted families still gate on the hint (no graph build needed):
/// a cycle over the threshold goes sparse, under it stays dense.
#[test]
fn hinted_family_gates_on_the_hint() {
    assert_eq!(engine_kind(Network::Cycle { n: 128 }, 100), "sparse");
    assert_eq!(engine_kind(Network::Cycle { n: 64 }, 100), "dense");
}

/// The compare task refuses both over-threshold shapes — hinted and
/// hint-less — with the explanatory skip text instead of running the
/// dense Ω(n²) machinery.
#[test]
fn compare_unit_skips_over_threshold_orders_hint_or_not() {
    for net in [
        Network::Cycle { n: 128 },         // hint = Some(128)
        Network::DeBruijn { d: 2, dd: 8 }, // hint = None, order 256
    ] {
        let scenario = Scenario {
            task: Task::Compare,
            ..simulate_scenario(net)
        };
        let opts = BatchOptions {
            threads: 1,
            large_sim_min_n: 100,
            ..BatchOptions::default()
        };
        let report = run_batch(&[scenario], &opts);
        let outcome = &report.outcomes[0];
        assert!(outcome.rows.is_empty(), "{}: no dense rows", net.name());
        let text = outcome.text.join("\n");
        assert!(
            text.contains("dense compare unit is skipped"),
            "{}: {text}",
            net.name()
        );
    }
}
