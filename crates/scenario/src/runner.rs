//! The parallel batch executor.
//!
//! [`run_batch`] expands every scenario into independent work units (one
//! family-table row, one network × task, one check set, …), fans the
//! units out across a `std::thread::scope` worker pool behind an atomic
//! cursor — the same disjoint-ownership idiom as
//! `sg_sim::parallel::apply_round_parallel` — and reassembles the
//! per-unit results into deterministic, scenario-ordered outcomes.
//! Expensive intermediates (built digraphs, measured diameters, periodic
//! delay digraphs) are shared across all units through a
//! [`crate::cache::BuildCache`], so a period sweep pays for its network
//! once and repeated λ-searches share one delay structure.
//!
//! One global thread budget covers both levels of parallelism: when there
//! are fewer units than budgeted threads, the leftover threads go *into*
//! the units — simulate and compare units split each round's row writes
//! across a persistent worker pool (`sg_sim::pool`), so a batch of three
//! big simulations on a 16-thread budget runs 3 units × 5 row-workers
//! instead of 3 × 1. Units whose network order reaches
//! `BatchOptions::large_sim_min_n` (default `LARGE_SIM_MIN_N`, 50 000)
//! switch to the sparse delta engine (`sg_sim::sparse`), which never
//! materializes the n²-bit table — judged by `order_hint()` when the
//! family has one, else by the built graph's real order.

use crate::cache::{BuildCache, CacheStats};
use crate::descriptor::{PaperCheck, Scenario, Task, WeightScheme};
use crate::tables::{assemble_table, family_row, family_specs, FamilySpec};
use sg_bounds::pfun::Period;
use sg_bounds::tables::{FigRow, FigTable};
use sg_bounds::{c_broadcast, e_general_nonsystolic};
use sg_delay::bound::BoundOpts;
use sg_delay::digraph::DelayDigraph;
use sg_delay::fullduplex::full_duplex_mx;
use sg_delay::local::LocalMatrices;
use sg_delay::weighted::weighted_diameter_bound;
use sg_graphs::weighted::WeightedDigraph;
use sg_protocol::local::BlockPattern;
use sg_protocol::mode::Mode;
use sg_sim::greedy::greedy_gossip;
use sg_sim::pool::systolic_gossip_time_pool;
use sg_sim::sparse::run_systolic_sparse_with_limit;
use sg_sim::trace::knowledge_curve_pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use systolic_gossip::{audit_measured, ceil_log2, Network, Row};

/// Knobs of one batch run.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Thread *budget* — the global budget shared by unit-level fan-out
    /// and within-unit row parallelism (`0` = one per available core,
    /// capped at 16). Worker-vs-budget convention (see
    /// `sg_sim::pool::PoolEngine::new`): a budget of `t` means the
    /// calling thread plus `t - 1` spawned pool workers, so a budget of
    /// 1 spawns nothing and runs strictly sequentially.
    pub threads: usize,
    /// Row-parallel budget per simulate/compare unit (`0` = derive:
    /// leftover budget when there are fewer units than threads). Same
    /// convention: `1` means sequential, no workers.
    pub sim_threads: usize,
    /// Options for every λ-search / norm evaluation.
    pub bound_opts: BoundOpts,
    /// Simulation round budget per protocol execution.
    pub sim_budget: usize,
    /// Order at which simulate units abandon the dense `Knowledge`
    /// table for the sparse delta engine, and compare units refuse to
    /// run (defaults to `LARGE_SIM_MIN_N`, 50 000). The gate checks
    /// `order_hint()` first — so hinted families never even build the
    /// graph — and falls back to the built graph's real order for the
    /// hint-less families (trees, butterflies, de Bruijn, Kautz).
    pub large_sim_min_n: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            sim_threads: 0,
            bound_opts: BoundOpts::default(),
            sim_budget: 1_000_000,
            large_sim_min_n: LARGE_SIM_MIN_N,
        }
    }
}

impl BatchOptions {
    /// The resolved global thread budget (`threads`, or one per
    /// available core capped at 16 when 0). Public so the CLI can echo
    /// the value actually used.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
    }

    /// Splits the global budget: with `units` work items and `outer`
    /// unit-level workers, each simulate/compare unit may use
    /// `budget / outer` threads for row-parallel rounds, so the total
    /// stays within the budget.
    fn within_unit_threads(&self, units: usize) -> usize {
        if self.sim_threads > 0 {
            return self.sim_threads;
        }
        let budget = self.effective_threads();
        let outer = budget.min(units.max(1));
        (budget / outer.max(1)).max(1)
    }
}

/// Below this network size, within-unit row parallelism loses: even
/// with the persistent pool, a round's row work has to cover one task
/// dispatch. The pool engine beats the compiled sequential path from
/// n = 2048 up (BENCH_sim.json engine ablation); smaller units stay on
/// the sequential compiled hot path, which the pool engine picks
/// automatically when handed one thread.
const WITHIN_UNIT_PARALLEL_MIN_N: usize = 2048;

/// The default of [`BatchOptions::large_sim_min_n`]: from this order
/// up, a simulate unit abandons the dense `Knowledge` table (n² bits —
/// 125 GB at n = 10⁶) and the Ω(n²) bound/audit machinery for the
/// sparse delta engine: exact completion times, row storage
/// proportional to the runs actually present.
const LARGE_SIM_MIN_N: usize = 50_000;

/// Row-storage budget for large sparse units. An unstructured instance
/// whose rows densify is aborted at this footprint with an explanatory
/// report instead of an OOM kill (worst case is the dense n²/8 bytes).
const LARGE_SIM_MEM_LIMIT: usize = 6 << 30;

fn effective_sim_threads(n: usize, sim_threads: usize) -> usize {
    if n >= WITHIN_UNIT_PARALLEL_MIN_N {
        sim_threads
    } else {
        1
    }
}

/// One re-derived paper value.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// What the paper calls it.
    pub label: String,
    /// The stated value.
    pub expected: f64,
    /// What the engine computes.
    pub got: f64,
    /// Within tolerance?
    pub ok: bool,
}

/// Everything one scenario produced.
#[derive(Debug, Clone, Default)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// One-line description.
    pub summary: String,
    /// Streamable result rows (JSON/CSV surface).
    pub rows: Vec<Row>,
    /// The assembled family table, when the task produces one.
    pub table: Option<FigTable>,
    /// Human-readable per-unit blocks, unit order.
    pub text: Vec<String>,
    /// Paper-check results.
    pub checks: Vec<CheckOutcome>,
}

impl ScenarioOutcome {
    /// `true` when every paper check matched.
    pub fn checks_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The scenario as a human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.name, self.summary);
        if let Some(t) = &self.table {
            out.push('\n');
            out.push_str(&t.render());
        }
        for block in &self.text {
            out.push('\n');
            out.push_str(block);
            if !block.ends_with('\n') {
                out.push('\n');
            }
        }
        if !self.checks.is_empty() {
            out.push_str("\npaper checks:\n");
            for c in &self.checks {
                out.push_str(&format!(
                    "  {:<24} paper {:<8.4} computed {:<8.4} {}\n",
                    c.label,
                    c.expected,
                    c.got,
                    if c.ok { "match" } else { "MISMATCH" }
                ));
            }
        }
        out
    }
}

/// The result of [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-scenario outcomes, in input order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Memoization counters for the whole batch.
    pub cache: CacheStats,
}

impl BatchReport {
    /// `true` when every scenario's paper checks matched.
    pub fn checks_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.checks_ok())
    }

    /// All rows of all scenarios, each tagged with its scenario name.
    pub fn tagged_rows(&self) -> Vec<Row> {
        let mut out = Vec::new();
        for o in &self.outcomes {
            for r in &o.rows {
                let mut tagged = Row::new().with("scenario", o.name.as_str());
                tagged.fields.extend(r.fields.iter().cloned());
                out.push(tagged);
            }
        }
        out
    }
}

/// One independent work unit.
enum Unit {
    FamilyRow { spec: FamilySpec },
    NetworkBounds { net: Network },
    Simulate { net: Network },
    Compare { net: Network },
    Matrices,
    Checks { checks: Vec<PaperCheck> },
    Search { net: Network },
    Enumerate { net: Network },
    Execute { net: Network },
    Randomized { net: Network },
}

/// What one unit produced.
#[derive(Default)]
struct UnitOut {
    rows: Vec<Row>,
    fig_row: Option<FigRow>,
    text: Option<String>,
    checks: Vec<CheckOutcome>,
}

/// Expands `scenario` into its independent units.
fn units_of(scenario: &Scenario) -> Vec<Unit> {
    let mut units = Vec::new();
    match scenario.task {
        Task::Bound => {
            // A family table when there is a degree sweep (Figs. 5, 6, 8)
            // or nothing but the general row to show (Fig. 4); scenarios
            // that only list concrete networks get per-network reports.
            let family_table = !scenario.periods.is_empty()
                && (!scenario.degrees.is_empty() || scenario.networks.is_empty());
            if family_table {
                for spec in family_specs(scenario.mode, &scenario.degrees) {
                    units.push(Unit::FamilyRow { spec });
                }
            }
            for &net in &scenario.networks {
                units.push(Unit::NetworkBounds { net });
            }
        }
        Task::Simulate => {
            for &net in &scenario.networks {
                units.push(Unit::Simulate { net });
            }
        }
        Task::Compare => {
            for &net in &scenario.networks {
                units.push(Unit::Compare { net });
            }
        }
        Task::Matrices => units.push(Unit::Matrices),
        Task::Search => {
            for &net in &scenario.networks {
                units.push(Unit::Search { net });
            }
        }
        Task::Enumerate => {
            for &net in &scenario.networks {
                units.push(Unit::Enumerate { net });
            }
        }
        Task::Execute => {
            for &net in &scenario.networks {
                units.push(Unit::Execute { net });
            }
        }
        Task::Randomized => {
            for &net in &scenario.networks {
                units.push(Unit::Randomized { net });
            }
        }
    }
    if !scenario.checks.is_empty() {
        units.push(Unit::Checks {
            checks: scenario.checks.clone(),
        });
    }
    units
}

/// Runs a batch of scenarios across a worker pool, reusing built
/// structures through one shared cache.
pub fn run_batch(scenarios: &[Scenario], opts: &BatchOptions) -> BatchReport {
    let cache = BuildCache::new();
    // Flatten: (scenario index, unit index within scenario, unit).
    let mut work: Vec<(usize, usize, Unit)> = Vec::new();
    for (si, sc) in scenarios.iter().enumerate() {
        for (ui, unit) in units_of(sc).into_iter().enumerate() {
            work.push((si, ui, unit));
        }
    }

    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, usize, UnitOut)>> = Mutex::new(Vec::with_capacity(work.len()));
    let threads = opts.effective_threads().min(work.len().max(1));
    let sim_threads = opts.within_unit_threads(work.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((si, ui, unit)) = work.get(i) else {
                    break;
                };
                let out = run_unit(unit, &scenarios[*si], &cache, opts, sim_threads);
                done.lock().unwrap().push((*si, *ui, out));
            });
        }
    });

    let mut finished = done.into_inner().unwrap();
    finished.sort_by_key(|(si, ui, _)| (*si, *ui));

    let mut outcomes: Vec<ScenarioOutcome> = scenarios
        .iter()
        .map(|sc| ScenarioOutcome {
            name: sc.name.to_string(),
            summary: sc.summary.to_string(),
            ..Default::default()
        })
        .collect();
    let mut fig_rows: Vec<Vec<FigRow>> = vec![Vec::new(); scenarios.len()];
    for (si, _, out) in finished {
        let o = &mut outcomes[si];
        o.rows.extend(out.rows);
        if let Some(r) = out.fig_row {
            fig_rows[si].push(r);
        }
        if let Some(t) = out.text {
            o.text.push(t);
        }
        o.checks.extend(out.checks);
    }
    for (si, rows) in fig_rows.into_iter().enumerate() {
        if !rows.is_empty() {
            outcomes[si].table = Some(assemble_table(
                scenarios[si].summary,
                &scenarios[si].periods,
                rows,
            ));
        }
    }
    BatchReport {
        outcomes,
        cache: cache.stats(),
    }
}

fn run_unit(
    unit: &Unit,
    scenario: &Scenario,
    cache: &BuildCache,
    opts: &BatchOptions,
    sim_threads: usize,
) -> UnitOut {
    match unit {
        Unit::FamilyRow { spec } => family_row_unit(spec, scenario, cache),
        Unit::NetworkBounds { net } => network_bounds_unit(net, scenario, cache),
        Unit::Simulate { net } => simulate_unit(net, scenario, cache, opts, sim_threads),
        Unit::Compare { net } => compare_unit(net, scenario, cache, opts, sim_threads),
        Unit::Matrices => matrices_unit(),
        Unit::Checks { checks } => checks_unit(checks),
        Unit::Search { net } => search_unit(net, scenario, cache, sim_threads),
        Unit::Enumerate { net } => enumerate_unit(net, scenario, cache, sim_threads),
        Unit::Execute { net } => execute_unit(net, scenario, cache, opts, sim_threads),
        Unit::Randomized { net } => randomized_unit(net, scenario, cache, opts, sim_threads),
    }
}

/// Runs the network's protocol as a message-passing fleet through
/// `sg-exec`'s deterministic driver: once fault-free (the conformance
/// point, checked against the lockstep simulator's round count) and —
/// when the scenario's [`crate::descriptor::ExecSpec`] injects anything
/// — once under the declared fault plan, reporting the round and
/// message cost of the faults. The protocol build is shared through
/// [`BuildCache::protocol`] with every other unit in the batch.
fn execute_unit(
    net: &Network,
    scenario: &Scenario,
    cache: &BuildCache,
    opts: &BatchOptions,
    sim_threads: usize,
) -> UnitOut {
    use sg_exec::{execute_protocol, Crash, DriverConfig, FaultPlan};
    // Per-node fleets are dense in n; the same gate as compare units.
    if let Some(n) = net.order_hint().filter(|&n| n >= opts.large_sim_min_n) {
        return UnitOut {
            text: Some(format!(
                "{}: order {n} ≥ {} — the execution fleet is skipped at this size",
                net.name(),
                opts.large_sim_min_n
            )),
            ..Default::default()
        };
    }
    let g = cache.digraph(net);
    let n = g.vertex_count();
    if n >= opts.large_sim_min_n {
        return UnitOut {
            text: Some(format!(
                "{}: order {n} ≥ {} — the execution fleet is skipped at this size",
                net.name(),
                opts.large_sim_min_n
            )),
            ..Default::default()
        };
    }
    let Some((kind, sp)) = cache.protocol(net, scenario.mode) else {
        return UnitOut {
            text: Some(format!(
                "{}: no deterministic protocol in {} mode — skipped",
                net.name(),
                scenario.mode
            )),
            ..Default::default()
        };
    };
    if let Err(e) = sp.validate(&g) {
        return UnitOut {
            text: Some(format!("{}: invalid protocol — {e}", net.name())),
            ..Default::default()
        };
    }
    // The fault-free optimum of *this* protocol, from the lockstep
    // engine — the yardstick every executed run diverges from.
    let optimum = systolic_gossip_time_pool(
        &sp,
        n,
        opts.sim_budget,
        effective_sim_threads(n, sim_threads),
    );
    let spec = &scenario.exec;
    let budget = optimum
        .map_or(40 * n + 200, |t| 40 * t + 200)
        .max(spec.crashes.iter().filter_map(|c| c.2).max().unwrap_or(0) as usize + 40 * n)
        as u64;
    let cfg = DriverConfig {
        threads: effective_sim_threads(n, sim_threads),
        max_rounds: budget,
        record_events: false,
    };
    let plan = FaultPlan {
        seed: spec.seed,
        drop_prob: spec.drop_prob,
        max_delay: spec.max_delay,
        crashes: spec
            .crashes
            .iter()
            .map(|&(node, at_round, restart_round)| Crash {
                node,
                at_round,
                restart_round,
            })
            .collect(),
    };

    let mut rows = Vec::new();
    let mut text = format!(
        "{} — n = {}, s = {}, {} protocol as a {}-node fleet\n",
        net.name(),
        n,
        sp.s(),
        kind.label(),
        n,
    );
    let mut run_one = |label: &str, plan: FaultPlan| {
        let fault_free = plan.is_fault_free();
        let report = execute_protocol(&sp, n, plan.clone(), cfg);
        let divergence = optimum.and_then(|t| report.divergence(t as u64));
        let conformant = fault_free.then_some(report.completed_at == optimum.map(|t| t as u64));
        text.push_str(&format!(
            "  {label:<11} rounds {:>6}  optimum {:>4}  divergence {:>4}  gossip {:>6} \
             (retx {:>5})  dropped {:>5}  delayed {:>5}  lost {:>3}{}\n",
            report.completed_at.map_or("—".into(), |t| t.to_string()),
            optimum.map_or("—".into(), |t| t.to_string()),
            divergence.map_or("—".into(), |d| format!("+{d}")),
            report.gossip_sent,
            report.retransmissions,
            report.dropped,
            report.delayed,
            report.lost_crash,
            match conformant {
                Some(true) => "  conformant",
                Some(false) => "  NOT CONFORMANT",
                None => "",
            },
        ));
        rows.push(
            Row::new()
                .with("kind", "execute")
                .with("network", net.name())
                .with("n", n)
                .with("s", report.s)
                .with("protocol", kind.label())
                .with("mode", scenario.mode.name())
                .with("plan", label)
                .with("seed", i64::try_from(spec.seed).unwrap_or(i64::MAX))
                .with("drop_prob", plan.drop_prob)
                .with("max_delay", i64::from(plan.max_delay))
                .with("crashes", plan.crashes.len())
                .with("completed_rounds", report.completed_at.map(|t| t as i64))
                .with("optimum_rounds", optimum)
                .with("divergence", divergence)
                .with(
                    "gossip_sent",
                    i64::try_from(report.gossip_sent).unwrap_or(i64::MAX),
                )
                .with(
                    "retransmissions",
                    i64::try_from(report.retransmissions).unwrap_or(i64::MAX),
                )
                .with(
                    "acks_sent",
                    i64::try_from(report.acks_sent).unwrap_or(i64::MAX),
                )
                .with("dropped", i64::try_from(report.dropped).unwrap_or(i64::MAX))
                .with("delayed", i64::try_from(report.delayed).unwrap_or(i64::MAX))
                .with(
                    "lost_crash",
                    i64::try_from(report.lost_crash).unwrap_or(i64::MAX),
                )
                .with(
                    "verdict",
                    match (report.completed_at.is_some(), conformant) {
                        (false, _) => "incomplete",
                        (true, Some(true)) => "conformant",
                        (true, Some(false)) => "diverged",
                        (true, None) => "completed",
                    },
                ),
        );
    };
    // The fault-free conformance point always runs…
    run_one("fault-free", FaultPlan::fault_free());
    // …and the scenario's declared plan when it injects anything.
    if !plan.is_fault_free() {
        run_one("faulty", plan);
    }
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

/// Randomized-gossip baselines: for each activation model (push, pull,
/// exchange) runs the scenario's [`crate::descriptor::RandomizedSpec`]
/// trial batch over the sparse row table, then reports
/// mean/median/p95/max stopping times and the ratio to the network's
/// systolic yardstick — the measured optimum of its deterministic
/// protocol (plus the oracle's strongest lower bound) at small n, or
/// the ⌈lg n⌉ doubling floor at large n, where every Ω(n²) computation
/// is deliberately absent. Trials are keyed by pure `(seed, trial,
/// round)` counters, so batches are bit-identical at any thread count.
fn randomized_unit(
    net: &Network,
    scenario: &Scenario,
    cache: &BuildCache,
    opts: &BatchOptions,
    sim_threads: usize,
) -> UnitOut {
    use sg_sim::random::{run_randomized, summarize, ActivationModel, RandomizedConfig};
    // Pull and exchange read along the reversed arc, so the model is
    // only well-defined on symmetric networks.
    if net.is_directed() {
        return UnitOut {
            text: Some(format!(
                "{}: randomized pull/exchange need symmetric arcs — \
                 directed networks are skipped",
                net.name()
            )),
            ..Default::default()
        };
    }
    // Randomized gossip scatters knowledge, so rows densify toward the
    // dense n²/8 bytes whatever the topology — refuse upfront when even
    // one trial's worst case cannot fit (same idiom as the large
    // simulate unit). `order_hint()` first, so hinted families never
    // build the graph just to be refused.
    let skip_mem = |n: usize| UnitOut {
        rows: vec![Row::new()
            .with("kind", "randomized")
            .with("network", net.name())
            .with("n", n)
            .with("verdict", "skipped-mem")],
        text: Some(format!(
            "{}: randomized rows densify — worst-case sparse state \
             ≈ {:.1} GiB exceeds the {:.1} GiB budget, skipped\n",
            net.name(),
            ((n / 8).saturating_mul(n)) as f64 / (1u64 << 30) as f64,
            LARGE_SIM_MEM_LIMIT as f64 / (1u64 << 30) as f64,
        )),
        ..Default::default()
    };
    let too_big =
        |n: usize| n >= opts.large_sim_min_n && (n / 8).saturating_mul(n) > LARGE_SIM_MEM_LIMIT;
    if let Some(n) = net.order_hint().filter(|&n| too_big(n)) {
        return skip_mem(n);
    }
    let g = cache.digraph(net);
    let n = g.vertex_count();
    if too_big(n) {
        return skip_mem(n);
    }
    let large = n >= opts.large_sim_min_n;
    // The yardstick every randomized mean is measured against: at small
    // n the exact behaviour of the network's deterministic protocol
    // (with the oracle's strongest floor alongside); at large n only the
    // ⌈lg n⌉ doubling floor — diameters and λ-searches are Ω(n²) there.
    let mut optimum = None;
    let mut optimum_s = None;
    let mut optimum_kind = None;
    let mut floor = ceil_log2(n) as f64;
    let mut yardstick = "doubling-floor";
    if !large {
        if let Some((kind, sp)) = cache.protocol(net, scenario.mode) {
            if sp.validate(&g).is_ok() {
                optimum = systolic_gossip_time_pool(
                    &sp,
                    n,
                    opts.sim_budget,
                    effective_sim_threads(n, sim_threads),
                );
                let ob = cache.oracle().bounds_on(
                    net,
                    &g,
                    cache.diameter(net),
                    sp.mode(),
                    Period::Systolic(sp.s()),
                );
                floor = ob.report.best_rounds;
                optimum_s = Some(sp.s());
                optimum_kind = Some(kind.label());
                if optimum.is_some() {
                    yardstick = "systolic-optimal";
                } else {
                    yardstick = "oracle-floor";
                }
            }
        }
    }
    let spec = &scenario.randomized;
    let mut rows = Vec::new();
    let mut text = format!(
        "{} — n = {}, {} randomized trials/model, seed {}, yardstick: {}\n",
        net.name(),
        n,
        spec.trials,
        spec.seed,
        match (optimum, yardstick) {
            (Some(t), _) => format!(
                "systolic optimum {t} rounds ({}, s = {})",
                optimum_kind.unwrap_or("?"),
                optimum_s.unwrap_or(0),
            ),
            (None, "oracle-floor") => format!("oracle floor {floor:.1} rounds"),
            _ => format!("doubling floor ⌈lg n⌉ = {floor:.0} rounds"),
        },
    );
    text.push_str(&format!(
        "  {:<9} {:>11} {:>8} {:>7} {:>6} {:>6} {:>11}\n",
        "model", "completed", "mean", "median", "p95", "max", "×yardstick"
    ));
    for model in ActivationModel::ALL {
        let cfg = RandomizedConfig {
            model,
            trials: spec.trials,
            seed: spec.seed,
            max_rounds: opts.sim_budget,
            threads: sim_threads.max(1),
            // Fixed per trial (never divided by the thread count), so
            // outcomes stay thread-count independent.
            mem_limit: Some(LARGE_SIM_MEM_LIMIT),
        };
        let started = std::time::Instant::now();
        let trials = run_randomized(&g, &cfg);
        let elapsed = started.elapsed();
        let summary = summarize(&trials);
        let aborted = trials.iter().any(|t| t.aborted_mem);
        let completed = summary.map_or(0, |s| s.completed);
        let peak = trials.iter().map(|t| t.peak_bytes).max().unwrap_or(0);
        let denominator = optimum.map_or(floor, |t| t as f64);
        let ratio = summary
            .filter(|_| denominator > 0.0)
            .map(|s| s.mean / denominator);
        text.push_str(&format!(
            "  {:<9} {:>5}/{:<5} {:>8} {:>7} {:>6} {:>6} {:>11}\n",
            model.label(),
            completed,
            spec.trials,
            summary.map_or("—".into(), |s| format!("{:.1}", s.mean)),
            summary.map_or("—".into(), |s| s.median.to_string()),
            summary.map_or("—".into(), |s| s.p95.to_string()),
            summary.map_or("—".into(), |s| s.max.to_string()),
            ratio.map_or("—".into(), |r| format!("{r:.2}")),
        ));
        rows.push(
            Row::new()
                .with("kind", "randomized")
                .with("network", net.name())
                .with("n", n)
                .with("model", model.label())
                .with("trials", spec.trials)
                .with("seed", i64::try_from(spec.seed).unwrap_or(i64::MAX))
                .with("completed", completed)
                .with("mean_rounds", summary.map(|s| s.mean))
                .with("median_rounds", summary.map(|s| s.median))
                .with("p95_rounds", summary.map(|s| s.p95))
                .with("max_rounds", summary.map(|s| s.max))
                .with("min_rounds", summary.map(|s| s.min))
                .with("optimum_rounds", optimum)
                .with("floor_rounds", floor)
                .with("ratio_to_optimum", ratio)
                .with("yardstick", yardstick)
                .with("peak_state_bytes", peak)
                .with("elapsed_ms", elapsed.as_millis() as i64)
                .with(
                    "verdict",
                    if completed == spec.trials {
                        "completed"
                    } else if aborted {
                        "aborted-mem"
                    } else {
                        "incomplete"
                    },
                ),
        );
    }
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

/// Runs the exact enumerator for every finite period of the scenario's
/// sweep: the optimum over *all* valid period-`s` schedules, proved by
/// oracle-pruned exhaustion, or an exact infeasibility statement. The
/// automorphism stabilizer chain is computed once per network through
/// the batch cache and shared across the period sweep. The exhaustive
/// pass fans out over the scenario's thread budget (or, by default, the
/// batch `--sim-threads` budget); outcomes are bit-identical either way.
fn enumerate_unit(
    net: &Network,
    scenario: &Scenario,
    cache: &BuildCache,
    sim_threads: usize,
) -> UnitOut {
    use sg_search::{enumerate_with_group, EnumerateConfig};
    let g = cache.digraph(net);
    let diameter = cache.diameter(net);
    let group = cache.perm_group(net);
    let threads = if scenario.enumerate.threads > 0 {
        scenario.enumerate.threads
    } else {
        sim_threads.max(1)
    };
    let mut rows = Vec::new();
    let mut text = String::new();
    for p in &scenario.periods {
        let Period::Systolic(s) = p else {
            text.push_str(&format!(
                "{}: s = ∞ has no finite period to enumerate — skipped\n",
                net.name()
            ));
            rows.push(
                Row::new()
                    .with("kind", "enumerate")
                    .with("network", net.name())
                    .with("n", g.vertex_count())
                    .with("mode", scenario.mode.name())
                    .with("s", "∞")
                    .with("verdict", "skipped"),
            );
            continue;
        };
        let cfg = EnumerateConfig::default().exact_period(*s).threads(threads);
        let out = enumerate_with_group(
            cache.oracle(),
            net,
            &g,
            diameter,
            scenario.mode,
            &group,
            &cfg,
        );
        let mut row = Row::new()
            .with("kind", "enumerate")
            .with("network", net.name())
            .with("n", g.vertex_count())
            .with("mode", scenario.mode.name())
            .with("s", *s)
            .with("optimal_rounds", out.best_rounds)
            .with("enumerated", out.enumerated)
            .with("pruned", out.pruned)
            .with("round_candidates", out.round_candidates)
            .with("representatives", out.representatives)
            .with("group_order", out.group_order.to_string())
            .with("chain_depth", out.chain_depth)
            .with("stabilizer_pruned", out.stabilizer_pruned)
            .with("memo_hits", out.memo_hits)
            .with("automorphisms", out.automorphisms)
            .with("threads", out.threads);
        match &out.certificate {
            Some(cert) => {
                text.push_str(&format!("{cert}\n"));
                text.push_str(&format!(
                    "  symmetry: |Aut| = {} (chain depth {}), {} round-0 orbit reps, \
                     {} stabilizer-pruned, {} relaxation cuts {:?}, {} memo hits\n",
                    out.group_order,
                    out.chain_depth,
                    out.representatives,
                    out.stabilizer_pruned,
                    out.pruned,
                    out.pruned_per_level,
                    out.memo_hits
                ));
                row = row
                    .with("floor_rounds", cert.floor_rounds)
                    .with("floor_source", cert.floor_source.label())
                    .with("gap_rounds", cert.gap_rounds())
                    .with("verdict", cert.verdict.label());
            }
            None => {
                text.push_str(&format!(
                    "{} (n = {}), {} mode, s = {s}: no valid period-{s} schedule gossips — \
                     proven infeasible ({} enumerated)\n",
                    net.name(),
                    g.vertex_count(),
                    scenario.mode,
                    out.enumerated
                ));
                row = row.with("verdict", "infeasible");
            }
        }
        rows.push(row);
    }
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

/// Runs `sg-search` for every exact period of the scenario's sweep and
/// reports each best schedule with its certificate. The found-vs-bound
/// relation is always surfaced — optimal, gap, or bound-slack — never
/// silently dropped.
fn search_unit(
    net: &Network,
    scenario: &Scenario,
    cache: &BuildCache,
    sim_threads: usize,
) -> UnitOut {
    use sg_search::{search_with_oracle, SearchConfig, Verdict};
    let g = cache.digraph(net);
    let diameter = cache.diameter(net);
    let mut rows = Vec::new();
    let mut text = String::new();
    let mut periods: Vec<usize> = Vec::new();
    for p in &scenario.periods {
        match p {
            Period::Systolic(s) => periods.push(*s),
            Period::NonSystolic => {
                // Synthesis needs a finite period to mutate; say so
                // rather than dropping the sweep entry on the floor.
                text.push_str(&format!(
                    "{}: s = ∞ has no finite period to search — skipped\n",
                    net.name()
                ));
                rows.push(
                    Row::new()
                        .with("kind", "search")
                        .with("network", net.name())
                        .with("n", g.vertex_count())
                        .with("mode", scenario.mode.name())
                        .with("s", "∞")
                        .with("verdict", "skipped"),
                );
            }
        }
    }
    for s in periods {
        let cfg = SearchConfig {
            min_period: s,
            max_period: s,
            restarts: scenario.search.restarts,
            iterations: scenario.search.iterations,
            seed: scenario.search.seed,
            threads: sim_threads.max(1),
            ..Default::default()
        };
        let out = search_with_oracle(cache.oracle(), net, &g, diameter, scenario.mode, &cfg);
        match (&out.certificate, out.best_rounds) {
            (Some(cert), Some(found)) => {
                text.push_str(&format!("{cert}  [{} evals]\n", out.evaluations));
                rows.push(
                    Row::new()
                        .with("kind", "search")
                        .with("network", net.name())
                        .with("n", cert.n)
                        .with("mode", scenario.mode.name())
                        .with("s", s)
                        .with("found_rounds", found)
                        .with("floor_rounds", cert.floor_rounds)
                        .with("floor_source", cert.floor_source.label())
                        .with("asymptotic_rounds", cert.asymptotic_rounds)
                        .with("lambda_star", cert.lambda_star)
                        .with("verdict", cert.verdict.label())
                        .with("gap_rounds", cert.gap_rounds())
                        .with(
                            "bound_slack_rounds",
                            match cert.verdict {
                                Verdict::BoundSlack { asymptotic_rounds } => {
                                    Some(asymptotic_rounds - found as f64)
                                }
                                _ => None,
                            },
                        )
                        .with("evaluations", out.evaluations)
                        .with("chains", out.chains),
                );
            }
            _ => {
                // No candidate completed — still reported, never dropped.
                text.push_str(&format!(
                    "{} s = {s}: no completing schedule within the budget ({} evals)\n",
                    net.name(),
                    out.evaluations
                ));
                rows.push(
                    Row::new()
                        .with("kind", "search")
                        .with("network", net.name())
                        .with("n", g.vertex_count())
                        .with("mode", scenario.mode.name())
                        .with("s", s)
                        .with("found_rounds", Option::<usize>::None)
                        .with("verdict", "incomplete")
                        .with("evaluations", out.evaluations),
                );
            }
        }
    }
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

fn family_row_unit(spec: &FamilySpec, scenario: &Scenario, cache: &BuildCache) -> UnitOut {
    let row = family_row(spec, scenario.mode, &scenario.periods, cache.oracle());
    let mut rows = Vec::new();
    for (p, cell) in scenario.periods.iter().zip(&row.cells) {
        rows.push(
            Row::new()
                .with("kind", "table")
                .with("family", spec.label.as_str())
                .with("mode", scenario.mode.name())
                .with("period", p.label())
                .with("e", cell.value)
                .with("starred", cell.starred),
        );
    }
    UnitOut {
        rows,
        fig_row: Some(row),
        ..Default::default()
    }
}

fn network_bounds_unit(net: &Network, scenario: &Scenario, cache: &BuildCache) -> UnitOut {
    let g = cache.digraph(net);
    let diameter = cache.diameter(net);
    let mut rows = Vec::new();
    let mut text = String::new();
    for &p in &scenario.periods {
        let ob = cache
            .oracle()
            .bounds_on(net, &g, diameter, scenario.mode, p);
        text.push_str(&format!("{}\n", ob.report));
        rows.push(ob.report.row().with("kind", "bound"));
    }
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

fn simulate_unit(
    net: &Network,
    scenario: &Scenario,
    cache: &BuildCache,
    opts: &BatchOptions,
    sim_threads: usize,
) -> UnitOut {
    // Gate on the hint first so hinted families at large order never
    // build anything dense…
    if let Some(n) = net.order_hint().filter(|&n| n >= opts.large_sim_min_n) {
        return simulate_large_unit(net, scenario, opts, n);
    }
    let g = cache.digraph(net);
    let n = g.vertex_count();
    // …and re-check the *built* order for the hint-less families
    // (trees, butterflies, de Bruijn, Kautz): a `db:2,17` has hint None
    // but order 131 072, and the dense n²-bit `Knowledge` table below
    // would be an OOM, not a slowdown. The digraph itself is only
    // O(n + m), so building it to learn n is safe.
    if n >= opts.large_sim_min_n {
        return simulate_large_unit(net, scenario, opts, n);
    }
    // The shared protocol memo: a serve daemon or a second scenario in
    // the same batch asking for this (network, mode) reuses the build.
    let Some((kind, sp)) = cache.protocol(net, scenario.mode) else {
        return UnitOut {
            text: Some(format!(
                "{}: no deterministic protocol in {} mode — skipped",
                net.name(),
                scenario.mode
            )),
            ..Default::default()
        };
    };
    if let Err(e) = sp.validate(&g) {
        return UnitOut {
            text: Some(format!("{}: invalid protocol — {e}", net.name())),
            ..Default::default()
        };
    }
    let dg = cache.delay_digraph(net, kind, || DelayDigraph::periodic(&sp));
    // A single memoized oracle lookup: when a bound scenario in the same
    // batch already asked for this (network, mode, period), the report is
    // shared rather than recomputed.
    let ob = cache.oracle().bounds_on(
        net,
        &g,
        cache.diameter(net),
        sp.mode(),
        Period::Systolic(sp.s()),
    );
    let report = &ob.report;
    // One simulation serves both the completion curve and the audit's
    // measured gossip time (the engine is deterministic). Big units split
    // each round's row writes across the persistent worker pool; the
    // pool engine is bit-identical, so outputs don't depend on it.
    let curve = knowledge_curve_pool(
        &sp,
        n,
        opts.sim_budget,
        effective_sim_threads(n, sim_threads),
    );
    let measured = curve.last().filter(|s| s.min == n).map(|s| s.round);
    let audit = audit_measured(net, &g, &sp, &dg, measured, opts.bound_opts);

    let mut rows = vec![Row::new()
        .with("kind", "audit")
        .with("network", net.name())
        .with("n", n)
        .with("s", audit.s)
        .with("protocol_mode", sp.mode().name())
        .with("measured_rounds", audit.measured_rounds)
        .with(
            "thm41_rounds",
            audit.matrix_bound.as_ref().map(|b| b.rounds),
        )
        .with(
            "lambda_star",
            audit.matrix_bound.as_ref().map(|b| b.lambda_star),
        )
        .with("closed_form_rounds", audit.closed_form_rounds)
        .with("best_bound_rounds", report.best_rounds)
        .with("sound", audit.is_sound())];

    let mut text = format!(
        "{} — n = {}, s = {}, strongest lower bound {:.1} rounds\n",
        net.name(),
        n,
        sp.s(),
        report.best_rounds
    );
    text.push_str(&format!(
        "{:>6} {:>8} {:>8} {:>10}\n",
        "round", "min", "max", "mean"
    ));
    let step = (curve.len() / 25).max(1);
    for (i, s) in curve.iter().enumerate() {
        let sampled = i % step == 0 || i + 1 == curve.len();
        if sampled {
            text.push_str(&format!(
                "{:>6} {:>8} {:>8} {:>10.1}\n",
                s.round, s.min, s.max, s.mean
            ));
            rows.push(
                Row::new()
                    .with("kind", "curve")
                    .with("network", net.name())
                    .with("round", s.round)
                    .with("min", s.min)
                    .with("max", s.max)
                    .with("mean", s.mean),
            );
        }
    }
    if let Some(last) = curve.last() {
        if last.min == n {
            text.push_str(&format!(
                "completed at round {}; bound/measured ratio {:.2}\n",
                last.round,
                report.best_rounds / last.round as f64
            ));
        } else {
            text.push_str(&format!(
                "did not complete within {} rounds\n",
                opts.sim_budget
            ));
        }
    }
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

/// Simulate unit for networks at or beyond `opts.large_sim_min_n`:
/// runs the sparse delta engine and reports completion plus resource
/// telemetry. Everything Ω(n²) is deliberately absent — no dense
/// `Knowledge` table, no all-pairs diameter, no λ-search audit, no
/// protocol validation pass (the builders are conformance-tested at
/// small n; the sparse engine is bit-identical by the same suite).
/// `n` is the network order, supplied by the caller: the `order_hint`
/// when one exists, else the built graph's real vertex count.
fn simulate_large_unit(
    net: &Network,
    scenario: &Scenario,
    opts: &BatchOptions,
    n: usize,
) -> UnitOut {
    // Unstructured instances densify: the sparse state can approach the
    // dense n²/8 bytes, so refuse upfront when even that worst case
    // cannot fit, rather than burn minutes to a guaranteed abort.
    if matches!(net, Network::RandomRegular { .. }) {
        let worst = (n / 8).saturating_mul(n);
        if worst > LARGE_SIM_MEM_LIMIT {
            return UnitOut {
                rows: vec![Row::new()
                    .with("kind", "large-sim")
                    .with("network", net.name())
                    .with("n", n)
                    .with("engine", "sparse")
                    .with("verdict", "skipped-mem")],
                text: Some(format!(
                    "{}: unstructured rows densify — worst-case sparse state \
                     ≈ {:.1} GiB exceeds the {:.1} GiB budget, skipped (run rows \
                     stay compact only for structured protocols)\n",
                    net.name(),
                    worst as f64 / (1u64 << 30) as f64,
                    LARGE_SIM_MEM_LIMIT as f64 / (1u64 << 30) as f64,
                )),
                ..Default::default()
            };
        }
    }
    let Some(sp) = net.reference_protocol() else {
        return UnitOut {
            text: Some(format!(
                "{}: no deterministic protocol — skipped",
                net.name()
            )),
            ..Default::default()
        };
    };
    // Mirror `protocol_for`'s mode rule without building the graph: a
    // full-duplex scenario only runs protocols that are full-duplex.
    if scenario.mode == Mode::FullDuplex && sp.mode() != Mode::FullDuplex {
        return UnitOut {
            text: Some(format!(
                "{}: no deterministic protocol in {} mode — skipped",
                net.name(),
                scenario.mode
            )),
            ..Default::default()
        };
    }
    let started = std::time::Instant::now();
    let out =
        run_systolic_sparse_with_limit(&sp, n, opts.sim_budget, true, Some(LARGE_SIM_MEM_LIMIT));
    let elapsed = started.elapsed();

    let mut rows = vec![Row::new()
        .with("kind", "large-sim")
        .with("network", net.name())
        .with("n", n)
        .with("s", sp.s())
        .with("protocol_mode", sp.mode().name())
        .with("engine", "sparse")
        .with("measured_rounds", out.result.completed_at)
        .with("rounds_run", out.rounds_run)
        .with("peak_state_bytes", out.peak_bytes)
        .with("aborted_mem", out.aborted_mem)
        .with("elapsed_ms", elapsed.as_millis() as i64)
        .with(
            "verdict",
            if out.result.completed_at.is_some() {
                "completed"
            } else if out.aborted_mem {
                "aborted-mem"
            } else {
                "incomplete"
            },
        )];
    let mut text = format!(
        "{} — n = {}, s = {}, sparse delta engine (dense table would be {:.1} GiB)\n",
        net.name(),
        n,
        sp.s(),
        (n as f64 / 8.0) * n as f64 / (1u64 << 30) as f64,
    );
    let step = (out.result.trace.len() / 25).max(1);
    text.push_str(&format!("{:>6} {:>10}\n", "round", "min"));
    for (i, &min) in out.result.trace.iter().enumerate() {
        if i % step == 0 || i + 1 == out.result.trace.len() {
            text.push_str(&format!("{:>6} {:>10}\n", i + 1, min));
            rows.push(
                Row::new()
                    .with("kind", "curve")
                    .with("network", net.name())
                    .with("round", i + 1)
                    .with("min", min),
            );
        }
    }
    match out.result.completed_at {
        Some(t) => text.push_str(&format!(
            "completed at round {t} in {:.2} s; peak sparse state {:.1} MiB\n",
            elapsed.as_secs_f64(),
            out.peak_bytes as f64 / (1u64 << 20) as f64,
        )),
        None if out.aborted_mem => text.push_str(&format!(
            "aborted after {} rounds: sparse state exceeded {:.1} GiB\n",
            out.rounds_run,
            LARGE_SIM_MEM_LIMIT as f64 / (1u64 << 30) as f64,
        )),
        None => text.push_str(&format!(
            "did not complete within {} rounds\n",
            opts.sim_budget
        )),
    }
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

/// Stable per-network seed so compare units are deterministic and
/// order-independent under any thread schedule.
fn net_seed(net: &Network) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in net.name().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ 1997
}

fn compare_unit(
    net: &Network,
    scenario: &Scenario,
    cache: &BuildCache,
    opts: &BatchOptions,
    sim_threads: usize,
) -> UnitOut {
    let skip_large = |n: usize| UnitOut {
        text: Some(format!(
            "{}: order {n} ≥ {} — the dense compare unit is skipped \
             at this size (use a simulate scenario; the sparse engine covers it)",
            net.name(),
            opts.large_sim_min_n
        )),
        ..Default::default()
    };
    // Same two-stage gate as `simulate_unit`: hint first, then the
    // built order for hint-less families.
    if let Some(n) = net.order_hint().filter(|&n| n >= opts.large_sim_min_n) {
        return skip_large(n);
    }
    let g = cache.digraph(net);
    let n = g.vertex_count();
    if n >= opts.large_sim_min_n {
        return skip_large(n);
    }
    let mut rows = Vec::new();
    let mut text = String::new();

    match cache.protocol(net, scenario.mode) {
        Some((kind, sp)) => {
            // 1. Audit the deterministic protocol against every bound,
            //    measuring the gossip time through the persistent
            //    worker-pool engine (bit-identical to sequential, shares
            //    the global thread budget).
            let dg = cache.delay_digraph(net, kind, || DelayDigraph::periodic(&sp));
            let measured = sp
                .validate(&g)
                .is_ok()
                .then(|| {
                    systolic_gossip_time_pool(
                        &sp,
                        n,
                        opts.sim_budget,
                        effective_sim_threads(n, sim_threads),
                    )
                })
                .flatten();
            let audit = audit_measured(net, &g, &sp, &dg, measured, opts.bound_opts);
            let sound = audit.is_sound();
            text.push_str(&format!(
                "{:<16} n {:>6}  s {:>3}  measured {:>7}  Thm4.1 {:>8}  Cor4.4 {:>8.1}  {}\n",
                net.name(),
                n,
                audit.s,
                audit.measured_rounds.map_or("—".into(), |t| t.to_string()),
                audit
                    .matrix_bound
                    .as_ref()
                    .map_or("—".into(), |b| format!("{:.1}", b.rounds)),
                audit.closed_form_rounds,
                if sound { "sound" } else { "VIOLATION" }
            ));
            rows.push(
                Row::new()
                    .with("kind", "audit")
                    .with("network", net.name())
                    .with("n", n)
                    .with("s", audit.s)
                    .with("measured_rounds", audit.measured_rounds)
                    .with(
                        "thm41_rounds",
                        audit.matrix_bound.as_ref().map(|b| b.rounds),
                    )
                    .with("closed_form_rounds", audit.closed_form_rounds)
                    .with("sound", sound),
            );

            // 2. Greedy (non-systolic) upper bound vs the 1.4404·log n
            //    general bound and the diameter.
            if !net.is_directed() {
                let mut rng =
                    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(net_seed(net));
                if let Some(out) = greedy_gossip(&g, Mode::HalfDuplex, 200 * n, &mut rng) {
                    let t = out.rounds as f64;
                    let bound = e_general_nonsystolic() * (n as f64).log2();
                    let slack = 2.0 * t.max(2.0).log2();
                    let diam = cache.diameter(net);
                    let sound =
                        bound - slack <= t + 1e-9 && diam.is_none_or(|d| out.rounds >= d as usize);
                    text.push_str(&format!(
                        "{:<16} greedy {:>5} rounds vs 1.4404·log n = {:>6.1}, diam {:>4}  {}\n",
                        net.name(),
                        out.rounds,
                        bound,
                        diam.map_or("∞".into(), |d| d.to_string()),
                        if sound { "sound" } else { "VIOLATION" }
                    ));
                    rows.push(
                        Row::new()
                            .with("kind", "greedy")
                            .with("network", net.name())
                            .with("n", n)
                            .with("greedy_rounds", out.rounds)
                            .with("nonsystolic_bound", bound)
                            .with("diameter", diam)
                            .with("sound", sound),
                    );
                }
            }
        }
        None => {
            // Directed shift network: Section 7 weighted-diameter bound
            // vs the exact Dijkstra diameter.
            let wg = match scenario.weights {
                WeightScheme::Unit => WeightedDigraph::unit_weights(&g),
                WeightScheme::ParityOneThree => WeightedDigraph::from_arcs(
                    n,
                    g.arcs().map(|a| {
                        (
                            a.from as usize,
                            a.to as usize,
                            if a.to % 2 == 0 { 1 } else { 3 },
                        )
                    }),
                ),
            };
            let bound = weighted_diameter_bound(&wg, opts.bound_opts);
            let diam = wg.diameter();
            match (bound, diam) {
                (Some(b), Some(d)) => {
                    let sound = b.rounds <= d as f64 + 1e-9;
                    text.push_str(&format!(
                        "{:<16} n {:>6}  λ* {:>7.4}  bound {:>8.2}  true diam {:>6}  {}\n",
                        net.name(),
                        n,
                        b.lambda_star,
                        b.rounds,
                        d,
                        if sound { "sound" } else { "VIOLATION" }
                    ));
                    rows.push(
                        Row::new()
                            .with("kind", "diameter")
                            .with("network", net.name())
                            .with("n", n)
                            .with("lambda_star", b.lambda_star)
                            .with("bound_rounds", b.rounds)
                            .with("true_diameter", d as i64)
                            .with("sound", sound),
                    );
                }
                _ => {
                    text.push_str(&format!(
                        "{:<16} — no bound / not strongly connected\n",
                        net.name()
                    ));
                }
            }
        }
    }

    // 3. BFS-verify the Lemma 3.1 separator where one exists.
    if let Some(sep) = net.concrete_separator() {
        if let Some(measured) = sep.measured_distance(&g) {
            let ok = measured >= sep.claimed_distance;
            text.push_str(&format!(
                "{:<16} separator |V1| {:>5} |V2| {:>5}  dist {:>4} ≥ claimed {:>4}  {}\n",
                net.name(),
                sep.v1.len(),
                sep.v2.len(),
                measured,
                sep.claimed_distance,
                if ok { "ok" } else { "VIOLATION" }
            ));
            rows.push(
                Row::new()
                    .with("kind", "separator")
                    .with("network", net.name())
                    .with("v1", sep.v1.len())
                    .with("v2", sep.v2.len())
                    .with("measured_distance", measured)
                    .with("claimed_distance", sep.claimed_distance)
                    .with("sound", ok),
            );
        }
    }

    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

fn matrices_unit() -> UnitOut {
    // The paper's Fig. 1 uses a k = 2 local pattern; take
    // (l0, r0, l1, r1) = (2, 1, 1, 2), s = 6, h = 3 block repetitions.
    let pattern = BlockPattern::from_blocks(vec![2, 1], vec![1, 2]);
    let lm = LocalMatrices::new(pattern.clone(), 3);
    let lambda = 0.6;

    let mut text = format!(
        "Fig. 1 — Mx(λ) for k = 2, pattern l = {:?}, r = {:?}, λ = {lambda}\n\n",
        pattern.l, pattern.r
    );
    text.push_str(&lm.mx(lambda).render(4));
    text.push_str(&format!(
        "\nFig. 2 — block structure: d(0,0) = {}, d(0,1) = {}, d(1,2) = {}\n",
        lm.d(0, 0),
        lm.d(0, 1),
        lm.d(1, 2)
    ));
    text.push_str(&format!("\nFig. 3 — Nx({lambda}):\n"));
    text.push_str(&lm.nx(lambda).render(4));
    text.push_str(&format!("\nOx({lambda}):\n"));
    text.push_str(&lm.ox(lambda).render(4));
    text.push_str(&format!(
        "\nsemi-eigenvalues: Nx → {:.6}, Ox → {:.6}\n",
        lm.nx_semi_eigenvalue(lambda),
        lm.ox_semi_eigenvalue(lambda)
    ));
    text.push_str(&format!(
        "\nFig. 7 — full-duplex Mx(λ) for s = 4 over 8 rounds, λ = {lambda}:\n"
    ));
    text.push_str(&full_duplex_mx(4, 8, lambda).render(4));

    let rows = vec![Row::new()
        .with("kind", "matrices")
        .with("pattern_l", format!("{:?}", pattern.l))
        .with("pattern_r", format!("{:?}", pattern.r))
        .with("lambda", lambda)
        .with("d_0_0", i64::try_from(lm.d(0, 0)).unwrap_or(i64::MAX))
        .with("d_0_1", i64::try_from(lm.d(0, 1)).unwrap_or(i64::MAX))
        .with("nx_semi_eigenvalue", lm.nx_semi_eigenvalue(lambda))
        .with("ox_semi_eigenvalue", lm.ox_semi_eigenvalue(lambda))];
    UnitOut {
        rows,
        text: Some(text),
        ..Default::default()
    }
}

fn checks_unit(checks: &[PaperCheck]) -> UnitOut {
    let outcomes: Vec<CheckOutcome> = checks
        .iter()
        .map(|c| {
            let got = (c.compute)();
            CheckOutcome {
                label: c.label.to_string(),
                expected: c.expected,
                got,
                ok: (got - c.expected).abs() <= c.tol,
            }
        })
        .collect();
    let rows = outcomes
        .iter()
        .map(|c| {
            Row::new()
                .with("kind", "check")
                .with("label", c.label.as_str())
                .with("paper", c.expected)
                .with("computed", c.got)
                .with("ok", c.ok)
        })
        .collect();
    UnitOut {
        rows,
        checks: outcomes,
        ..Default::default()
    }
}

// Re-export used by the CLI for "broadcast constants check" style notes.
#[doc(hidden)]
pub fn broadcast_constant(d: usize) -> f64 {
    c_broadcast(d)
}
