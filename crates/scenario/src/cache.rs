//! Cross-unit memoization for the batch executor.
//!
//! A period sweep evaluates one network at many periods, and several
//! scenarios in a batch often touch the same networks; building a CSR
//! digraph, measuring its diameter, and folding a protocol into its
//! periodic delay digraph are the expensive, reusable parts. The cache
//! shares them across all worker threads behind plain mutexes — every
//! entry is built at most a handful of times (benign build races are
//! tolerated rather than serialized) and read many times.

use crate::descriptor::{protocol_for, ProtocolKind};
use sg_delay::digraph::DelayDigraph;
use sg_graphs::digraph::Digraph;
use sg_graphs::group::{automorphism_group, PermGroup};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use systolic_gossip::{BoundOracle, Network, OracleStats};

/// Hit/build counters, for the `--stats` CLI surface and the tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Digraph cache hits.
    pub graph_hits: usize,
    /// Digraphs actually built.
    pub graph_builds: usize,
    /// Diameter cache hits.
    pub diameter_hits: usize,
    /// Diameters actually measured.
    pub diameter_builds: usize,
    /// Delay-digraph cache hits.
    pub delay_hits: usize,
    /// Delay digraphs actually folded.
    pub delay_builds: usize,
    /// Automorphism-group (stabilizer chain) cache hits.
    pub group_hits: usize,
    /// Stabilizer chains actually computed (Schreier–Sims runs).
    pub group_builds: usize,
    /// Largest automorphism-group order computed in the batch.
    pub group_order_max: u128,
    /// Deepest stabilizer chain computed in the batch.
    pub group_chain_depth_max: usize,
    /// Deterministic-protocol cache hits.
    pub protocol_hits: usize,
    /// Deterministic protocols actually constructed.
    pub protocol_builds: usize,
    /// Bound-oracle counters: every `(network, mode, period)` is
    /// computed at most once per batch, by construction.
    pub oracle: OracleStats,
}

/// The per-`(network, mode)` deterministic-protocol memo. `None` entries
/// record that the family has no deterministic protocol in that mode
/// (directed shift networks), so the absence is also computed once.
type ProtocolMemo = HashMap<(Network, Mode), Option<(ProtocolKind, Arc<SystolicProtocol>)>>;

/// Shared memo of built digraphs, measured diameters, deterministic
/// protocols and periodic delay digraphs, keyed by the network
/// descriptor (plus protocol kind for the delay structures, plus mode
/// for the protocols).
#[derive(Debug, Default)]
pub struct BuildCache {
    oracle: BoundOracle,
    graphs: Mutex<HashMap<Network, Arc<Digraph>>>,
    diameters: Mutex<HashMap<Network, Option<u32>>>,
    delays: Mutex<HashMap<(Network, ProtocolKind), Arc<DelayDigraph>>>,
    groups: Mutex<HashMap<Network, Arc<PermGroup>>>,
    protocols: Mutex<ProtocolMemo>,
    graph_hits: AtomicUsize,
    graph_builds: AtomicUsize,
    diameter_hits: AtomicUsize,
    diameter_builds: AtomicUsize,
    delay_hits: AtomicUsize,
    delay_builds: AtomicUsize,
    group_hits: AtomicUsize,
    group_builds: AtomicUsize,
    protocol_hits: AtomicUsize,
    protocol_builds: AtomicUsize,
    /// Batch-wide maxima of (group order, chain depth) — the group
    /// statistics the `--stats` surface reports.
    group_maxima: Mutex<(u128, usize)>,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built digraph of `net`, shared across threads.
    pub fn digraph(&self, net: &Network) -> Arc<Digraph> {
        if let Some(g) = self.graphs.lock().unwrap().get(net) {
            self.graph_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(g);
        }
        // Build outside the lock: a concurrent duplicate build is cheaper
        // than serializing every worker behind one construction.
        let built = Arc::new(net.build());
        self.graph_builds.fetch_add(1, Ordering::Relaxed);
        Arc::clone(self.graphs.lock().unwrap().entry(*net).or_insert(built))
    }

    /// The measured diameter of `net` (`None` when not strongly
    /// connected), shared across threads.
    pub fn diameter(&self, net: &Network) -> Option<u32> {
        if let Some(d) = self.diameters.lock().unwrap().get(net) {
            self.diameter_hits.fetch_add(1, Ordering::Relaxed);
            return *d;
        }
        let g = self.digraph(net);
        let d = sg_graphs::traversal::diameter(&g);
        self.diameter_builds.fetch_add(1, Ordering::Relaxed);
        *self.diameters.lock().unwrap().entry(*net).or_insert(d)
    }

    /// The periodic delay digraph of `net`'s protocol of `kind`, built by
    /// `build` on first use and shared afterwards — this is what lets
    /// repeated λ-searches across sweep points reuse one structure.
    pub fn delay_digraph(
        &self,
        net: &Network,
        kind: ProtocolKind,
        build: impl FnOnce() -> DelayDigraph,
    ) -> Arc<DelayDigraph> {
        let key = (*net, kind);
        if let Some(dg) = self.delays.lock().unwrap().get(&key) {
            self.delay_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(dg);
        }
        let built = Arc::new(build());
        self.delay_builds.fetch_add(1, Ordering::Relaxed);
        Arc::clone(self.delays.lock().unwrap().entry(key).or_insert(built))
    }

    /// The automorphism group of `net` as a stabilizer chain
    /// (Schreier–Sims), computed once per batch and shared — the
    /// symmetry substrate every enumeration unit of a sweep reuses.
    pub fn perm_group(&self, net: &Network) -> Arc<PermGroup> {
        if let Some(grp) = self.groups.lock().unwrap().get(net) {
            self.group_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(grp);
        }
        let g = self.digraph(net);
        let built = Arc::new(automorphism_group(&g));
        self.group_builds.fetch_add(1, Ordering::Relaxed);
        {
            let mut maxima = self.group_maxima.lock().unwrap();
            maxima.0 = maxima.0.max(built.order());
            maxima.1 = maxima.1.max(built.chain_depth());
        }
        Arc::clone(self.groups.lock().unwrap().entry(*net).or_insert(built))
    }

    /// The deterministic protocol [`protocol_for`] picks for `net` under
    /// `mode`, constructed once and shared across every unit and
    /// connection — `None` (no deterministic protocol exists) is
    /// memoized too. Sharing the schedule is what lets a query daemon
    /// certify the same reference protocol from many connections without
    /// rebuilding it per request.
    pub fn protocol(
        &self,
        net: &Network,
        mode: Mode,
    ) -> Option<(ProtocolKind, Arc<SystolicProtocol>)> {
        let key = (*net, mode);
        if let Some(entry) = self.protocols.lock().unwrap().get(&key) {
            self.protocol_hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }
        let g = self.digraph(net);
        let built = protocol_for(net, &g, mode).map(|(kind, sp)| (kind, Arc::new(sp)));
        self.protocol_builds.fetch_add(1, Ordering::Relaxed);
        self.protocols
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(built)
            .clone()
    }

    /// The batch-wide memoizing bound oracle: every consumer of lower
    /// bounds (bound reports, family tables, certificates, enumeration
    /// floors) resolves through this one instance.
    pub fn oracle(&self) -> &BoundOracle {
        &self.oracle
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let maxima = *self.group_maxima.lock().unwrap();
        CacheStats {
            graph_hits: self.graph_hits.load(Ordering::Relaxed),
            graph_builds: self.graph_builds.load(Ordering::Relaxed),
            diameter_hits: self.diameter_hits.load(Ordering::Relaxed),
            diameter_builds: self.diameter_builds.load(Ordering::Relaxed),
            delay_hits: self.delay_hits.load(Ordering::Relaxed),
            delay_builds: self.delay_builds.load(Ordering::Relaxed),
            group_hits: self.group_hits.load(Ordering::Relaxed),
            group_builds: self.group_builds.load(Ordering::Relaxed),
            group_order_max: maxima.0,
            group_chain_depth_max: maxima.1,
            protocol_hits: self.protocol_hits.load(Ordering::Relaxed),
            protocol_builds: self.protocol_builds.load(Ordering::Relaxed),
            oracle: self.oracle.stats(),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graphs {} built / {} hits; diameters {} built / {} hits; delay digraphs {} built / {} hits; ",
            self.graph_builds,
            self.graph_hits,
            self.diameter_builds,
            self.diameter_hits,
            self.delay_builds,
            self.delay_hits,
        )?;
        if self.group_builds > 0 {
            write!(
                f,
                "automorphism chains {} built / {} hits (max order {}, max depth {}); ",
                self.group_builds,
                self.group_hits,
                self.group_order_max,
                self.group_chain_depth_max
            )?;
        }
        if self.protocol_builds > 0 {
            write!(
                f,
                "protocols {} built / {} hits; ",
                self.protocol_builds, self.protocol_hits
            )?;
        }
        write!(f, "{}", self.oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::protocol_for;
    use sg_protocol::mode::Mode;

    #[test]
    fn digraph_and_diameter_are_shared() {
        let cache = BuildCache::new();
        let net = Network::DeBruijn { d: 2, dd: 4 };
        let a = cache.digraph(&net);
        let b = cache.digraph(&net);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.diameter(&net), cache.diameter(&net));
        let s = cache.stats();
        assert_eq!(s.graph_builds, 1);
        assert!(s.graph_hits >= 1);
        assert_eq!(s.diameter_builds, 1);
        assert_eq!(s.diameter_hits, 1);
    }

    #[test]
    fn delay_digraphs_memoize_per_protocol_kind() {
        let cache = BuildCache::new();
        let net = Network::Path { n: 10 };
        let g = cache.digraph(&net);
        let (kind, sp) = protocol_for(&net, &g, Mode::HalfDuplex).unwrap();
        let a = cache.delay_digraph(&net, kind, || DelayDigraph::periodic(&sp));
        let b = cache.delay_digraph(&net, kind, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!(s.delay_builds, 1);
        assert_eq!(s.delay_hits, 1);
    }

    #[test]
    fn perm_groups_are_shared_and_surface_maxima() {
        let cache = BuildCache::new();
        let net = Network::Hypercube { k: 3 };
        let a = cache.perm_group(&net);
        let b = cache.perm_group(&net);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.order(), 48);
        let s = cache.stats();
        assert_eq!(s.group_builds, 1);
        assert_eq!(s.group_hits, 1);
        assert_eq!(s.group_order_max, 48);
        assert!(s.group_chain_depth_max >= 2);
        assert!(format!("{s}").contains("automorphism chains 1 built"));
    }

    #[test]
    fn protocols_memoize_including_absent_ones() {
        let cache = BuildCache::new();
        let net = Network::Hypercube { k: 3 };
        let (kind_a, a) = cache.protocol(&net, Mode::FullDuplex).unwrap();
        let (kind_b, b) = cache.protocol(&net, Mode::FullDuplex).unwrap();
        assert_eq!(kind_a, kind_b);
        assert!(Arc::ptr_eq(&a, &b), "one shared schedule");
        // A directed shift network has no deterministic protocol; the
        // absence is cached rather than re-derived.
        let none = Network::DeBruijnDirected { d: 2, dd: 3 };
        assert!(cache.protocol(&none, Mode::Directed).is_none());
        assert!(cache.protocol(&none, Mode::Directed).is_none());
        let s = cache.stats();
        assert_eq!(s.protocol_builds, 2);
        assert_eq!(s.protocol_hits, 2);
        assert!(format!("{s}").contains("protocols 2 built"));
    }

    #[test]
    fn distinct_networks_do_not_collide() {
        let cache = BuildCache::new();
        let a = cache.digraph(&Network::Path { n: 10 });
        let b = cache.digraph(&Network::Cycle { n: 10 });
        assert_ne!(a.arc_count(), b.arc_count());
        assert_eq!(cache.stats().graph_builds, 2);
    }

    #[test]
    fn threads_share_one_build() {
        let cache = BuildCache::new();
        let net = Network::Hypercube { k: 6 };
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _ = cache.digraph(&net);
                    let _ = cache.diameter(&net);
                });
            }
        });
        let stats = cache.stats();
        // Benign races may build a duplicate, but the common case is one
        // build; either way every thread got an answer.
        assert!(stats.graph_builds >= 1);
        assert!(
            stats.graph_builds + stats.graph_hits >= 4,
            "all lookups accounted: {stats:?}"
        );
    }
}
