//! The named-scenario registry: every paper figure, the validation and
//! comparison suites of the former ad-hoc binaries, and the new topology
//! families the uniform harness unlocks.

use crate::descriptor::{ExecSpec, PaperCheck, RandomizedSpec, Scenario, Task, WeightScheme};
use sg_bounds::pfun::{BoundMode, Period};
use sg_bounds::tables::standard_periods;
use sg_bounds::{c_broadcast, e_coefficient, e_separator};
use sg_graphs::separator::{params_de_bruijn, params_wbf_undirected};
use sg_protocol::mode::Mode;
use systolic_gossip::Network;

fn systolic(range: std::ops::RangeInclusive<usize>) -> Vec<Period> {
    range.map(Period::Systolic).collect()
}

fn check(label: &'static str, expected: f64, compute: fn() -> f64) -> PaperCheck {
    PaperCheck {
        label,
        expected,
        tol: 1.2e-4,
        compute,
    }
}

/// Every named scenario, in presentation order.
pub fn registry() -> Vec<Scenario> {
    vec![
        // ——— The paper's figures ———
        Scenario::new(
            "fig4",
            "Fig. 4 — general lower bound e(s), directed & half-duplex",
            Task::Bound,
            Mode::HalfDuplex,
        )
        .periods(standard_periods())
        .checks([
            check("Fig.4 e(3)", 2.8808, || {
                e_coefficient(BoundMode::HalfDuplex, Period::Systolic(3))
            }),
            check("Fig.4 e(4)", 1.8133, || {
                e_coefficient(BoundMode::HalfDuplex, Period::Systolic(4))
            }),
            check("Fig.4 e(5)", 1.6502, || {
                e_coefficient(BoundMode::HalfDuplex, Period::Systolic(5))
            }),
            check("Fig.4 e(6)", 1.5363, || {
                e_coefficient(BoundMode::HalfDuplex, Period::Systolic(6))
            }),
            check("Fig.4 e(7)", 1.5021, || {
                e_coefficient(BoundMode::HalfDuplex, Period::Systolic(7))
            }),
            check("Fig.4 e(8)", 1.4721, || {
                e_coefficient(BoundMode::HalfDuplex, Period::Systolic(8))
            }),
            check("Fig.4 e(∞)", 1.4404, || {
                e_coefficient(BoundMode::HalfDuplex, Period::NonSystolic)
            }),
        ]),
        Scenario::new(
            "fig5",
            "Fig. 5 — systolic half-duplex lower bounds for specific networks",
            Task::Bound,
            Mode::HalfDuplex,
        )
        .degrees([2, 3])
        .periods(systolic(3..=8))
        .checks([
            check("Fig.5 WBF(2,D) s=4", 2.0218, || {
                e_separator(
                    params_wbf_undirected(2),
                    BoundMode::HalfDuplex,
                    Period::Systolic(4),
                )
                .e
            }),
            check("Fig.5 DB(2,D) s=4", 1.8133, || {
                e_separator(
                    params_de_bruijn(2),
                    BoundMode::HalfDuplex,
                    Period::Systolic(4),
                )
                .e
            }),
        ]),
        Scenario::new(
            "fig5-highdeg",
            "Fig. 5 extension — degrees 4, 5 up to s = 14 (improvements only for s > 8)",
            Task::Bound,
            Mode::HalfDuplex,
        )
        .degrees([4, 5])
        .periods(systolic(3..=14)),
        Scenario::new(
            "fig6",
            "Fig. 6 — non-systolic half-duplex lower bounds with the diameter column",
            Task::Bound,
            Mode::HalfDuplex,
        )
        .degrees([2, 3])
        .periods([Period::NonSystolic])
        .checks([
            check("Fig.6 WBF(2,D) s=∞", 1.9750, || {
                e_separator(
                    params_wbf_undirected(2),
                    BoundMode::HalfDuplex,
                    Period::NonSystolic,
                )
                .e
            }),
            check("Fig.6 DB(2,D) s=∞", 1.5876, || {
                e_separator(
                    params_de_bruijn(2),
                    BoundMode::HalfDuplex,
                    Period::NonSystolic,
                )
                .e
            }),
        ]),
        Scenario::new(
            "fig8",
            "Fig. 8 — full-duplex lower bounds; general row = broadcast constants c(s−1)",
            Task::Bound,
            Mode::FullDuplex,
        )
        .degrees([2, 3])
        .periods(standard_periods())
        .checks([
            check("c(2) of [22,2]", 1.4404, || c_broadcast(2)),
            check("c(3) of [22,2]", 1.1374, || c_broadcast(3)),
            check("c(4) of [22,2]", 1.0562, || c_broadcast(4)),
        ]),
        Scenario::new(
            "fig-matrices",
            "Figs. 1–3 and 7 — the local delay-matrix constructions",
            Task::Matrices,
            Mode::HalfDuplex,
        ),
        // ——— The former validation / comparison binaries ———
        Scenario::new(
            "curves",
            "Completion curves of the reference protocols vs their lower bounds",
            Task::Simulate,
            Mode::HalfDuplex,
        )
        .networks([
            Network::Hypercube { k: 6 },
            Network::WrappedButterfly { d: 2, dd: 4 },
            Network::DeBruijn { d: 2, dd: 6 },
        ]),
        Scenario::new(
            "diameter-bounds",
            "Section 7 — weighted-diameter matrix bounds vs exact Dijkstra diameters",
            Task::Compare,
            Mode::Directed,
        )
        .networks([
            Network::DeBruijnDirected { d: 2, dd: 8 },
            Network::DeBruijnDirected { d: 3, dd: 5 },
            Network::KautzDirected { d: 2, dd: 7 },
            Network::WrappedButterflyDirected { d: 2, dd: 5 },
        ]),
        Scenario::new(
            "diameter-bounds-weighted",
            "Section 7 on non-unit weights (1 into even vertices, 3 into odd)",
            Task::Compare,
            Mode::Directed,
        )
        .networks([Network::DeBruijnDirected { d: 2, dd: 7 }])
        .weights(WeightScheme::ParityOneThree),
        Scenario::new(
            "validate",
            "Audits, greedy upper bounds and BFS-verified separators across the workload zoo",
            Task::Compare,
            Mode::HalfDuplex,
        )
        .networks([
            Network::Path { n: 32 },
            Network::Cycle { n: 32 },
            Network::WrappedButterfly { d: 2, dd: 5 },
            Network::DeBruijn { d: 2, dd: 7 },
            Network::Kautz { d: 2, dd: 6 },
            Network::Butterfly { d: 2, dd: 4 },
            Network::Hypercube { k: 7 },
            Network::Knodel { delta: 7, n: 128 },
            Network::Grid2d { w: 10, h: 10 },
        ]),
        // ——— New topology families ———
        Scenario::new(
            "torus-sweep",
            "2-D tori under the edge-coloring protocol, growing sizes",
            Task::Simulate,
            Mode::HalfDuplex,
        )
        .networks([
            Network::Torus2d { w: 8, h: 8 },
            Network::Torus2d { w: 12, h: 12 },
            Network::Torus2d { w: 16, h: 16 },
        ]),
        Scenario::new(
            "ccc-tour",
            "Cube-connected cycles CCC(3..5): constant-degree hypercube derivatives",
            Task::Simulate,
            Mode::HalfDuplex,
        )
        .networks([
            Network::CubeConnectedCycles { k: 3 },
            Network::CubeConnectedCycles { k: 4 },
            Network::CubeConnectedCycles { k: 5 },
        ]),
        Scenario::new(
            "shuffle-exchange",
            "Shuffle-exchange networks SE(5..7) under the universal coloring protocol",
            Task::Simulate,
            Mode::HalfDuplex,
        )
        .networks([
            Network::ShuffleExchange { dd: 5 },
            Network::ShuffleExchange { dd: 6 },
            Network::ShuffleExchange { dd: 7 },
        ]),
        Scenario::new(
            "random-regular",
            "Seeded random regular graphs: audits and greedy bounds off the structured zoo",
            Task::Compare,
            Mode::HalfDuplex,
        )
        .networks([
            Network::RandomRegular {
                n: 64,
                d: 3,
                seed: 1997,
            },
            Network::RandomRegular {
                n: 128,
                d: 4,
                seed: 1997,
            },
            Network::RandomRegular {
                n: 256,
                d: 3,
                seed: 2026,
            },
        ]),
        Scenario::new(
            "knodel-family",
            "Knödel graphs W(Δ, n): the classical minimum-gossip-time family",
            Task::Simulate,
            Mode::FullDuplex,
        )
        .networks([
            Network::Knodel { delta: 4, n: 32 },
            Network::Knodel { delta: 5, n: 64 },
            Network::Knodel { delta: 6, n: 128 },
        ]),
        // ——— Large-n sparse-engine scenarios ———
        Scenario::new(
            "sim-large-knodel",
            "Knödel gossip at n = 10⁵ and 2²⁰ through the sparse delta engine",
            Task::Simulate,
            Mode::FullDuplex,
        )
        .networks([
            Network::Knodel {
                delta: 16,
                n: 100_000,
            },
            Network::Knodel {
                delta: 20,
                n: 1_048_576,
            },
        ]),
        Scenario::new(
            "sim-large-rr",
            "Random regular graphs at n = 10⁵ and 10⁶: sparse-engine behavior on unstructured rows",
            Task::Simulate,
            Mode::HalfDuplex,
        )
        .networks([
            Network::RandomRegular {
                n: 100_000,
                d: 3,
                seed: 1997,
            },
            Network::RandomRegular {
                n: 1_000_000,
                d: 3,
                seed: 1997,
            },
        ]),
        Scenario::new(
            "zoo-bounds",
            "Bound reports (s = 4 and non-systolic) across the whole undirected zoo",
            Task::Bound,
            Mode::HalfDuplex,
        )
        .networks([
            Network::Path { n: 32 },
            Network::Cycle { n: 32 },
            Network::Complete { n: 16 },
            Network::DaryTree { d: 2, h: 4 },
            Network::Grid2d { w: 6, h: 6 },
            Network::Torus2d { w: 6, h: 6 },
            Network::Hypercube { k: 6 },
            Network::ShuffleExchange { dd: 6 },
            Network::CubeConnectedCycles { k: 4 },
            Network::Knodel { delta: 5, n: 64 },
            Network::Butterfly { d: 2, dd: 4 },
            Network::WrappedButterfly { d: 2, dd: 4 },
            Network::DeBruijn { d: 2, dd: 6 },
            Network::Kautz { d: 2, dd: 5 },
            Network::RandomRegular {
                n: 64,
                d: 3,
                seed: 1997,
            },
        ])
        .periods([Period::Systolic(4), Period::NonSystolic]),
        // ——— Protocol synthesis (sg-search) ———
        Scenario::new(
            "search-path",
            "sg-search on P_8 — full-duplex schedules vs the n−1 diameter floor",
            Task::Search,
            Mode::FullDuplex,
        )
        .networks([Network::Path { n: 8 }])
        .periods(systolic(2..=4)),
        Scenario::new(
            "search-cycle",
            "sg-search on C_6/C_8 — full-duplex period sweep vs the n/2 diameter floor",
            Task::Search,
            Mode::FullDuplex,
        )
        .networks([Network::Cycle { n: 6 }, Network::Cycle { n: 8 }])
        .periods(systolic(2..=3)),
        Scenario::new(
            "search-cycle-s2",
            "sg-search on C_8 — half-duplex s = 2 against the paper's degenerate n−1 bound",
            Task::Search,
            Mode::HalfDuplex,
        )
        .networks([Network::Cycle { n: 8 }])
        .periods([Period::Systolic(2)]),
        Scenario::new(
            "search-hypercube",
            "sg-search on Q_2/Q_3 — full-duplex schedules vs the ⌈log₂ n⌉ doubling floor",
            Task::Search,
            Mode::FullDuplex,
        )
        .networks([Network::Hypercube { k: 2 }, Network::Hypercube { k: 3 }])
        .periods(systolic(2..=3)),
        Scenario::new(
            "search-torus",
            "sg-search on Torus(4×4) — full-duplex s = 4 vs the ⌈log₂ n⌉ doubling floor",
            Task::Search,
            Mode::FullDuplex,
        )
        .networks([Network::Torus2d { w: 4, h: 4 }])
        .periods([Period::Systolic(4)]),
        Scenario::new(
            "search-knodel",
            "sg-search on W(3,8) — can synthesis match the minimum-gossip family?",
            Task::Search,
            Mode::FullDuplex,
        )
        .networks([Network::Knodel { delta: 3, n: 8 }])
        .periods([Period::Systolic(3)]),
        // ——— Exact enumeration (settled theorems) ———
        Scenario::new(
            "enum-hypercube",
            "Exact optimum on Q_3 at s = 2 full-duplex — settles the reported gap (4 rounds)",
            Task::Enumerate,
            Mode::FullDuplex,
        )
        .networks([Network::Hypercube { k: 3 }])
        .periods([Period::Systolic(2)]),
        Scenario::new(
            "enum-cycle",
            "Exact optimum on C_8 at s = 3 full-duplex — settles the reported gap (5 rounds)",
            Task::Enumerate,
            Mode::FullDuplex,
        )
        .networks([Network::Cycle { n: 8 }])
        .periods([Period::Systolic(3)]),
        Scenario::new(
            "enum-cycle-directed",
            "Exact directed-mode optima on C_6 at s = 2, 3 — the linear s = 2 floor is off by one",
            Task::Enumerate,
            Mode::Directed,
        )
        .networks([Network::Cycle { n: 6 }])
        .periods(systolic(2..=3)),
        Scenario::new(
            "enum-path-directed",
            "Directed P_6: period 3 is provably infeasible (10 arcs, 9 slots), period 4 gossips",
            Task::Enumerate,
            Mode::Directed,
        )
        .networks([Network::Path { n: 6 }])
        .periods(systolic(3..=4)),
        // ——— Stabilizer-chain reach: richer families (PR 5) ———
        Scenario::new(
            "enum-knodel",
            "Exact optima on W(3,8): the minimum-gossip family meets its doubling floor at s = 3",
            Task::Enumerate,
            Mode::FullDuplex,
        )
        .networks([Network::Knodel { delta: 3, n: 8 }])
        .periods(systolic(2..=3)),
        Scenario::new(
            "enum-torus-3x3",
            "Exact optima on Torus(3×3) (|Aut| = 72): s = 2 forces 9 rounds, s = 3 only 5",
            Task::Enumerate,
            Mode::FullDuplex,
        )
        .networks([Network::Torus2d { w: 3, h: 3 }])
        .periods(systolic(2..=3)),
        Scenario::new(
            "enum-debruijn-directed",
            "Exact directed optima on DB(2,3): the linear s = 2 floor is off by one (8 rounds)",
            Task::Enumerate,
            Mode::Directed,
        )
        .networks([Network::DeBruijnDirected { d: 2, dd: 3 }])
        .periods(systolic(2..=3)),
        // ——— Individualization–refinement reach (parallel pass) ———
        Scenario::new(
            "enum-knodel-w416",
            "Exact optimum on W(4,16) at s = 2: provably cannot double — 8 rounds vs floor 4",
            Task::Enumerate,
            Mode::FullDuplex,
        )
        .networks([Network::Knodel { delta: 4, n: 16 }])
        .periods([Period::Systolic(2)]),
        // ——— Distributed execution under faults (sg-exec) ———
        Scenario::new(
            "exec-conformance",
            "Fault-free message-passing execution matches the lockstep simulator round for round",
            Task::Execute,
            Mode::FullDuplex,
        )
        .networks([
            Network::Path { n: 8 },
            Network::Hypercube { k: 3 },
            Network::Knodel { delta: 3, n: 8 },
            Network::Torus2d { w: 4, h: 4 },
        ]),
        Scenario::new(
            "exec-lossy",
            "Execution under 5% link drops: the repeating period is the retransmission loop",
            Task::Execute,
            Mode::FullDuplex,
        )
        .networks([
            Network::Hypercube { k: 4 },
            Network::Knodel { delta: 4, n: 16 },
        ])
        .exec_spec(ExecSpec {
            drop_prob: 0.05,
            ..ExecSpec::default()
        }),
        Scenario::new(
            "exec-delayed",
            "Execution under random delivery delays (≤ 2 rounds) on top of 1% drops",
            Task::Execute,
            Mode::HalfDuplex,
        )
        .networks([
            Network::Torus2d { w: 4, h: 4 },
            Network::DeBruijn { d: 2, dd: 4 },
        ])
        .exec_spec(ExecSpec {
            drop_prob: 0.01,
            max_delay: 2,
            ..ExecSpec::default()
        }),
        Scenario::new(
            "exec-crash",
            "Node 0 crashes at round 2 and warm-restarts at round 6: knowledge survives, lost rounds are re-sent",
            Task::Execute,
            Mode::FullDuplex,
        )
        .networks([
            Network::Hypercube { k: 4 },
            Network::Knodel { delta: 4, n: 16 },
        ])
        .exec_spec(ExecSpec {
            crashes: vec![(0, 2, Some(6))],
            ..ExecSpec::default()
        }),
        // ——— Randomized baselines (push / pull / exchange) ———
        Scenario::new(
            "rand-cycle",
            "Randomized gossip on C_64: Θ(n) stopping times vs the exact systolic optimum",
            Task::Randomized,
            Mode::HalfDuplex,
        )
        .networks([Network::Cycle { n: 64 }]),
        Scenario::new(
            "rand-hypercube",
            "Randomized gossip on Q_8: Θ(log n) trials vs the dimension-sweep optimum",
            Task::Randomized,
            Mode::FullDuplex,
        )
        .networks([Network::Hypercube { k: 8 }]),
        Scenario::new(
            "rand-knodel",
            "Randomized gossip on W(6,64) vs the minimum-gossip-family optimum",
            Task::Randomized,
            Mode::FullDuplex,
        )
        .networks([Network::Knodel { delta: 6, n: 64 }]),
        Scenario::new(
            "rand-large-rr",
            "Randomized gossip at n = 10⁵ on a random 3-regular graph: sparse rows, ⌈lg n⌉ doubling floor",
            Task::Randomized,
            Mode::HalfDuplex,
        )
        .networks([Network::RandomRegular {
            n: 100_000,
            d: 3,
            seed: 1997,
        }])
        .randomized_spec(RandomizedSpec {
            trials: 3,
            ..RandomizedSpec::default()
        }),
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_twelve_scenarios_with_unique_names() {
        let reg = registry();
        assert!(reg.len() >= 12, "{} scenarios", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
    }

    #[test]
    fn every_paper_figure_is_registered() {
        for name in ["fig4", "fig5", "fig6", "fig8", "fig-matrices"] {
            assert!(find(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn new_families_are_registered() {
        for name in [
            "torus-sweep",
            "ccc-tour",
            "shuffle-exchange",
            "random-regular",
            "knodel-family",
        ] {
            assert!(find(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn search_scenarios_are_registered_with_exact_period_sweeps() {
        for name in [
            "search-path",
            "search-cycle",
            "search-cycle-s2",
            "search-hypercube",
            "search-torus",
            "search-knodel",
        ] {
            let sc = find(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(sc.task, Task::Search, "{name}");
            assert!(!sc.networks.is_empty(), "{name}: needs networks");
            assert!(
                !sc.periods.is_empty()
                    && sc
                        .periods
                        .iter()
                        .all(|p| matches!(p, Period::Systolic(s) if *s >= 2)),
                "{name}: search sweeps exact systolic periods"
            );
            // Small n only: synthesis sweeps are exponential-ish in spirit.
            for net in &sc.networks {
                assert!(
                    net.build().vertex_count() <= 16,
                    "{name}: keep searches small"
                );
            }
        }
    }

    #[test]
    fn enumerate_scenarios_are_registered_small_and_exact_period() {
        let mut directed = 0;
        for name in [
            "enum-hypercube",
            "enum-cycle",
            "enum-cycle-directed",
            "enum-path-directed",
            "enum-knodel",
            "enum-torus-3x3",
            "enum-debruijn-directed",
            "enum-knodel-w416",
        ] {
            let sc = find(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(sc.task, Task::Enumerate, "{name}");
            assert!(!sc.networks.is_empty(), "{name}: needs networks");
            assert!(
                !sc.periods.is_empty()
                    && sc
                        .periods
                        .iter()
                        .all(|p| matches!(p, Period::Systolic(s) if *s >= 2)),
                "{name}: enumeration sweeps exact systolic periods"
            );
            if sc.mode == Mode::Directed {
                directed += 1;
            }
            // Exhaustive enumeration must stay small even with the
            // stabilizer-chain pruning.
            for net in &sc.networks {
                assert!(
                    net.build().vertex_count() <= 16,
                    "{name}: keep enumerations small"
                );
            }
        }
        assert!(directed >= 2, "directed-mode enumeration variants exist");
        // The stabilizer-chain reach: at least one enumeration network
        // with a rich automorphism group (|Aut| ≥ 16).
        let torus = find("enum-torus-3x3").unwrap();
        let g = torus.networks[0].build();
        assert!(sg_graphs::group::automorphism_group(&g).order() >= 16);
    }

    #[test]
    fn execute_scenarios_are_registered_small_with_sound_fault_plans() {
        let mut faulty = 0;
        for name in [
            "exec-conformance",
            "exec-lossy",
            "exec-delayed",
            "exec-crash",
        ] {
            let sc = find(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(sc.task, Task::Execute, "{name}");
            assert!(!sc.networks.is_empty(), "{name}: needs networks");
            assert!(
                (0.0..1.0).contains(&sc.exec.drop_prob),
                "{name}: drop probability must stay below certain loss"
            );
            for &(node, at, restart) in &sc.exec.crashes {
                assert!(
                    restart.is_none_or(|r| r > at),
                    "{name}: restart after crash"
                );
                for net in &sc.networks {
                    assert!(
                        (node as usize) < net.build().vertex_count(),
                        "{name}: crash node exists in every network"
                    );
                }
            }
            if sc.exec != ExecSpec::default() {
                faulty += 1;
            }
            // Execution fleets are per-node dense: keep them small.
            for net in &sc.networks {
                assert!(
                    net.build().vertex_count() <= 64,
                    "{name}: keep execution fleets small"
                );
            }
        }
        assert_eq!(faulty, 3, "lossy, delayed and crash variants inject faults");
        // The conformance scenario is exactly the fault-free plan.
        let conf = find("exec-conformance").unwrap();
        assert_eq!(conf.exec, ExecSpec::default());
        assert_eq!(
            registry().len(),
            40,
            "registry grew to 40 with the randomized-baseline scenarios"
        );
    }

    #[test]
    fn randomized_scenarios_are_registered_undirected_with_sound_specs() {
        let mut large = 0;
        for name in [
            "rand-cycle",
            "rand-hypercube",
            "rand-knodel",
            "rand-large-rr",
        ] {
            let sc = find(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(sc.task, Task::Randomized, "{name}");
            assert!(!sc.networks.is_empty(), "{name}: needs networks");
            assert!(sc.randomized.trials >= 1, "{name}: needs trials");
            for net in &sc.networks {
                // Pull/exchange read along the reversed arc: the model is
                // only defined on symmetric networks.
                assert!(!net.is_directed(), "{name}: {} is directed", net.name());
                if net.order_hint().is_some_and(|n| n >= 100_000) {
                    large += 1;
                    // Large batches stay feasible: a few trials, and the
                    // worst-case dense state fits the memory ceiling.
                    assert!(sc.randomized.trials <= 8, "{name}: too many large trials");
                } else {
                    // Small batches carry the statistics: enough trials
                    // for the Θ-bound suite to be stable.
                    assert!(sc.randomized.trials >= 100, "{name}: too few trials");
                    assert!(
                        net.build().vertex_count() <= 1024,
                        "{name}: keep statistical batches small"
                    );
                }
            }
        }
        assert_eq!(large, 1, "exactly one n ≥ 10⁵ randomized point");
    }

    #[test]
    fn find_is_exact() {
        assert!(find("fig5").is_some());
        assert!(find("fig7").is_none());
        assert_eq!(find("curves").unwrap().task, Task::Simulate);
    }

    #[test]
    fn scenario_networks_build() {
        for sc in registry() {
            for net in &sc.networks {
                // Large-n networks are gated on a closed-form order hint
                // (the runner never dense-builds them in tests); building
                // a 10⁶-vertex random graph here would dominate the suite.
                if let Some(n) = net.order_hint().filter(|&n| n >= 50_000) {
                    assert!(n > 0, "{}: {}", sc.name, net.name());
                    continue;
                }
                let g = net.build();
                assert!(g.vertex_count() > 0, "{}: {}", sc.name, net.name());
                if let Some(hint) = net.order_hint() {
                    assert_eq!(hint, g.vertex_count(), "{}: {}", sc.name, net.name());
                }
            }
        }
    }

    #[test]
    fn large_sim_scenarios_are_shaped_for_the_sparse_engine() {
        for name in ["sim-large-knodel", "sim-large-rr"] {
            let sc = find(name).unwrap_or_else(|| panic!("{name} registered"));
            assert_eq!(sc.task, Task::Simulate, "{name}");
            assert_eq!(sc.networks.len(), 2, "{name}");
            for net in &sc.networks {
                let n = net
                    .order_hint()
                    .unwrap_or_else(|| panic!("{name}: {} needs an order hint", net.name()));
                assert!(n >= 100_000, "{name}: {} too small", net.name());
            }
        }
    }
}
