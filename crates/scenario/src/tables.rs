//! Generic family tables: one builder behind Figs. 4, 5, 6 and 8.
//!
//! The paper's four numeric tables are all instances of one shape — rows
//! are network families (plus the "any network" general row), columns are
//! periods (plus a diameter column in the non-systolic comparison) — so
//! the scenario subsystem generates them from `(mode, degrees, periods)`
//! instead of keeping four bespoke builders. The cell values come from
//! the same `sg_bounds` engine as `tables::fig4()` … `fig8()`, so the
//! numbers are identical (property-tested in `tests/registry.rs`).

use sg_bounds::diameter;
use sg_bounds::pfun::{BoundMode, Period};
use sg_bounds::tables::{Cell, FigRow, FigTable};
use sg_graphs::separator::{
    params_butterfly, params_de_bruijn, params_kautz, params_wbf_directed, params_wbf_undirected,
    SeparatorParams,
};
use sg_protocol::mode::Mode;
use systolic_gossip::{bound_mode, BoundOracle};

/// One row of a family table: the general bound (no separator) or a
/// separator family at a fixed degree.
#[derive(Debug, Clone)]
pub struct FamilySpec {
    /// Row label in the paper's notation.
    pub label: String,
    /// Separator parameters; `None` for the general "any network" row.
    pub params: Option<SeparatorParams>,
    /// The family's diameter coefficient (Fig. 6 comparison column).
    pub diam_coeff: Option<f64>,
}

/// The rows of a family table for `mode` and `degrees`: the general row
/// when `degrees` is empty or the mode is full-duplex (Fig. 4's only row,
/// Fig. 8's first row), then the five Lemma 3.1 families per degree —
/// minus the directed wrapped butterfly in full-duplex mode, which has no
/// full-duplex variant.
pub fn family_specs(mode: Mode, degrees: &[usize]) -> Vec<FamilySpec> {
    let full_duplex = matches!(mode, Mode::FullDuplex);
    let mut rows = Vec::new();
    if degrees.is_empty() || full_duplex {
        rows.push(FamilySpec {
            label: "any network".into(),
            params: None,
            diam_coeff: None,
        });
    }
    for &d in degrees {
        rows.push(FamilySpec {
            label: format!("BF({d},D)"),
            params: Some(params_butterfly(d)),
            diam_coeff: Some(diameter::diam_coeff_butterfly(d)),
        });
        if !full_duplex {
            rows.push(FamilySpec {
                label: format!("WBF->({d},D)"),
                params: Some(params_wbf_directed(d)),
                diam_coeff: Some(diameter::diam_coeff_wbf_directed(d)),
            });
        }
        rows.push(FamilySpec {
            label: format!("WBF({d},D)"),
            params: Some(params_wbf_undirected(d)),
            diam_coeff: Some(diameter::diam_coeff_wbf_undirected(d)),
        });
        rows.push(FamilySpec {
            label: format!("DB({d},D)"),
            params: Some(params_de_bruijn(d)),
            diam_coeff: Some(diameter::diam_coeff_de_bruijn(d)),
        });
        rows.push(FamilySpec {
            label: format!("K({d},D)"),
            params: Some(params_kautz(d)),
            diam_coeff: Some(diameter::diam_coeff_kautz(d)),
        });
    }
    rows
}

/// `true` when the table gets the Fig. 6 diameter comparison column: the
/// sweep is exactly the non-systolic limit.
pub fn with_diameter_column(periods: &[Period]) -> bool {
    periods == [Period::NonSystolic]
}

/// Computes one row of the family table, resolving every cell through
/// the batch's shared memoizing oracle — repeated columns and families
/// shared between scenarios cost one optimizer run each.
pub fn family_row(
    spec: &FamilySpec,
    mode: Mode,
    periods: &[Period],
    oracle: &BoundOracle,
) -> FigRow {
    let bm: BoundMode = bound_mode(mode);
    let mut cells: Vec<Cell> = periods
        .iter()
        .map(|&p| {
            let (value, starred) = oracle.family_cell(spec.params, bm, p);
            Cell { value, starred }
        })
        .collect();
    if with_diameter_column(periods) {
        cells.push(Cell {
            value: spec.diam_coeff.unwrap_or(f64::NAN),
            starred: false,
        });
    }
    FigRow {
        label: spec.label.clone(),
        cells,
    }
}

/// Assembles a rendered table from precomputed rows.
pub fn assemble_table(title: &str, periods: &[Period], rows: Vec<FigRow>) -> FigTable {
    let mut columns: Vec<String> = periods.iter().map(|p| p.label()).collect();
    if with_diameter_column(periods) {
        columns.push("diam.".into());
    }
    FigTable {
        title: title.to_string(),
        columns,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_bounds::tables;

    fn std_periods() -> Vec<Period> {
        tables::standard_periods()
    }

    fn table_for(mode: Mode, degrees: &[usize], periods: &[Period]) -> FigTable {
        let oracle = BoundOracle::new();
        let rows = family_specs(mode, degrees)
            .iter()
            .map(|spec| family_row(spec, mode, periods, &oracle))
            .collect();
        assemble_table("t", periods, rows)
    }

    fn assert_tables_equal(a: &FigTable, b: &FigTable) {
        assert_eq!(a.rows.len(), b.rows.len(), "row count");
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.label, rb.label);
            assert_eq!(ra.cells.len(), rb.cells.len(), "{}", ra.label);
            for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
                assert!(
                    (ca.value - cb.value).abs() < 1e-12,
                    "{}: {} vs {}",
                    ra.label,
                    ca.value,
                    cb.value
                );
                assert_eq!(ca.starred, cb.starred, "{}", ra.label);
            }
        }
    }

    #[test]
    fn reproduces_fig4() {
        let got = table_for(Mode::HalfDuplex, &[], &std_periods());
        assert_tables_equal(&got, &tables::fig4());
    }

    #[test]
    fn reproduces_fig5() {
        let periods: Vec<Period> = (3..=8).map(Period::Systolic).collect();
        let got = table_for(Mode::HalfDuplex, &[2, 3], &periods);
        assert_tables_equal(&got, &tables::fig5());
    }

    #[test]
    fn reproduces_fig6() {
        let got = table_for(Mode::HalfDuplex, &[2, 3], &[Period::NonSystolic]);
        assert_tables_equal(&got, &tables::fig6());
    }

    #[test]
    fn reproduces_fig8() {
        let got = table_for(Mode::FullDuplex, &[2, 3], &std_periods());
        assert_tables_equal(&got, &tables::fig8());
    }
}
