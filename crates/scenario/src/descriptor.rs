//! The [`Scenario`] descriptor: one named, declarative experiment.
//!
//! A scenario captures *what* to run — network list, communication mode,
//! period/degree sweep, task — as plain data. The batch executor in
//! [`crate::runner`] decides *how*: it expands every scenario into
//! independent work units, fans them out across a thread pool, and
//! memoizes built digraphs and periodic delay digraphs across sweep
//! points.

use sg_bounds::pfun::Period;
use sg_protocol::builders::full_duplex_coloring_periodic;
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use systolic_gossip::Network;

/// What a scenario computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Lower-bound tables and per-network [`systolic_gossip::BoundReport`]s
    /// over the period sweep (the paper's Figs. 4, 5, 6, 8).
    Bound,
    /// Run each network's protocol, audit it against the theory, and
    /// record the per-round completion curve.
    Simulate,
    /// Measured executions / exact values vs bounds: protocol audits,
    /// greedy upper bounds, BFS-verified separators, weighted-diameter
    /// comparisons on directed shift networks.
    Compare,
    /// The matrix-construction figures (Figs. 1–3 and 7).
    Matrices,
    /// Protocol synthesis: hunt for optimal systolic schedules with
    /// `sg-search` and certify them against the lower bounds.
    Search,
    /// Exact optima: oracle-pruned exhaustive enumeration over every
    /// valid period-`s` schedule, issuing `ProvenOptimal` certificates
    /// (or exact infeasibility statements) for the period sweep.
    Enumerate,
    /// Distributed execution: run the network's protocol as a fleet of
    /// message-passing nodes through `sg-exec`'s deterministic driver,
    /// injecting faults from the scenario's [`ExecSpec`], and report
    /// rounds-to-completion against the fault-free optimum.
    Execute,
    /// Randomized baselines: seeded push/pull/exchange gossip trials
    /// (the scenario's [`RandomizedSpec`]) with mean/median/p95/max
    /// stopping times and the ratio to the exact systolic optimum or
    /// lower-bound floor on the same network.
    Randomized,
}

impl Task {
    /// Stable lowercase name (CLI surface).
    pub fn name(self) -> &'static str {
        match self {
            Task::Bound => "bound",
            Task::Simulate => "simulate",
            Task::Compare => "compare",
            Task::Matrices => "matrices",
            Task::Search => "search",
            Task::Enumerate => "enumerate",
            Task::Execute => "execute",
            Task::Randomized => "randomized",
        }
    }
}

/// Knobs of a [`Task::Search`] scenario: how hard each network × period
/// search works. Kept separate from `sg_search::SearchConfig` so the
/// descriptor stays plain data; the runner folds these into the full
/// config (periods come from the scenario's period sweep, threads from
/// the batch thread budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSpec {
    /// Independent annealing chains per period.
    pub restarts: usize,
    /// Mutation/evaluation steps per chain.
    pub iterations: usize,
    /// Master seed (chains derive their own streams deterministically).
    pub seed: u64,
}

impl Default for SearchSpec {
    fn default() -> Self {
        Self {
            restarts: 6,
            iterations: 400,
            seed: 1997,
        }
    }
}

/// Knobs of a [`Task::Execute`] scenario: the declarative fault plan
/// the driver injects. Kept separate from `sg_exec::FaultPlan` so the
/// descriptor stays plain data; the runner folds these into the full
/// plan (threads come from the batch thread budget).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecSpec {
    /// Master seed of the counter-based fault samplers.
    pub seed: u64,
    /// Per-message link drop probability in `[0, 1]`.
    pub drop_prob: f64,
    /// Extra delivery delay, uniform over `0..=max_delay` rounds.
    pub max_delay: u32,
    /// Crash events: `(node, first round down, first round back up)`;
    /// `None` = down forever. Knowledge survives the restart.
    pub crashes: Vec<(u32, u64, Option<u64>)>,
}

impl Default for ExecSpec {
    fn default() -> Self {
        Self {
            seed: 2026,
            drop_prob: 0.0,
            max_delay: 0,
            crashes: Vec::new(),
        }
    }
}

/// Knobs of a [`Task::Randomized`] scenario: how many independent
/// randomized-gossip trials run per activation model, and under which
/// master seed. Kept separate from `sg_sim::RandomizedConfig` so the
/// descriptor stays plain data; the runner folds these into the full
/// config (round budget from the batch sim budget, threads from the
/// batch thread budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomizedSpec {
    /// Independent trials per activation model.
    pub trials: usize,
    /// Master seed; trial `t` draws from counter-based
    /// `(seed, t, round)` streams, so batches are thread-count
    /// independent.
    pub seed: u64,
}

impl Default for RandomizedSpec {
    fn default() -> Self {
        Self {
            trials: 200,
            seed: 1997,
        }
    }
}

/// Knobs of a [`Task::Enumerate`] scenario. Kept separate from
/// `sg_search::EnumerateConfig` so the descriptor stays plain data; the
/// runner folds these into the full config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnumerateSpec {
    /// Thread budget of the exhaustive pass; `0` (the default) inherits
    /// the batch thread budget (`--sim-threads`). Outcomes are
    /// bit-identical at any budget — this only trades wall-clock.
    pub threads: usize,
}

/// Arc-weight assignment for the Section 7 weighted-diameter comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// Every arc weighs 1.
    Unit,
    /// Weight 1 into even vertices, 3 into odd ones (the contrast case of
    /// the old `diameter_bounds` binary).
    ParityOneThree,
}

/// A value the paper states, re-derived and diffed on every run.
#[derive(Clone)]
pub struct PaperCheck {
    /// What the paper calls it.
    pub label: &'static str,
    /// The stated value.
    pub expected: f64,
    /// Allowed absolute deviation (the figures print 4 decimals).
    pub tol: f64,
    /// Recomputes the value from the engine.
    pub compute: fn() -> f64,
}

impl std::fmt::Debug for PaperCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaperCheck")
            .field("label", &self.label)
            .field("expected", &self.expected)
            .field("tol", &self.tol)
            .finish_non_exhaustive()
    }
}

/// One named, declarative experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry name (`sg-bench run <name>`).
    pub name: &'static str,
    /// One-line description (`sg-bench list`).
    pub summary: &'static str,
    /// What to compute.
    pub task: Task,
    /// Communication mode the scenario analyzes.
    pub mode: Mode,
    /// Concrete networks to run on (may be empty for pure-table
    /// scenarios).
    pub networks: Vec<Network>,
    /// Degree sweep for the separator-family tables (Figs. 5, 6, 8 rows);
    /// empty means only the general "any network" row.
    pub degrees: Vec<usize>,
    /// Period sweep (Figs. 4–8 columns; ignored by [`Task::Simulate`],
    /// which uses each protocol's own period).
    pub periods: Vec<Period>,
    /// Arc weights for directed-network diameter comparisons.
    pub weights: WeightScheme,
    /// Paper-stated values re-derived on every run.
    pub checks: Vec<PaperCheck>,
    /// Effort knobs for [`Task::Search`] scenarios (ignored elsewhere).
    pub search: SearchSpec,
    /// Fault plan for [`Task::Execute`] scenarios (ignored elsewhere).
    pub exec: ExecSpec,
    /// Knobs for [`Task::Enumerate`] scenarios (ignored elsewhere).
    pub enumerate: EnumerateSpec,
    /// Trial batch for [`Task::Randomized`] scenarios (ignored
    /// elsewhere).
    pub randomized: RandomizedSpec,
}

impl Scenario {
    /// A scenario skeleton with the given identity; fill the sweep fields
    /// with the builder methods.
    pub fn new(name: &'static str, summary: &'static str, task: Task, mode: Mode) -> Self {
        Self {
            name,
            summary,
            task,
            mode,
            networks: Vec::new(),
            degrees: Vec::new(),
            periods: Vec::new(),
            weights: WeightScheme::Unit,
            checks: Vec::new(),
            search: SearchSpec::default(),
            exec: ExecSpec::default(),
            enumerate: EnumerateSpec::default(),
            randomized: RandomizedSpec::default(),
        }
    }

    /// Sets the network list.
    pub fn networks(mut self, nets: impl IntoIterator<Item = Network>) -> Self {
        self.networks = nets.into_iter().collect();
        self
    }

    /// Sets the degree sweep.
    pub fn degrees(mut self, ds: impl IntoIterator<Item = usize>) -> Self {
        self.degrees = ds.into_iter().collect();
        self
    }

    /// Sets the period sweep.
    pub fn periods(mut self, ps: impl IntoIterator<Item = Period>) -> Self {
        self.periods = ps.into_iter().collect();
        self
    }

    /// Sets the weight scheme.
    pub fn weights(mut self, w: WeightScheme) -> Self {
        self.weights = w;
        self
    }

    /// Attaches paper checks.
    pub fn checks(mut self, cs: impl IntoIterator<Item = PaperCheck>) -> Self {
        self.checks = cs.into_iter().collect();
        self
    }

    /// Sets the search effort knobs.
    pub fn search_spec(mut self, spec: SearchSpec) -> Self {
        self.search = spec;
        self
    }

    /// Sets the execution fault plan.
    pub fn exec_spec(mut self, spec: ExecSpec) -> Self {
        self.exec = spec;
        self
    }

    /// Sets the enumeration knobs.
    pub fn enumerate_spec(mut self, spec: EnumerateSpec) -> Self {
        self.enumerate = spec;
        self
    }

    /// Sets the randomized trial batch.
    pub fn randomized_spec(mut self, spec: RandomizedSpec) -> Self {
        self.randomized = spec;
        self
    }
}

/// Which deterministic protocol a network runs under — also the delay-
/// digraph memoization key, since each kind names one protocol per
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The network's hand-built reference protocol.
    Reference,
    /// The universal half-duplex edge-coloring periodic protocol.
    EdgeColoring,
    /// The full-duplex coloring periodic protocol.
    FullDuplexColoring,
}

impl ProtocolKind {
    /// Stable kebab-case label for reports and wire replies.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Reference => "reference",
            ProtocolKind::EdgeColoring => "edge-coloring",
            ProtocolKind::FullDuplexColoring => "full-duplex-coloring",
        }
    }
}

/// Picks the executable protocol for `net` in a scenario running under
/// `mode`. Directed and half-duplex scenarios take the network's
/// reference protocol (which already falls back to the universal
/// edge-coloring protocol on undirected networks); full-duplex scenarios
/// take the reference protocol only when it actually *is* full-duplex,
/// and otherwise the full-duplex coloring protocol — a half-duplex
/// protocol must never stand in for a full-duplex analysis. `None` for
/// directed shift networks, which have no deterministic protocol (the
/// executor falls back to weighted-diameter comparisons there).
pub fn protocol_for(
    net: &Network,
    g: &sg_graphs::digraph::Digraph,
    mode: Mode,
) -> Option<(ProtocolKind, SystolicProtocol)> {
    if mode == Mode::FullDuplex {
        if let Some(sp) = net.reference_protocol() {
            if sp.mode() == Mode::FullDuplex {
                return Some((ProtocolKind::Reference, sp));
            }
        }
        if net.is_directed() {
            return None;
        }
        return Some((
            ProtocolKind::FullDuplexColoring,
            full_duplex_coloring_periodic(g),
        ));
    }
    net.reference_protocol()
        .map(|sp| (ProtocolKind::Reference, sp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let s = Scenario::new("t", "test", Task::Bound, Mode::HalfDuplex)
            .networks([Network::Path { n: 8 }])
            .degrees([2, 3])
            .periods([Period::Systolic(4), Period::NonSystolic])
            .weights(WeightScheme::ParityOneThree);
        assert_eq!(s.networks.len(), 1);
        assert_eq!(s.degrees, vec![2, 3]);
        assert_eq!(s.periods.len(), 2);
        assert_eq!(s.weights, WeightScheme::ParityOneThree);
        assert_eq!(s.task.name(), "bound");
    }

    #[test]
    fn protocol_for_prefers_reference_then_coloring() {
        let path = Network::Path { n: 8 };
        let g = path.build();
        let (kind, _) = protocol_for(&path, &g, Mode::HalfDuplex).unwrap();
        assert_eq!(kind, ProtocolKind::Reference);

        // Shuffle-exchange has no hand-built protocol: the half-duplex
        // reference falls back to edge coloring inside
        // `reference_protocol`, so this is still Reference…
        let se = Network::ShuffleExchange { dd: 4 };
        let g = se.build();
        let got = protocol_for(&se, &g, Mode::HalfDuplex).unwrap();
        let sp = got.1;
        sp.validate(&g).expect("valid");

        // …while directed shift networks have none at all.
        let dbd = Network::DeBruijnDirected { d: 2, dd: 4 };
        let g = dbd.build();
        assert!(protocol_for(&dbd, &g, Mode::HalfDuplex).is_none());
        assert!(protocol_for(&dbd, &g, Mode::FullDuplex).is_none());
    }

    #[test]
    fn full_duplex_scenarios_never_get_half_duplex_protocols() {
        // Knödel's reference protocol is full-duplex: taken as-is.
        let knodel = Network::Knodel { delta: 4, n: 16 };
        let g = knodel.build();
        let (kind, sp) = protocol_for(&knodel, &g, Mode::FullDuplex).unwrap();
        assert_eq!(kind, ProtocolKind::Reference);
        assert_eq!(sp.mode(), Mode::FullDuplex);

        // Shuffle-exchange's reference is the *half-duplex* coloring:
        // a full-duplex scenario must get the full-duplex coloring
        // protocol instead, never the half-duplex one.
        let se = Network::ShuffleExchange { dd: 4 };
        let g = se.build();
        let (kind, sp) = protocol_for(&se, &g, Mode::FullDuplex).unwrap();
        assert_eq!(kind, ProtocolKind::FullDuplexColoring);
        assert_eq!(sp.mode(), Mode::FullDuplex);
        sp.validate(&g).expect("valid");
    }
}
