//! # sg-scenario
//!
//! The scenario subsystem of the systolic-gossip reproduction: named,
//! declarative experiment descriptors plus a memoizing parallel batch
//! executor. This is the layer that replaced the ten near-duplicate
//! figure binaries — `sg-bench` is now a thin CLI over
//! [`registry::registry`] and [`runner::run_batch`].
//!
//! * [`descriptor`] — the [`Scenario`] data type: network list,
//!   communication mode, period/degree sweep and [`Task`]
//!   (`Bound` / `Simulate` / `Compare` / `Matrices` / `Search` /
//!   `Enumerate`);
//! * [`mod@registry`] — every paper figure plus the new topology
//!   families as named scenarios;
//! * [`runner`] — the batch executor: scenarios expand into independent
//!   units that fan out across a thread pool, share built digraphs and
//!   periodic delay digraphs through [`cache::BuildCache`], and stream
//!   results as [`systolic_gossip::Row`]s (JSON/CSV via
//!   `sg_core::report`);
//! * [`tables`] — the generic family-table builder behind Figs. 4–8.

pub mod cache;
pub mod descriptor;
pub mod registry;
pub mod runner;
pub mod tables;

pub use cache::{BuildCache, CacheStats};
pub use descriptor::{
    protocol_for, EnumerateSpec, ExecSpec, PaperCheck, ProtocolKind, RandomizedSpec, Scenario,
    SearchSpec, Task, WeightScheme,
};
pub use registry::{find, registry};
pub use runner::{run_batch, BatchOptions, BatchReport, CheckOutcome, ScenarioOutcome};
