//! Consistency of the literature registry: every quoted coefficient is
//! sane, the entries agree with the figure tables the engine
//! regenerates, and no lower bound crosses a matching upper bound.

use sg_bounds::registry::{known_results, upper_bounds_for, BoundKind, LiteratureEntry};
use sg_bounds::{c_broadcast, e_general_nonsystolic, e_separator, fig4, fig5, fig6, fig8};
use sg_bounds::{BoundMode, Period};
use sg_graphs::separator::{params_de_bruijn, params_wbf_undirected};

#[test]
fn every_coefficient_is_positive_and_finite() {
    let all = known_results();
    assert!(all.len() >= 10, "registry unexpectedly small");
    for e in &all {
        assert!(
            e.coefficient.is_finite() && e.coefficient > 0.0,
            "{} / {} / {}: coefficient {}",
            e.network,
            e.mode,
            e.problem,
            e.coefficient
        );
        assert!(!e.network.is_empty() && !e.source.is_empty());
    }
}

#[test]
fn general_lower_bound_matches_fig4_limit() {
    // The [4,17,15,26] constant the introduction quotes is exactly the
    // non-systolic limit of the Fig. 4 row.
    let quoted = known_results()
        .into_iter()
        .find(|e| e.network == "any graph" && e.kind == BoundKind::LowerBound)
        .expect("generic gossip lower bound");
    assert!((quoted.coefficient - e_general_nonsystolic()).abs() < 1.2e-4);
    // …and the last cell of the regenerated Fig. 4 row agrees.
    let fig4 = fig4();
    let last = fig4.rows[0].cells.last().expect("s = ∞ column");
    assert!((quoted.coefficient - last.value).abs() < 1.2e-4);
}

#[test]
fn broadcast_constants_match_the_fig8_general_row() {
    // The [22,2] degree-parameter broadcasting constants are the same
    // numbers as Fig. 8's general full-duplex row (c(s − 1) = e_fd(s)).
    let quoted: Vec<LiteratureEntry> = known_results()
        .into_iter()
        .filter(|e| e.problem == "broadcast" && e.network.starts_with("degree parameter"))
        .collect();
    assert_eq!(quoted.len(), 3);
    for e in &quoted {
        let d: usize = e
            .network
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .expect("degree parameter");
        assert!(
            (e.coefficient - c_broadcast(d)).abs() < 1.2e-4,
            "c({d}) mismatch: {} vs {}",
            e.coefficient,
            c_broadcast(d)
        );
    }
    // Cross-check against the regenerated Fig. 8 general row (columns
    // s = 3, 4, 5 are c(2), c(3), c(4)).
    let fig8 = fig8();
    let general = &fig8.rows[0];
    for (col, d) in [(0usize, 2usize), (1, 3), (2, 4)] {
        assert!(
            (general.cells[col].value - c_broadcast(d)).abs() < 1.2e-4,
            "Fig. 8 column {col} vs c({d})"
        );
    }
}

#[test]
fn lower_bounds_never_exceed_matching_upper_bounds() {
    let all = known_results();
    for lb in all.iter().filter(|e| e.kind == BoundKind::LowerBound) {
        for ub in all.iter().filter(|e| {
            e.kind == BoundKind::UpperBound
                && e.network == lb.network
                && e.mode == lb.mode
                && e.problem == lb.problem
        }) {
            assert!(
                lb.coefficient <= ub.coefficient + 1e-9,
                "{} / {} / {}: LB {} ({}) > UB {} ({})",
                lb.network,
                lb.mode,
                lb.problem,
                lb.coefficient,
                lb.source,
                ub.coefficient,
                ub.source
            );
        }
    }
    // The engine's own lower bounds must respect the registry's upper
    // bounds too (systolic gossip upper bounds cover every period the
    // figures sweep).
    for (family, params) in [
        ("WBF(2,D)", params_wbf_undirected(2)),
        ("DB(2,D)", params_de_bruijn(2)),
    ] {
        let ubs = upper_bounds_for(family);
        assert!(!ubs.is_empty(), "{family}: no upper bounds registered");
        let nonsys = e_separator(params, BoundMode::HalfDuplex, Period::NonSystolic).e;
        for ub in &ubs {
            assert!(
                nonsys <= ub.coefficient + 1e-9,
                "{family}: our s = ∞ bound {} crosses {} from {}",
                nonsys,
                ub.coefficient,
                ub.source
            );
        }
    }
}

#[test]
fn paper_improves_on_the_quoted_broadcast_bounds() {
    // The paper's headline: its non-systolic gossip bounds strictly
    // improve on the best structure-aware *broadcast* bounds of [23]
    // for the same families — the registry must tell that story.
    let all = known_results();
    for (family, params) in [
        ("WBF(2,D)", params_wbf_undirected(2)),
        ("DB(2,D)", params_de_bruijn(2)),
    ] {
        let broadcast_lb = all
            .iter()
            .find(|e| e.network == family && e.problem == "broadcast")
            .unwrap_or_else(|| panic!("{family}: broadcast LB missing"));
        let ours = e_separator(params, BoundMode::HalfDuplex, Period::NonSystolic).e;
        assert!(
            ours > broadcast_lb.coefficient + 1e-3,
            "{family}: {ours} does not improve on [23]'s {}",
            broadcast_lb.coefficient
        );
    }
}

#[test]
fn figure_tables_stay_internally_consistent_with_the_registry_story() {
    // Fig. 5's systolic cells never cross the [24] systolic upper
    // bounds at the periods those constructions use (s ≥ 4), and every
    // cell of Figs. 4–8 is positive and finite.
    for table in [fig4(), fig5(), fig6(), fig8()] {
        for row in &table.rows {
            for cell in &row.cells {
                assert!(
                    cell.value.is_finite() && cell.value > 0.0,
                    "{}: {} has a bad cell {}",
                    table.title,
                    row.label,
                    cell.value
                );
            }
        }
    }
    let fig5 = fig5();
    for row in &fig5.rows {
        let ubs = upper_bounds_for(row.label.as_str());
        let systolic_ub: Vec<_> = ubs
            .iter()
            .filter(|e| e.problem == "systolic gossip")
            .collect();
        // Columns are s = 3..8; the [24] constructions need s >= 4.
        for ub in systolic_ub {
            for cell in &row.cells[1..] {
                assert!(
                    cell.value <= ub.coefficient + 1e-9,
                    "{}: Fig. 5 cell {} crosses {} from {}",
                    row.label,
                    cell.value,
                    ub.coefficient,
                    ub.source
                );
            }
        }
    }
}
