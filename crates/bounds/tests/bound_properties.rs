//! Property-based tests of the closed-form bound engine.

use proptest::prelude::*;
use sg_bounds::pfun::{f, BoundMode, Period};
use sg_bounds::{e_coefficient, e_separator, lambda_star};
use sg_graphs::separator::SeparatorParams;

fn modes() -> impl Strategy<Value = BoundMode> {
    prop_oneof![Just(BoundMode::HalfDuplex), Just(BoundMode::FullDuplex)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fixpoint actually solves the characteristic equation.
    #[test]
    fn lambda_star_is_a_unit_root(mode in modes(), s in 3usize..20) {
        let p = Period::Systolic(s);
        let l = lambda_star(mode, p);
        prop_assert!((f(mode, p, l) - 1.0).abs() < 1e-8, "f = {}", f(mode, p, l));
        prop_assert!(l > 0.0 && l < 1.0);
    }

    /// e(s) decreases in s for both modes and dominates its limit.
    #[test]
    fn e_monotone_in_s(mode in modes(), s in 3usize..19) {
        let e1 = e_coefficient(mode, Period::Systolic(s));
        let e2 = e_coefficient(mode, Period::Systolic(s + 1));
        let lim = e_coefficient(mode, Period::NonSystolic);
        prop_assert!(e1 >= e2 - 1e-12);
        prop_assert!(e2 >= lim - 1e-9);
    }

    /// For any admissible separator (α·ℓ ≤ 1, both positive), the
    /// Theorem 5.1 value is at least ℓ·α/log₂(1/λ*) (the boundary value)
    /// and is finite.
    #[test]
    fn separator_bound_at_least_boundary(
        mode in modes(),
        s in 3usize..12,
        alpha in 0.2f64..1.5,
        ell_scale in 0.1f64..1.0,
    ) {
        // Choose ℓ so that α·ℓ ≤ 1.
        let ell = ell_scale / alpha;
        let params = SeparatorParams { alpha, ell };
        let p = Period::Systolic(s);
        let b = e_separator(params, mode, p);
        let ls = lambda_star(mode, p);
        let boundary = ell * alpha / (1.0 / ls).log2();
        prop_assert!(b.e >= boundary - 1e-9, "{} < {}", b.e, boundary);
        prop_assert!(b.e.is_finite());
        prop_assert!(b.lambda > 0.0 && b.lambda <= ls + 1e-9);
    }

    /// Scaling ℓ scales the bound exactly linearly (the optimizer's
    /// objective is ℓ times an ℓ-independent function once α is fixed...
    /// which it is not in general — but doubling BOTH ℓ and halving α at
    /// fixed α·ℓ keeps the boundary value fixed while favoring distance;
    /// here we check plain ℓ-linearity at fixed α).
    #[test]
    fn separator_bound_linear_in_ell(s in 3usize..10, alpha in 0.3f64..0.9) {
        let p = Period::Systolic(s);
        let ell = 0.8 / alpha;
        let b1 = e_separator(SeparatorParams { alpha, ell }, BoundMode::HalfDuplex, p);
        let b2 = e_separator(
            SeparatorParams { alpha, ell: ell / 2.0 },
            BoundMode::HalfDuplex,
            p,
        );
        prop_assert!((b1.e - 2.0 * b2.e).abs() < 1e-6 * (1.0 + b1.e));
    }

    /// Full-duplex bounds never exceed half-duplex bounds at equal
    /// parameters (full duplex is the more powerful model).
    #[test]
    fn full_duplex_weaker_everywhere(s in 3usize..14) {
        let p = Period::Systolic(s);
        prop_assert!(
            e_coefficient(BoundMode::FullDuplex, p)
                <= e_coefficient(BoundMode::HalfDuplex, p) + 1e-12
        );
    }
}
