//! The general (topology-independent) lower bounds: Corollary 4.4 and its
//! full-duplex analogue.
//!
//! For any network of `n` processors and any `s`-systolic protocol, the
//! gossip time is at least `e(s)·log₂(n) − O(log log n)` where
//! `e(s) = 1/log₂(1/λ*)` and `λ*` is the unique root in `(0, 1)` of the
//! mode's characteristic function at 1. Fig. 4 is this table for the
//! directed/half-duplex modes; the general column of Fig. 8 is the
//! full-duplex version.

use crate::pfun::{f, BoundMode, Period};
use sg_linalg::roots::bisect_increasing;

/// The unique `λ* ∈ (0, 1)` with `f(mode, period, λ*) = 1`.
pub fn lambda_star(mode: BoundMode, period: Period) -> f64 {
    // f is strictly increasing with f(0) = 0; f(1⁻) > 1 for every s ≥ 3
    // and both non-systolic limits. For s = 2 the half-duplex function is
    // λ·√(p₁)·√(p₁) = λ, whose unit root sits at the boundary λ = 1
    // (the bound degenerates, matching the special-cased s = 2 analysis).
    let hi = 1.0 - 1e-12;
    if f(mode, period, hi) <= 1.0 {
        return hi;
    }
    bisect_increasing(|l| f(mode, period, l) - 1.0, 1e-12, hi)
        .expect("f is increasing with a bracketed unit root")
}

/// The bound coefficient `e(s) = 1/log₂(1/λ*)`.
pub fn e_coefficient(mode: BoundMode, period: Period) -> f64 {
    let ls = lambda_star(mode, period);
    1.0 / (1.0 / ls).log2()
}

/// Corollary 4.4's coefficient for the directed/half-duplex modes
/// (the Fig. 4 row).
pub fn e_general(s: usize) -> f64 {
    e_coefficient(BoundMode::HalfDuplex, Period::Systolic(s))
}

/// The non-systolic half-duplex coefficient `1.4404…`
/// (`1/log₂(φ)`, with φ the golden ratio) — the \[4, 17, 15, 26\] constant
/// that Corollary 4.4 recovers up to `O(log log n)`.
pub fn e_general_nonsystolic() -> f64 {
    e_coefficient(BoundMode::HalfDuplex, Period::NonSystolic)
}

/// The full-duplex general coefficient (the leftmost column of Fig. 8),
/// which coincides with the bounded-degree broadcasting constant
/// `c(s−1)` of \[22, 2\] — see `crate::broadcast`.
pub fn e_full_duplex(s: usize) -> f64 {
    e_coefficient(BoundMode::FullDuplex, Period::Systolic(s))
}

/// The non-systolic full-duplex coefficient: `λ* = 1/2`, `e = 1`.
pub fn e_full_duplex_nonsystolic() -> f64 {
    e_coefficient(BoundMode::FullDuplex, Period::NonSystolic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_linalg::approx_eq;

    /// The seven numbers printed in the paper (Section 1 and Fig. 4).
    #[test]
    fn fig4_values_match_paper_to_four_decimals() {
        let expected = [
            (3usize, 2.8808),
            (4, 1.8133),
            (5, 1.6502),
            (6, 1.5363),
            (7, 1.5021),
            (8, 1.4721),
        ];
        for (s, want) in expected {
            let got = e_general(s);
            assert!(
                (got - want).abs() < 1.2e-4,
                "e({s}) = {got:.5}, paper says {want}"
            );
        }
        assert!((e_general_nonsystolic() - 1.4404).abs() < 1.2e-4);
    }

    #[test]
    fn e_decreases_with_s_to_limit() {
        let limit = e_general_nonsystolic();
        let mut prev = f64::INFINITY;
        for s in 3..40 {
            let e = e_general(s);
            assert!(e < prev, "e(s) must strictly decrease");
            assert!(e > limit - 1e-9, "e(s) must stay above the limit");
            prev = e;
        }
        assert!(e_general(200) - limit < 1e-4);
    }

    #[test]
    fn lambda_star_in_unit_interval_and_decreasing() {
        let mut prev = 1.0;
        for s in 3..20 {
            let l = lambda_star(BoundMode::HalfDuplex, Period::Systolic(s));
            assert!(l > 0.0 && l < 1.0);
            assert!(l < prev);
            prev = l;
        }
        // All λ* stay above the golden-ratio limit 0.618.
        assert!(prev > 0.618);
    }

    #[test]
    fn s2_degenerates() {
        // For s = 2, f(λ) = λ: λ* → 1 and e(2) blows up, matching the
        // separate s = 2 analysis (t ≥ n − 1 is *linear*, not log).
        let e = e_general(2);
        assert!(e > 1e6, "s = 2 coefficient must be effectively infinite");
    }

    #[test]
    fn full_duplex_values() {
        // s → ∞ full-duplex: λ* = 1/2 exactly, e = 1.
        assert!(approx_eq(
            lambda_star(BoundMode::FullDuplex, Period::NonSystolic),
            0.5,
            1e-10
        ));
        assert!(approx_eq(e_full_duplex_nonsystolic(), 1.0, 1e-9));
        // s = 3 full-duplex: λ + λ² = 1 → the golden-ratio constant again.
        assert!(approx_eq(e_full_duplex(3), 1.4404, 1.2e-4));
        // s = 4: the tribonacci constant's 1.1374.
        assert!(approx_eq(e_full_duplex(4), 1.1374, 1.2e-4));
        // s = 5: the tetranacci 1.0562.
        assert!(approx_eq(e_full_duplex(5), 1.0562, 1.2e-4));
    }

    #[test]
    fn golden_ratio_lambda() {
        let l = lambda_star(BoundMode::HalfDuplex, Period::NonSystolic);
        assert!(approx_eq(l, 0.618_033_988_75, 1e-9));
    }
}
