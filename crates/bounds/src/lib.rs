//! Closed-form lower-bound engine: the numeric content of the paper.
//!
//! * [`pfun`] — the characteristic functions of Lemma 4.3 (half-duplex)
//!   and Lemma 6.1 (full-duplex) with their non-systolic limits;
//! * [`general`] — Corollary 4.4's `e(s)` coefficients (Fig. 4) and the
//!   full-duplex general bounds (Fig. 8, first row);
//! * [`separator`] — Theorem 5.1's topology-dependent optimizer
//!   (Figs. 5, 6, 8);
//! * [`broadcast`] — the bounded-degree broadcasting constants `c(d)` of
//!   \[22, 2\];
//! * [`diameter`] — diameter coefficients (Fig. 6 comparison column);
//! * [`registry`] — the literature bounds quoted by the paper;
//! * [`tables`] — structured reproductions of Figs. 4, 5, 6 and 8.

pub mod broadcast;
pub mod diameter;
pub mod general;
pub mod pfun;
pub mod registry;
pub mod separator;
pub mod tables;

pub use broadcast::{c_broadcast, dbonacci_root};
pub use general::{
    e_coefficient, e_full_duplex, e_full_duplex_nonsystolic, e_general, e_general_nonsystolic,
    lambda_star,
};
pub use pfun::{BoundMode, Period};
pub use separator::{e_separator, improvement_threshold, SeparatorBound};
pub use tables::{fig4, fig5, fig5_custom, fig6, fig8, FigRow, FigTable};
