//! The characteristic norm-bound functions of the paper.
//!
//! Everything in Figs. 4–8 is governed by a single scalar function per
//! mode: the uniform upper bound on `‖M(λ)‖` proved in Lemma 4.3
//! (half-duplex/directed) and Lemma 6.1 (full-duplex), together with
//! their `s → ∞` limits used for non-systolic protocols.
//!
//! All functions are continuous and strictly increasing in `λ` on
//! `(0, 1)`, which the solvers in [`crate::general`] rely on.

use sg_linalg::poly::gossip_p_eval;

/// Lemma 4.3's bound for period `s` (directed and half-duplex modes):
/// `f(λ) = λ·√(p_{⌈s/2⌉}(λ))·√(p_{⌊s/2⌋}(λ))`.
pub fn f_half_duplex(s: usize, lambda: f64) -> f64 {
    debug_assert!(s >= 2);
    lambda * gossip_p_eval(s.div_ceil(2), lambda).sqrt() * gossip_p_eval(s / 2, lambda).sqrt()
}

/// Lemma 6.1's bound for period `s` (full-duplex mode):
/// `f(λ) = λ + λ² + ⋯ + λ^{s−1}`.
pub fn f_full_duplex(s: usize, lambda: f64) -> f64 {
    debug_assert!(s >= 2);
    (1..s).map(|i| lambda.powi(i as i32)).sum()
}

/// The `s → ∞` limit of [`f_half_duplex`]:
/// `λ·p_∞(λ) = λ/(1 − λ²)` — the non-systolic half-duplex function, whose
/// unit root is the inverse golden ratio (Section 4).
pub fn f_half_duplex_nonsystolic(lambda: f64) -> f64 {
    debug_assert!(lambda < 1.0);
    lambda / (1.0 - lambda * lambda)
}

/// The `s → ∞` limit of [`f_full_duplex`]: `λ/(1 − λ)`, unit root `1/2`.
pub fn f_full_duplex_nonsystolic(lambda: f64) -> f64 {
    debug_assert!(lambda < 1.0);
    lambda / (1.0 - lambda)
}

/// A systolic period, or the non-systolic (`s → ∞`) limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Period {
    /// Finite period `s ≥ 2`.
    Systolic(usize),
    /// Unrestricted protocols (the `s → ∞` corollary).
    NonSystolic,
}

impl Period {
    /// Formats as the column label used in the paper's tables.
    pub fn label(self) -> String {
        match self {
            Period::Systolic(s) => format!("s={s}"),
            Period::NonSystolic => "s=∞".to_string(),
        }
    }
}

impl std::fmt::Display for Period {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The two analytical regimes of the paper's bounds. The directed mode
/// shares the half-duplex function (Sections 4 and 5 treat them together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundMode {
    /// Directed or half-duplex (Lemma 4.3).
    HalfDuplex,
    /// Full-duplex (Lemma 6.1).
    FullDuplex,
}

/// The characteristic function for a mode and period, as a closure-free
/// dispatch.
pub fn f(mode: BoundMode, period: Period, lambda: f64) -> f64 {
    match (mode, period) {
        (BoundMode::HalfDuplex, Period::Systolic(s)) => f_half_duplex(s, lambda),
        (BoundMode::HalfDuplex, Period::NonSystolic) => f_half_duplex_nonsystolic(lambda),
        (BoundMode::FullDuplex, Period::Systolic(s)) => f_full_duplex(s, lambda),
        (BoundMode::FullDuplex, Period::NonSystolic) => f_full_duplex_nonsystolic(lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_linalg::approx_eq;

    #[test]
    fn increasing_in_lambda() {
        for s in [2usize, 3, 4, 7, 12] {
            for w in 1..19 {
                let a = w as f64 / 20.0;
                let b = (w + 1) as f64 / 20.0;
                assert!(f_half_duplex(s, a) < f_half_duplex(s, b));
                assert!(f_full_duplex(s, a) < f_full_duplex(s, b));
            }
        }
    }

    #[test]
    fn finite_periods_converge_to_limits() {
        let l = 0.55;
        assert!(approx_eq(
            f_half_duplex(400, l),
            f_half_duplex_nonsystolic(l),
            1e-9
        ));
        assert!(approx_eq(
            f_full_duplex(400, l),
            f_full_duplex_nonsystolic(l),
            1e-9
        ));
    }

    #[test]
    fn monotone_in_s() {
        // Larger periods allow faster dissemination: f grows with s.
        let l = 0.6;
        for s in 2..12 {
            assert!(f_half_duplex(s, l) <= f_half_duplex(s + 1, l) + 1e-15);
            assert!(f_full_duplex(s, l) < f_full_duplex(s + 1, l));
        }
    }

    #[test]
    fn known_unit_roots() {
        // Half-duplex non-systolic: unit root at the inverse golden ratio.
        assert!(approx_eq(
            f_half_duplex_nonsystolic(0.618_033_988_75),
            1.0,
            1e-9
        ));
        // Full-duplex non-systolic: unit root at 1/2.
        assert!(approx_eq(f_full_duplex_nonsystolic(0.5), 1.0, 1e-12));
        // s = 3 half-duplex: λ√(1+λ²) = 1 at λ² = 1/φ.
        let l3 = (1.0_f64 / 1.618_033_988_75).sqrt();
        assert!(approx_eq(f_half_duplex(3, l3), 1.0, 1e-6));
    }

    #[test]
    fn dispatch_consistency() {
        let l = 0.44;
        assert_eq!(
            f(BoundMode::HalfDuplex, Period::Systolic(5), l),
            f_half_duplex(5, l)
        );
        assert_eq!(
            f(BoundMode::FullDuplex, Period::NonSystolic, l),
            f_full_duplex_nonsystolic(l)
        );
    }

    #[test]
    fn labels() {
        assert_eq!(Period::Systolic(4).label(), "s=4");
        assert_eq!(Period::NonSystolic.label(), "s=∞");
    }
}
