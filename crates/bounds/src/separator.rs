//! Theorem 5.1: topology-dependent bounds via ⟨α, ℓ⟩-separators.
//!
//! For a family with an ⟨α, ℓ⟩-separator and an `s`-systolic protocol,
//!
//! ```text
//! e(s) = max { ℓ·(α − log₂ f(λ)) / log₂(1/λ) : 0 < λ < 1, f(λ) ≤ 1 }
//! ```
//!
//! with `f` the mode's characteristic function (Lemma 4.3 or 6.1). At the
//! feasibility boundary `f(λ*) = 1` the objective degenerates to
//! `α·ℓ / log₂(1/λ*)`, which — since every Lemma 3.1 family has
//! `α·ℓ = 1` — equals the general coefficient of Corollary 4.4; interior
//! maximizers are where the topology actually buys something. The paper's
//! Fig. 5 (systolic half-duplex), Fig. 6 (non-systolic) and the
//! topology-dependent part of Fig. 8 (full-duplex) are all instances.

use crate::general::{e_coefficient, lambda_star};
use crate::pfun::{f, BoundMode, Period};
use sg_graphs::separator::SeparatorParams;
use sg_linalg::optimize::maximize_scan_refine;

/// A Theorem 5.1 bound: the coefficient and its maximizing `λ`.
#[derive(Debug, Clone, Copy)]
pub struct SeparatorBound {
    /// The bound coefficient: gossip time `≥ e·log₂(n)·(1 − o(1))`.
    pub e: f64,
    /// The maximizing `λ`.
    pub lambda: f64,
    /// `true` when the maximum sits at the feasibility boundary
    /// `f(λ) = 1`, i.e. the separator does not improve on the general
    /// bound (the paper's `∗` entries).
    pub at_boundary: bool,
}

/// Evaluates Theorem 5.1 for the given separator parameters, mode and
/// period.
pub fn e_separator(params: SeparatorParams, mode: BoundMode, period: Period) -> SeparatorBound {
    let ls = lambda_star(mode, period);
    let objective = |l: f64| {
        if l <= 0.0 || l >= 1.0 {
            return f64::NEG_INFINITY;
        }
        let fv = f(mode, period, l);
        if fv > 1.0 || fv <= 0.0 {
            return f64::NEG_INFINITY;
        }
        params.ell * (params.alpha - fv.log2()) / (1.0 / l).log2()
    };
    // Scan the feasible region (0, λ*]; λ* itself is the boundary point.
    let res = maximize_scan_refine(objective, 1e-6, ls, 4096);
    let boundary_value = objective(ls);
    if boundary_value >= res.value {
        SeparatorBound {
            e: boundary_value,
            lambda: ls,
            at_boundary: true,
        }
    } else {
        // Mark as boundary if the maximizer is numerically at λ*.
        let at_boundary = (res.x - ls).abs() < 1e-6;
        SeparatorBound {
            e: res.value,
            lambda: res.x,
            at_boundary,
        }
    }
}

/// Convenience wrapper asserting the structural facts the tables rely on:
/// the separator bound never falls below the general bound (for
/// `α·ℓ = 1` families the boundary value *is* the general bound).
pub fn e_separator_checked(
    params: SeparatorParams,
    mode: BoundMode,
    period: Period,
) -> SeparatorBound {
    let b = e_separator(params, mode, period);
    debug_assert!(
        params.product() < 1.0 - 1e-9 || b.e >= e_coefficient(mode, period) - 1e-9,
        "separator bound below general bound for alpha*ell = 1"
    );
    b
}

/// The smallest period `s` at which a family's separator bound strictly
/// improves on the general bound of Corollary 4.4 (i.e. the first
/// non-`∗` column of its Fig. 5 row), searched over `s ∈ 3..=max_s`.
///
/// For `WBF(2, D)` and `BF(2, D)` this is `s = 4`; for `DB(2, D)` it is
/// `s = 5` (the paper's Fig. 5 shows the `s = 4` entry starred).
pub fn improvement_threshold(
    params: SeparatorParams,
    mode: BoundMode,
    max_s: usize,
) -> Option<usize> {
    (3..=max_s).find(|&s| {
        let b = e_separator(params, mode, Period::Systolic(s));
        b.e > e_coefficient(mode, Period::Systolic(s)) + 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::{e_general, e_general_nonsystolic};
    use sg_graphs::separator::{
        params_butterfly, params_de_bruijn, params_kautz, params_wbf_directed,
        params_wbf_undirected,
    };

    /// The two systolic spot values printed in the paper's Section 1:
    /// for s = 4, WBF(2, D) ≥ 2.0218·log n and DB(2, D) ≥ 1.8133·log n.
    #[test]
    fn paper_spot_values_systolic_s4() {
        let wbf = e_separator(
            params_wbf_undirected(2),
            BoundMode::HalfDuplex,
            Period::Systolic(4),
        );
        assert!(
            (wbf.e - 2.0218).abs() < 5e-4,
            "WBF(2,D) s=4: got {:.4}, paper says 2.0218",
            wbf.e
        );
        assert!(!wbf.at_boundary, "the WBF improvement is interior");

        let db = e_separator(
            params_de_bruijn(2),
            BoundMode::HalfDuplex,
            Period::Systolic(4),
        );
        assert!(
            (db.e - 1.8133).abs() < 5e-4,
            "DB(2,D) s=4: got {:.4}, paper says 1.8133",
            db.e
        );
        // For DB at s = 4 the bound coincides with the general one (a ∗
        // entry in Fig. 5).
        assert!((db.e - e_general(4)).abs() < 1e-6);
    }

    /// The two non-systolic spot values of Section 1: WBF(2, D) ≥ 1.9750,
    /// DB(2, D) ≥ 1.5876.
    #[test]
    fn paper_spot_values_nonsystolic() {
        let wbf = e_separator(
            params_wbf_undirected(2),
            BoundMode::HalfDuplex,
            Period::NonSystolic,
        );
        assert!(
            (wbf.e - 1.9750).abs() < 5e-4,
            "WBF(2,D) s=∞: got {:.4}, paper says 1.9750",
            wbf.e
        );
        let db = e_separator(
            params_de_bruijn(2),
            BoundMode::HalfDuplex,
            Period::NonSystolic,
        );
        assert!(
            (db.e - 1.5876).abs() < 5e-4,
            "DB(2,D) s=∞: got {:.4}, paper says 1.5876",
            db.e
        );
        // Both beat the general 1.4404 constant.
        let gen = e_general_nonsystolic();
        assert!(db.e > gen && wbf.e > gen);
        assert!(!db.at_boundary && !wbf.at_boundary);
    }

    #[test]
    fn separator_bounds_never_below_general() {
        for params in [
            params_butterfly(2),
            params_butterfly(3),
            params_wbf_directed(2),
            params_wbf_undirected(2),
            params_wbf_undirected(3),
            params_de_bruijn(2),
            params_de_bruijn(3),
            params_kautz(2),
        ] {
            for s in 3..=8 {
                let b = e_separator_checked(params, BoundMode::HalfDuplex, Period::Systolic(s));
                assert!(b.e >= e_general(s) - 1e-9, "{params:?} s={s}");
            }
        }
    }

    #[test]
    fn butterfly_bounds_exceed_de_bruijn() {
        // BF's separator has ℓ = 2/log d (distance 2D) vs DB's 1/log d:
        // more distance, same density product, so a stronger bound.
        for period in [Period::Systolic(4), Period::NonSystolic] {
            let bf = e_separator(params_butterfly(2), BoundMode::HalfDuplex, period);
            let db = e_separator(params_de_bruijn(2), BoundMode::HalfDuplex, period);
            assert!(bf.e > db.e, "{period}: {} vs {}", bf.e, db.e);
        }
    }

    #[test]
    fn kautz_equals_de_bruijn_params() {
        let k = e_separator(params_kautz(3), BoundMode::HalfDuplex, Period::Systolic(5));
        let d = e_separator(
            params_de_bruijn(3),
            BoundMode::HalfDuplex,
            Period::Systolic(5),
        );
        assert!((k.e - d.e).abs() < 1e-12);
    }

    #[test]
    fn full_duplex_separator_improves_on_broadcast_bound() {
        // Fig. 8: for BF(2, D) the separator lifts the full-duplex bound
        // above the generic c(s−1)·log n.
        use crate::general::e_full_duplex;
        for s in 3..=8 {
            let b = e_separator(
                params_butterfly(2),
                BoundMode::FullDuplex,
                Period::Systolic(s),
            );
            assert!(
                b.e >= e_full_duplex(s) - 1e-9,
                "s={s}: {} < {}",
                b.e,
                e_full_duplex(s)
            );
        }
        // And non-systolic: must be at least the diameter-ish coefficient
        // and strictly above the trivial 1.0.
        let b = e_separator(
            params_butterfly(2),
            BoundMode::FullDuplex,
            Period::NonSystolic,
        );
        assert!(b.e > 1.0);
    }

    #[test]
    fn improvement_thresholds_match_the_tables() {
        // WBF(2,D) and BF(2,D) first improve at s = 4; DB(2,D) at s = 5;
        // DB(3,D) never within s <= 8 (its Fig. 5 row is fully starred).
        assert_eq!(
            improvement_threshold(params_wbf_undirected(2), BoundMode::HalfDuplex, 8),
            Some(4)
        );
        assert_eq!(
            improvement_threshold(params_butterfly(2), BoundMode::HalfDuplex, 8),
            Some(4)
        );
        assert_eq!(
            improvement_threshold(params_de_bruijn(2), BoundMode::HalfDuplex, 8),
            Some(5)
        );
        assert_eq!(
            improvement_threshold(params_de_bruijn(3), BoundMode::HalfDuplex, 8),
            None
        );
    }

    #[test]
    fn higher_degree_weakens_the_bound() {
        // log d grows → ℓ shrinks → weaker per-log(n) coefficient.
        for period in [Period::Systolic(6), Period::NonSystolic] {
            let d2 = e_separator(params_de_bruijn(2), BoundMode::HalfDuplex, period);
            let d3 = e_separator(params_de_bruijn(3), BoundMode::HalfDuplex, period);
            assert!(d2.e >= d3.e - 1e-9);
        }
    }
}
