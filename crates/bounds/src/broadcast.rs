//! Bounded-degree broadcasting coefficients `c(d)` of Liestman–Peters \[22\]
//! and Bermond–Hell–Liestman–Peters \[2\].
//!
//! For networks whose degree parameter is `d` (max out-degree for
//! digraphs, max degree − 1 for undirected graphs), broadcasting takes at
//! least `c(d)·log₂ n` rounds, where `c(d) = 1/log₂(x_d)` and `x_d` is the
//! unique root in `(1, 2)` of `x^d = x^{d−1} + x^{d−2} + ⋯ + 1` (the
//! generalized Fibonacci/d-bonacci characteristic). The paper cites
//! `c(2) = 1.4404`, `c(3) = 1.1374`, `c(4) = 1.0562` — and Section 6
//! observes that the *general* full-duplex `s`-systolic gossip bound
//! coincides with `c(s−1)`, because a full-duplex systolic gossip protocol
//! can be transformed into a bounded-degree broadcast protocol (\[8\]).

use sg_linalg::roots::brent_root;

/// The `d`-bonacci constant `x_d ∈ (1, 2)`: root of
/// `x^d − x^{d−1} − ⋯ − 1`.
pub fn dbonacci_root(d: usize) -> f64 {
    assert!(d >= 1);
    if d == 1 {
        // x = 1 degenerate: broadcasting on degree-1 networks is linear.
        return 1.0;
    }
    let g = |x: f64| {
        // x^d − Σ_{i<d} x^i; rewrite via geometric sum for stability:
        // for x ≠ 1: x^d − (x^d − 1)/(x − 1).
        x.powi(d as i32) - (x.powi(d as i32) - 1.0) / (x - 1.0)
    };
    brent_root(g, 1.0 + 1e-9, 2.0, 1e-14, 200).expect("d-bonacci root bracketed in (1,2)")
}

/// The broadcasting coefficient `c(d) = 1/log₂(x_d)`; broadcast (hence
/// gossip) time on degree-parameter-`d` networks is at least
/// `c(d)·log₂ n`.
pub fn c_broadcast(d: usize) -> f64 {
    if d == 1 {
        return f64::INFINITY;
    }
    1.0 / dbonacci_root(d).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::e_full_duplex;
    use sg_linalg::approx_eq;

    #[test]
    fn paper_cited_values() {
        assert!(approx_eq(c_broadcast(2), 1.4404, 1.2e-4));
        assert!(approx_eq(c_broadcast(3), 1.1374, 1.2e-4));
        assert!(approx_eq(c_broadcast(4), 1.0562, 1.2e-4));
    }

    #[test]
    fn roots_are_the_classic_constants() {
        // Golden ratio, tribonacci, tetranacci.
        assert!(approx_eq(dbonacci_root(2), 1.618_033_988_75, 1e-10));
        assert!(approx_eq(dbonacci_root(3), 1.839_286_755_21, 1e-10));
        assert!(approx_eq(dbonacci_root(4), 1.927_561_975_48, 1e-9));
    }

    #[test]
    fn c_decreases_to_one() {
        let mut prev = f64::INFINITY;
        for d in 2..30 {
            let c = c_broadcast(d);
            assert!(c < prev);
            assert!(c > 1.0);
            prev = c;
        }
        assert!(c_broadcast(40) - 1.0 < 1e-6);
    }

    #[test]
    fn full_duplex_systolic_equals_broadcast_constant() {
        // Section 6: the general full-duplex s-systolic bound coincides
        // with the degree-(s−1) broadcasting bound.
        for s in 3..12 {
            assert!(
                approx_eq(e_full_duplex(s), c_broadcast(s - 1), 1e-9),
                "s = {s}"
            );
        }
    }

    #[test]
    fn degenerate_degree_one() {
        assert_eq!(c_broadcast(1), f64::INFINITY);
        assert_eq!(dbonacci_root(1), 1.0);
    }
}
