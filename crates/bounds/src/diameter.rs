//! Diameter coefficients: the trivial lower bound `t ≥ diam(G)` expressed
//! in `log₂(n)` units, the comparison column of Fig. 6.
//!
//! For the hypercube-like families, `log₂ n = D·log₂ d + O(log D)`, so a
//! diameter of `c·D` contributes a coefficient `c / log₂ d`.

/// Diameter coefficient of `BF(d, D)`: `diam = 2D`.
pub fn diam_coeff_butterfly(d: usize) -> f64 {
    2.0 / (d as f64).log2()
}

/// Diameter coefficient of directed `WBF→(d, D)`: `diam = 2D − 1`.
pub fn diam_coeff_wbf_directed(d: usize) -> f64 {
    2.0 / (d as f64).log2()
}

/// Diameter coefficient of undirected `WBF(d, D)`: `diam = ⌊3D/2⌋`.
pub fn diam_coeff_wbf_undirected(d: usize) -> f64 {
    1.5 / (d as f64).log2()
}

/// Diameter coefficient of `DB(d, D)` (directed or undirected):
/// `diam = D`.
pub fn diam_coeff_de_bruijn(d: usize) -> f64 {
    1.0 / (d as f64).log2()
}

/// Diameter coefficient of `K(d, D)`: `diam = D`.
pub fn diam_coeff_kautz(d: usize) -> f64 {
    1.0 / (d as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;
    use sg_graphs::traversal::diameter;

    #[test]
    fn coefficients_for_degree_two() {
        assert_eq!(diam_coeff_butterfly(2), 2.0);
        assert_eq!(diam_coeff_wbf_undirected(2), 1.5);
        assert_eq!(diam_coeff_de_bruijn(2), 1.0);
    }

    #[test]
    fn measured_diameters_match_the_formulas() {
        // BF(2, D): 2D.
        for dd in 2..=4usize {
            let g = generators::butterfly(2, dd);
            assert_eq!(diameter(&g), Some(2 * dd as u32));
        }
        // WBF(2, 4): ⌊3·4/2⌋ = 6.
        let g = generators::wrapped_butterfly(2, 4);
        assert_eq!(diameter(&g), Some(6));
        // DB→(2, D): D; K→(2, D): D.
        assert_eq!(diameter(&generators::de_bruijn_directed(2, 4)), Some(4));
        assert_eq!(diameter(&generators::kautz_directed(2, 4)), Some(4));
    }

    #[test]
    fn higher_degree_shrinks_coefficients() {
        for d in 2..6usize {
            assert!(diam_coeff_de_bruijn(d) >= diam_coeff_de_bruijn(d + 1));
            assert!(diam_coeff_butterfly(d) >= diam_coeff_butterfly(d + 1));
        }
    }
}
