//! Registry of the literature results the paper cites and compares
//! against — the numbers in the introduction and the `∗`/footnote entries
//! of the figures, kept in one queryable place for the experiment
//! harness and EXPERIMENTS.md.

/// Whether an entry is an upper or a lower bound on a dissemination time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Gossip/broadcast can be done this fast.
    UpperBound,
    /// Gossip/broadcast needs at least this long.
    LowerBound,
}

/// One literature data point: a coefficient of `log₂(n)`.
#[derive(Debug, Clone)]
pub struct LiteratureEntry {
    /// Network family, paper notation (e.g. `"WBF(2,D)"`).
    pub network: &'static str,
    /// Communication mode.
    pub mode: &'static str,
    /// Problem: `"gossip"`, `"systolic gossip"` or `"broadcast"`.
    pub problem: &'static str,
    /// Upper or lower bound.
    pub kind: BoundKind,
    /// Coefficient of `log₂(n)` (lower-order terms dropped).
    pub coefficient: f64,
    /// Citation key as used in the paper's bibliography.
    pub source: &'static str,
}

/// Every literature comparison point quoted in the paper's text.
pub fn known_results() -> Vec<LiteratureEntry> {
    use BoundKind::*;
    vec![
        // --- general graphs ---
        LiteratureEntry {
            network: "any graph",
            mode: "half-duplex",
            problem: "gossip",
            kind: LowerBound,
            coefficient: 1.4404,
            source: "[4,17,15,26]",
        },
        // --- broadcasting lower bounds (bounded degree) ---
        LiteratureEntry {
            network: "degree parameter 2",
            mode: "any",
            problem: "broadcast",
            kind: LowerBound,
            coefficient: 1.4404,
            source: "[22,2]",
        },
        LiteratureEntry {
            network: "degree parameter 3",
            mode: "any",
            problem: "broadcast",
            kind: LowerBound,
            coefficient: 1.1374,
            source: "[22,2]",
        },
        LiteratureEntry {
            network: "degree parameter 4",
            mode: "any",
            problem: "broadcast",
            kind: LowerBound,
            coefficient: 1.0562,
            source: "[22,2]",
        },
        // --- structure-aware broadcasting lower bounds ---
        LiteratureEntry {
            network: "WBF(2,D)",
            mode: "half-duplex",
            problem: "broadcast",
            kind: LowerBound,
            coefficient: 1.7621,
            source: "[23]",
        },
        LiteratureEntry {
            network: "WBF(3,D)",
            mode: "half-duplex",
            problem: "broadcast",
            kind: LowerBound,
            coefficient: 1.2619,
            source: "[23]",
        },
        LiteratureEntry {
            network: "DB(2,D)",
            mode: "half-duplex",
            problem: "broadcast",
            kind: LowerBound,
            coefficient: 1.4404,
            source: "[23]",
        },
        LiteratureEntry {
            network: "DB(3,D)",
            mode: "half-duplex",
            problem: "broadcast",
            kind: LowerBound,
            coefficient: 1.1374,
            source: "[23]",
        },
        // --- gossip upper bounds ---
        LiteratureEntry {
            network: "WBF(2,D)",
            mode: "half-duplex",
            problem: "gossip",
            kind: UpperBound,
            coefficient: 2.5,
            source: "[9]",
        },
        LiteratureEntry {
            network: "DB(2,D)",
            mode: "half-duplex",
            problem: "gossip",
            kind: UpperBound,
            coefficient: 3.0,
            source: "[25]",
        },
        LiteratureEntry {
            network: "WBF(2,D)",
            mode: "half-duplex",
            problem: "systolic gossip",
            kind: UpperBound,
            coefficient: 2.5,
            source: "[24]",
        },
        LiteratureEntry {
            network: "DB(2,D)",
            mode: "half-duplex",
            problem: "systolic gossip",
            kind: UpperBound,
            coefficient: 2.0,
            source: "[24]",
        },
    ]
}

/// Upper bounds for a network (used by the validation harness to check
/// that our lower bounds stay below the known upper bounds).
pub fn upper_bounds_for(network: &str) -> Vec<LiteratureEntry> {
    known_results()
        .into_iter()
        .filter(|e| e.network == network && e.kind == BoundKind::UpperBound)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::{e_general, e_general_nonsystolic};
    use crate::pfun::{BoundMode, Period};
    use crate::separator::e_separator;
    use sg_graphs::separator::{params_de_bruijn, params_wbf_undirected};

    #[test]
    fn our_lower_bounds_stay_below_literature_upper_bounds() {
        // Consistency of the whole story: the new lower bounds must not
        // cross the known gossip upper bounds.
        let wbf_lb = e_separator(
            params_wbf_undirected(2),
            BoundMode::HalfDuplex,
            Period::NonSystolic,
        )
        .e;
        for ub in upper_bounds_for("WBF(2,D)") {
            assert!(wbf_lb <= ub.coefficient + 1e-9, "{}", ub.source);
        }
        let db_lb = e_separator(
            params_de_bruijn(2),
            BoundMode::HalfDuplex,
            Period::NonSystolic,
        )
        .e;
        for ub in upper_bounds_for("DB(2,D)") {
            assert!(db_lb <= ub.coefficient + 1e-9, "{}", ub.source);
        }
    }

    #[test]
    fn systolic_bounds_below_systolic_upper_bounds() {
        // The systolic upper bounds of [24] (2.5 log n for WBF, 2 log n
        // for DB) are achieved with small constant periods s >= 4; our
        // Fig. 5 lower bounds must stay below them there.
        for s in 4..=8 {
            let wbf = e_separator(
                params_wbf_undirected(2),
                BoundMode::HalfDuplex,
                Period::Systolic(s),
            );
            assert!(wbf.e <= 2.5 + 1e-9, "s={s}");
            let db = e_separator(
                params_de_bruijn(2),
                BoundMode::HalfDuplex,
                Period::Systolic(s),
            );
            assert!(db.e <= 2.0 + 1e-9, "s={s}");
            // …and above the old baseline (they are *improvements* over
            // what broadcasting gives for these degree-4 networks).
            assert!(db.e >= e_general(s) - 1e-9);
        }
        // At s = 3 the general bound 2.8808 exceeds the [24] coefficient:
        // period-3 systolization of the DB protocol is provably more
        // expensive than the period the upper bound uses.
        let db3 = e_separator(
            params_de_bruijn(2),
            BoundMode::HalfDuplex,
            Period::Systolic(3),
        );
        assert!(db3.e > 2.0);
        let _ = e_general_nonsystolic();
    }

    #[test]
    fn registry_is_well_formed() {
        let all = known_results();
        assert!(all.len() >= 10);
        for e in &all {
            assert!(e.coefficient > 0.9 && e.coefficient < 4.0);
            assert!(!e.source.is_empty());
        }
        // The generic gossip lower bound is present.
        assert!(all
            .iter()
            .any(|e| e.network == "any graph" && e.kind == BoundKind::LowerBound));
    }
}
