//! Table builders: structured reproductions of Figs. 4, 5, 6 and 8.
//!
//! Each builder returns a [`FigTable`] with one cell per table entry of
//! the paper; `render()` prints the aligned ASCII the figure binaries
//! emit. Boundary cells (where the separator optimizer sits on the
//! feasibility boundary `f(λ) = 1` and the value therefore coincides with
//! the general bound) are marked with `∗`, matching the paper's
//! convention in Figs. 5 and 8.

use crate::diameter;
use crate::general::e_coefficient;
use crate::pfun::{BoundMode, Period};
use crate::separator::e_separator;
use sg_graphs::separator::{
    params_butterfly, params_de_bruijn, params_kautz, params_wbf_directed, params_wbf_undirected,
    SeparatorParams,
};

/// One table cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// The coefficient of `log₂ n`.
    pub value: f64,
    /// `true` when the entry coincides with the general (Fig. 4 / broadcast)
    /// bound — rendered with the paper's `∗`.
    pub starred: bool,
}

/// One table row.
#[derive(Debug, Clone)]
pub struct FigRow {
    /// Row label (network family and degree).
    pub label: String,
    /// Cells aligned with the table's column labels.
    pub cells: Vec<Cell>,
}

/// A rendered-able reproduction of one of the paper's figures.
#[derive(Debug, Clone)]
pub struct FigTable {
    /// Figure title.
    pub title: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<FigRow>,
}

impl FigTable {
    /// Aligned ASCII rendering.
    pub fn render(&self) -> String {
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.chars().count())
            .chain(std::iter::once(8))
            .max()
            .unwrap();
        let col_w = 10usize;
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{:label_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" {:>col_w$}", c));
        }
        out.push('\n');
        out.push_str(&"-".repeat(label_w + (col_w + 1) * self.columns.len()));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:label_w$}", r.label));
            for c in &r.cells {
                let star = if c.starred { "*" } else { "" };
                out.push_str(&format!(" {:>col_w$}", format!("{:.4}{}", c.value, star)));
            }
            out.push('\n');
        }
        out
    }
}

/// The standard period columns of the paper's tables: `s = 3..8` and `∞`.
pub fn standard_periods() -> Vec<Period> {
    (3..=8)
        .map(Period::Systolic)
        .chain(std::iter::once(Period::NonSystolic))
        .collect()
}

/// Fig. 4: the general directed/half-duplex systolic coefficients.
pub fn fig4() -> FigTable {
    let periods = standard_periods();
    let cells = periods
        .iter()
        .map(|&p| Cell {
            value: e_coefficient(BoundMode::HalfDuplex, p),
            starred: false,
        })
        .collect();
    FigTable {
        title: "Fig. 4 — general lower bound e(s), directed & half-duplex: t >= e(s)·log2(n) − O(log log n)".into(),
        columns: periods.iter().map(|p| p.label()).collect(),
        rows: vec![FigRow {
            label: "any network".into(),
            cells,
        }],
    }
}

/// The network families of Figs. 5, 6 and 8 with their Lemma 3.1
/// separator parameters.
pub fn separator_families(ds: &[usize]) -> Vec<(String, SeparatorParams, bool)> {
    // (label, params, available_in_full_duplex)
    let mut rows = Vec::new();
    for &d in ds {
        rows.push((format!("BF({d},D)"), params_butterfly(d), true));
        rows.push((format!("WBF->({d},D)"), params_wbf_directed(d), false));
        rows.push((format!("WBF({d},D)"), params_wbf_undirected(d), true));
        rows.push((format!("DB({d},D)"), params_de_bruijn(d), true));
        rows.push((format!("K({d},D)"), params_kautz(d), true));
    }
    rows
}

/// Fig. 5: systolic half-duplex coefficients for the specific networks,
/// `s = 3..8` (the `∗` entries coincide with Fig. 4).
pub fn fig5() -> FigTable {
    fig5_custom(&[2, 3], 3..=8)
}

/// Parameterized Fig. 5: arbitrary degree list and period range. The
/// paper notes that for `d = 4, 5` slight improvements appear only for
/// `s > 8` — regenerate with `fig5_custom(&[4, 5], 3..=14)` to see them.
pub fn fig5_custom(ds: &[usize], periods: std::ops::RangeInclusive<usize>) -> FigTable {
    let periods: Vec<Period> = periods.map(Period::Systolic).collect();
    let rows = separator_families(ds)
        .into_iter()
        .map(|(label, params, _)| FigRow {
            label,
            cells: periods
                .iter()
                .map(|&p| {
                    let b = e_separator(params, BoundMode::HalfDuplex, p);
                    Cell {
                        value: b.e,
                        starred: b.at_boundary,
                    }
                })
                .collect(),
        })
        .collect();
    FigTable {
        title: "Fig. 5 — systolic half-duplex lower bounds for specific networks: t >= e(s)·log2(n)·(1 − o(1))".into(),
        columns: periods.iter().map(|p| p.label()).collect(),
        rows,
    }
}

/// Fig. 6: non-systolic half-duplex coefficients plus the diameter
/// comparison column.
pub fn fig6() -> FigTable {
    let mut rows = Vec::new();
    for &d in &[2usize, 3] {
        let fams: Vec<(String, SeparatorParams, f64)> = vec![
            (
                format!("BF({d},D)"),
                params_butterfly(d),
                diameter::diam_coeff_butterfly(d),
            ),
            (
                format!("WBF->({d},D)"),
                params_wbf_directed(d),
                diameter::diam_coeff_wbf_directed(d),
            ),
            (
                format!("WBF({d},D)"),
                params_wbf_undirected(d),
                diameter::diam_coeff_wbf_undirected(d),
            ),
            (
                format!("DB({d},D)"),
                params_de_bruijn(d),
                diameter::diam_coeff_de_bruijn(d),
            ),
            (
                format!("K({d},D)"),
                params_kautz(d),
                diameter::diam_coeff_kautz(d),
            ),
        ];
        for (label, params, diam) in fams {
            let b = e_separator(params, BoundMode::HalfDuplex, Period::NonSystolic);
            rows.push(FigRow {
                label,
                cells: vec![
                    Cell {
                        value: b.e,
                        starred: b.at_boundary,
                    },
                    Cell {
                        value: diam,
                        starred: false,
                    },
                ],
            });
        }
    }
    FigTable {
        title: "Fig. 6 — non-systolic half-duplex lower bounds (coefficient of log2 n); '∗' = coincides with the general 1.4404".into(),
        columns: vec!["e(∞)".into(), "diam.".into()],
        rows,
    }
}

/// Fig. 8: full-duplex coefficients — the general row (which equals the
/// broadcasting constants `c(s−1)` of \[22, 2\]) and the separator-improved
/// rows for the undirected families.
pub fn fig8() -> FigTable {
    let periods = standard_periods();
    let mut rows = vec![FigRow {
        label: "any network".into(),
        cells: periods
            .iter()
            .map(|&p| Cell {
                value: e_coefficient(BoundMode::FullDuplex, p),
                starred: false,
            })
            .collect(),
    }];
    for (label, params, fd) in separator_families(&[2, 3]) {
        if !fd {
            continue; // directed families have no full-duplex mode
        }
        rows.push(FigRow {
            label,
            cells: periods
                .iter()
                .map(|&p| {
                    let b = e_separator(params, BoundMode::FullDuplex, p);
                    Cell {
                        value: b.e,
                        starred: b.at_boundary,
                    }
                })
                .collect(),
        });
    }
    FigTable {
        title: "Fig. 8 — full-duplex lower bounds; general row = broadcasting constants c(s−1) of [22,2]".into(),
        columns: periods.iter().map(|p| p.label()).collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_row_matches_paper() {
        let t = fig4();
        assert_eq!(t.rows.len(), 1);
        let vals: Vec<f64> = t.rows[0].cells.iter().map(|c| c.value).collect();
        let paper = [2.8808, 1.8133, 1.6502, 1.5363, 1.5021, 1.4721, 1.4404];
        for (got, want) in vals.iter().zip(paper) {
            assert!((got - want).abs() < 1.2e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn fig5_has_all_families_and_sane_values() {
        let t = fig5();
        assert_eq!(t.rows.len(), 10); // 5 families × 2 degrees
        assert_eq!(t.columns.len(), 6);
        for row in &t.rows {
            for (cell, col) in row.cells.iter().zip(&t.columns) {
                assert!(
                    cell.value >= 1.4404 - 1e-6 && cell.value <= 3.0,
                    "{} {col}: {}",
                    row.label,
                    cell.value
                );
            }
            // e(s) non-increasing in s within a row.
            for w in row.cells.windows(2) {
                assert!(w[0].value >= w[1].value - 1e-9, "{}", row.label);
            }
        }
    }

    #[test]
    fn fig5_db_s4_is_starred_wbf_s4_is_not() {
        let t = fig5();
        let db2 = t.rows.iter().find(|r| r.label == "DB(2,D)").unwrap();
        let wbf2 = t.rows.iter().find(|r| r.label == "WBF(2,D)").unwrap();
        // Column order is s=3..8, so s=4 is index 1.
        assert!(db2.cells[1].starred, "DB(2,D) s=4 coincides with Fig. 4");
        assert!(!wbf2.cells[1].starred, "WBF(2,D) s=4 is an improvement");
        assert!((wbf2.cells[1].value - 2.0218).abs() < 5e-4);
    }

    #[test]
    fn fig6_rows_and_diameter_column() {
        let t = fig6();
        assert_eq!(t.rows.len(), 10);
        let wbf2 = t.rows.iter().find(|r| r.label == "WBF(2,D)").unwrap();
        assert!((wbf2.cells[0].value - 1.9750).abs() < 5e-4);
        assert!((wbf2.cells[1].value - 1.5).abs() < 1e-12);
        // Every non-systolic bound beats (or equals) its diameter bound
        // for d = 2 families except de-Bruijn-like diameters of 1.0.
        for row in &t.rows {
            assert!(row.cells[0].value >= 1.4404 - 1e-6, "{}", row.label);
        }
    }

    #[test]
    fn fig8_general_row_is_broadcast_constants() {
        let t = fig8();
        let general = &t.rows[0];
        // Columns s = 3..8 equal the d-bonacci broadcasting constants
        // c(s−1); the ∞ column is 1.
        for (i, cell) in general.cells.iter().enumerate() {
            let want = if i < 6 {
                crate::broadcast::c_broadcast(3 + i - 1)
            } else {
                1.0
            };
            assert!(
                (cell.value - want).abs() < 1e-6,
                "col {i}: {} vs {want}",
                cell.value
            );
        }
        // The three constants the paper quotes.
        assert!((general.cells[0].value - 1.4404).abs() < 1.2e-4);
        assert!((general.cells[1].value - 1.1374).abs() < 1.2e-4);
        assert!((general.cells[2].value - 1.0562).abs() < 1.2e-4);
        // Separator rows dominate the general row entrywise.
        for row in &t.rows[1..] {
            for (c, g) in row.cells.iter().zip(&general.cells) {
                assert!(c.value >= g.value - 1e-9, "{}", row.label);
            }
        }
        // Directed WBF must not appear in the full-duplex table.
        assert!(t.rows.iter().all(|r| !r.label.starts_with("WBF->")));
    }

    #[test]
    fn render_contains_values_and_stars() {
        let t = fig5();
        let s = t.render();
        assert!(s.contains("DB(2,D)"));
        assert!(s.contains('*'));
        assert!(s.contains("2.0218") || s.contains("2.021"));
    }
}
