//! Broadcast protocol generation.
//!
//! Broadcasting (one-to-all) is the problem whose lower bounds (\[22, 2\],
//! the `c(d)·log₂ n` constants) the paper compares against throughout.
//! This module generates executable broadcast schedules: each round, a
//! maximal matching from informed to uninformed processors (informed
//! vertices preferring uninformed neighbours with the highest residual
//! degree — a classic greedy heuristic).

use crate::bitset::Knowledge;
use crate::engine::apply_round;
use sg_graphs::digraph::{Arc, Digraph};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::Protocol;
use sg_protocol::round::Round;

/// Outcome of broadcast schedule generation.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// The generated protocol.
    pub protocol: Protocol,
    /// Rounds until every processor knew the source item.
    pub rounds: usize,
}

/// Generates a greedy broadcast schedule from `source` on `g`
/// (half-duplex: each round an informed vertex informs at most one
/// uninformed out-neighbour, and each uninformed vertex hears from at
/// most one informer). Returns `None` when some vertex is unreachable
/// within `max_rounds`.
pub fn greedy_broadcast(g: &Digraph, source: usize, max_rounds: usize) -> Option<BroadcastOutcome> {
    let n = g.vertex_count();
    // Half-duplex on undirected networks, plain directed mode otherwise.
    let mode = if g.is_symmetric() {
        Mode::HalfDuplex
    } else {
        Mode::Directed
    };
    let mut informed = vec![false; n];
    informed[source] = true;
    let mut informed_count = 1usize;
    let mut rounds = Vec::new();
    if informed_count == n {
        return Some(BroadcastOutcome {
            protocol: Protocol::new(rounds, mode),
            rounds: 0,
        });
    }
    for round_no in 0..max_rounds {
        // Candidate arcs: informed → uninformed, scored by how many
        // *still uninformed* neighbours the target could serve next round
        // (spread the frontier toward high-degree vertices first).
        let mut candidates: Vec<(usize, Arc)> = Vec::new();
        for u in 0..n {
            if !informed[u] {
                continue;
            }
            for &v in g.out_neighbors(u) {
                if informed[v as usize] {
                    continue;
                }
                let residual = g
                    .out_neighbors(v as usize)
                    .iter()
                    .filter(|&&w| !informed[w as usize])
                    .count();
                candidates.push((residual, Arc::new(u, v as usize)));
            }
        }
        if candidates.is_empty() {
            return None; // unreachable vertices
        }
        candidates.sort_by_key(|&(score, a)| (std::cmp::Reverse(score), a));
        let mut used = vec![false; n];
        let mut picked = Vec::new();
        for (_, a) in candidates {
            let (u, v) = (a.from as usize, a.to as usize);
            if used[u] || used[v] {
                continue;
            }
            used[u] = true;
            used[v] = true;
            informed[v] = true;
            informed_count += 1;
            picked.push(a);
        }
        rounds.push(Round::new(picked));
        if informed_count == n {
            return Some(BroadcastOutcome {
                protocol: Protocol::new(rounds, mode),
                rounds: round_no + 1,
            });
        }
    }
    None
}

/// Replays a broadcast protocol through the full simulator and returns
/// the round at which everyone knew `source`'s item — a consistency check
/// between the scheduler's bookkeeping and the engine.
pub fn verify_broadcast(p: &Protocol, n: usize, source: usize) -> Option<usize> {
    let mut k = Knowledge::broadcast_initial(n, source);
    for (i, round) in p.rounds().iter().enumerate() {
        apply_round(&mut k, round);
        if k.all_know(source) {
            return Some(i + 1);
        }
    }
    k.all_know(source).then_some(p.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;
    use sg_graphs::traversal::eccentricity;

    #[test]
    fn broadcast_on_complete_graph_is_optimal() {
        // Doubling: ⌈log₂ n⌉ rounds on K_n.
        for n in [4usize, 8, 13, 16] {
            let g = generators::complete(n);
            let out = greedy_broadcast(&g, 0, 100).expect("completes");
            assert_eq!(out.rounds, (n as f64).log2().ceil() as usize, "K_{n}");
            out.protocol.validate(&g).expect("valid");
        }
    }

    #[test]
    fn broadcast_on_path_is_linear() {
        let n = 10;
        let g = generators::path(n);
        let out = greedy_broadcast(&g, 0, 100).expect("completes");
        assert_eq!(out.rounds, n - 1);
        // From the middle: ecc + something small (one direction at a time
        // costs an extra round per side switch at the start).
        let out = greedy_broadcast(&g, n / 2, 100).expect("completes");
        let ecc = eccentricity(&g, n / 2).unwrap() as usize;
        assert!(out.rounds >= ecc);
        assert!(out.rounds <= ecc + 2);
    }

    #[test]
    fn broadcast_respects_information_theoretic_bounds() {
        for g in [
            generators::hypercube(6),
            generators::de_bruijn(2, 6),
            generators::kautz(2, 5),
            generators::wrapped_butterfly(2, 4),
        ] {
            let n = g.vertex_count();
            let out = greedy_broadcast(&g, 0, 10 * n).expect("completes");
            // Doubling bound.
            assert!(out.rounds >= (n as f64).log2().ceil() as usize);
            // Eccentricity bound.
            assert!(out.rounds >= eccentricity(&g, 0).unwrap() as usize);
            // And it cannot be absurdly slow.
            assert!(out.rounds <= n);
            out.protocol.validate(&g).expect("valid");
        }
    }

    #[test]
    fn scheduler_agrees_with_engine() {
        let g = generators::de_bruijn(2, 5);
        let n = g.vertex_count();
        let src = 7;
        let out = greedy_broadcast(&g, src, 10 * n).expect("completes");
        assert_eq!(verify_broadcast(&out.protocol, n, src), Some(out.rounds));
    }

    #[test]
    fn unreachable_returns_none() {
        let g = Digraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(greedy_broadcast(&g, 0, 100).is_none());
    }

    #[test]
    fn directed_broadcast_follows_arcs() {
        let g = generators::de_bruijn_directed(2, 4);
        let out = greedy_broadcast(&g, 0, 200).expect("strongly connected");
        assert!(out.rounds >= 4, "at least the directed eccentricity");
        out.protocol
            .validate(&g)
            .expect("valid in directed mode too");
    }
}
