//! Persistent worker pool: round application without per-round spawning.
//!
//! The retired row-parallel path ([`crate::parallel`]) pays two taxes on
//! every single round: `std::thread::scope` spawns and joins OS threads,
//! and the arc list is carved into one fixed chunk per thread, so one
//! slow chunk idles every other worker. Both costs dwarf the actual work
//! — a round of a compiled schedule is a few hundred word-OR sweeps —
//! which is how an 8-thread engine ends up *slower* than the naive
//! reference (0.657× on hypercube n = 2048 before this module existed).
//!
//! [`PoolEngine`] fixes the lifecycle: workers are spawned **once** when
//! the engine is built and parked between rounds, and each round is
//! published as a single task — the compiled round's pair list and arc
//! list, viewed as one flat sequence of row-union units. Workers (the
//! caller's thread included) claim *chunks* of that sequence from a
//! shared atomic cursor, so a worker that finishes early steals the
//! remaining chunks instead of idling: dynamic balancing with zero
//! queues to maintain. Chunks are whole rows (≥ 16 units each), and a
//! row at parallel sizes is ≥ 64 bytes wide, so two workers never write
//! the same cache line.
//!
//! Safety mirrors the compiled engine's round analysis: a round is
//! dispatched in one parallel phase only when its targets are pairwise
//! distinct. Then every unit writes its own row(s): a clean pair owns
//! both endpoints (they appear in no other arc of the round), a residual
//! arc owns its target row, and its source row is either never written
//! this round or read from a beginning-of-round snapshot taken before
//! dispatch. Rounds that fail the analysis — duplicate targets, tiny arc
//! counts — run through [`CompiledSchedule::apply`] on the caller's
//! thread, so every input stays exact (the conformance suite pins this
//! against [`crate::reference`]).

use crate::bitset::{CompletionCursor, Knowledge};
use crate::engine::SimResult;
use crate::schedule::{CompiledArc, CompiledSchedule};
use sg_protocol::protocol::SystolicProtocol;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Below this many units (pairs + arcs) a round runs sequentially: the
/// dispatch handshake costs more than the sweeps it would split.
const POOL_MIN_WORK: usize = 64;

/// A worker spins this many loop iterations waiting for the next round
/// before parking on the condvar. Rounds arrive back-to-back during a
/// run, so workers almost never park mid-run; the budget only bounds the
/// cost of keeping them hot across the caller's between-round bookkeeping.
const SPIN_LIMIT: u32 = 10_000;

/// One compiled round, flattened for chunked claiming. Lifetime is
/// erased: the publishing thread keeps the schedule, snapshot buffer and
/// knowledge table alive and unmoved until every worker has drained the
/// cursor (it waits on `active` before touching anything again).
#[derive(Clone, Copy)]
struct RoundTask {
    bits: *mut u64,
    snap: *const u64,
    pairs: *const (u32, u32),
    pairs_len: usize,
    arcs: *const CompiledArc,
    arcs_len: usize,
    words: usize,
    /// Units (pairs then arcs) per claimed chunk.
    chunk: usize,
}

// SAFETY: workers write through `bits` only at pairwise-disjoint row
// ranges (`distinct_targets` plus the clean-pair invariant, verified
// before publishing), read `snap`/`pairs`/`arcs` immutably, and the
// publisher blocks until all workers are done before invalidating any
// pointer.
unsafe impl Send for RoundTask {}

/// State shared between the publishing thread and the pool workers.
struct Shared {
    /// Monotone round counter; a bump publishes the task in `task`.
    epoch: AtomicU64,
    shutdown: AtomicBool,
    /// Next unclaimed chunk index of the current round.
    cursor: AtomicUsize,
    /// Workers still draining the current round.
    active: AtomicUsize,
    /// Any worker observed a row change this round.
    changed: AtomicBool,
    task: Mutex<Option<RoundTask>>,
    park: Mutex<()>,
    wake: Condvar,
}

/// The persistent workers. Built once, reused for every round of every
/// run; dropped workers are shut down and joined.
struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cursor: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            changed: AtomicBool::new(false),
            task: Mutex::new(None),
            park: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers,
            handles,
        }
    }

    /// Publishes one round, participates in the chunk drain, and blocks
    /// until every worker is done. Returns the round's changed flag.
    ///
    /// The caller must uphold the `RoundTask` aliasing contract.
    fn run(&self, task: RoundTask) -> bool {
        let s = &*self.shared;
        s.changed.store(false, Ordering::Relaxed);
        s.cursor.store(0, Ordering::Relaxed);
        s.active.store(self.workers, Ordering::Relaxed);
        *s.task.lock().unwrap() = Some(task);
        s.epoch.fetch_add(1, Ordering::Release);
        // Pair the notify with the park mutex so a worker checking the
        // epoch inside the critical section cannot miss the wakeup.
        drop(s.park.lock().unwrap());
        s.wake.notify_all();
        // The publisher is a worker too: steal chunks until none remain.
        let mut changed = run_chunks(&task, &s.cursor);
        while s.active.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
        }
        changed |= s.changed.load(Ordering::Relaxed);
        changed
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.park.lock().unwrap());
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last = 0u64;
    loop {
        // Wait for the next epoch: spin while rounds are streaming,
        // park (with a timeout, so shutdown is never missed) once idle.
        let mut spins = 0u32;
        let epoch = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != last {
                break e;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                let guard = shared.park.lock().unwrap();
                let _unused = shared
                    .wake
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap();
            }
        };
        last = epoch;
        let task = shared
            .task
            .lock()
            .unwrap()
            .expect("epoch bumped without a task");
        if run_chunks(&task, &shared.cursor) {
            shared.changed.store(true, Ordering::Relaxed);
        }
        shared.active.fetch_sub(1, Ordering::Release);
    }
}

/// Claims and executes chunks of the flattened unit sequence until the
/// shared cursor is exhausted. Returns `true` if any executed unit
/// changed a row.
fn run_chunks(t: &RoundTask, cursor: &AtomicUsize) -> bool {
    let total = t.pairs_len + t.arcs_len;
    let chunks = total.div_ceil(t.chunk.max(1));
    let mut changed = false;
    loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            break;
        }
        let lo = c * t.chunk;
        let hi = (lo + t.chunk).min(total);
        for i in lo..hi {
            if i < t.pairs_len {
                // SAFETY: i < pairs_len.
                let (u, v) = unsafe { *t.pairs.add(i) };
                changed |= unsafe { merge_pair_raw(t.bits, t.words, u as usize, v as usize) };
            } else {
                // SAFETY: i - pairs_len < arcs_len.
                let a = unsafe { *t.arcs.add(i - t.pairs_len) };
                changed |= unsafe { apply_arc_raw(t, a) };
            }
        }
    }
    changed
}

/// Raw-pointer [`Knowledge::merge_pair`]: symmetric union of two rows.
///
/// SAFETY: caller guarantees `u != v`, both rows in bounds, and that no
/// other thread touches row `u` or `v` during the call (clean-pair
/// invariant of the compiled round).
unsafe fn merge_pair_raw(bits: *mut u64, words: usize, u: usize, v: usize) -> bool {
    let a = std::slice::from_raw_parts_mut(bits.add(u * words), words);
    let b = std::slice::from_raw_parts_mut(bits.add(v * words), words);
    let mut changed = false;
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let union = *x | *y;
        changed |= union != *x || union != *y;
        *x = union;
        *y = union;
    }
    changed
}

/// Raw-pointer arc application: target row ORs either its snapshot slot
/// or the source's live row.
///
/// SAFETY: caller guarantees in-bounds rows, `from != to` (compile drops
/// self-loops), that the target row is written by no other unit of the
/// round (`distinct_targets`), and that a slotless source row is not a
/// target of the round (compiled snapshot plan) — so the read never
/// races a write.
unsafe fn apply_arc_raw(t: &RoundTask, a: CompiledArc) -> bool {
    let src: *const u64 = if a.needs_snapshot() {
        t.snap.add(a.slot as usize * t.words)
    } else {
        t.bits.add(a.from as usize * t.words).cast_const()
    };
    let src = std::slice::from_raw_parts(src, t.words);
    let dst = std::slice::from_raw_parts_mut(t.bits.add(a.to as usize * t.words), t.words);
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        let before = *d;
        *d |= *s;
        changed |= *d != before;
    }
    changed
}

/// A compiled schedule bound to a persistent worker pool. Building one
/// spawns `threads - 1` workers; every subsequent round — across as many
/// runs as the caller likes — reuses them. With `threads <= 1` no
/// workers exist and every round takes the sequential compiled path, so
/// the engine degrades to [`CompiledSchedule`] plus one branch.
pub struct PoolEngine {
    sched: CompiledSchedule,
    /// Own flat snapshot buffer (`max_slots × words`), refilled per
    /// round before dispatch.
    snap_buf: Vec<u64>,
    threads: usize,
    pool: Option<WorkerPool>,
}

impl PoolEngine {
    /// Wraps a compiled schedule, spawning `threads - 1` persistent
    /// workers (the calling thread is the remaining worker).
    ///
    /// This is the repo-wide worker-vs-budget convention: `threads` is
    /// a thread *budget* (the CLI's `--threads`, `BatchOptions`'
    /// fields), of which the caller itself is one. A budget of 1
    /// therefore spawns no workers at all and every round takes the
    /// sequential compiled path — callers echoing the budget must not
    /// describe it as a worker count.
    pub fn new(sched: CompiledSchedule, threads: usize) -> Self {
        let words = sched.words();
        let max_slots = (0..sched.round_count())
            .map(|t| sched.round(t).snap_sources.len())
            .max()
            .unwrap_or(0);
        let workers = threads.saturating_sub(1);
        Self {
            snap_buf: vec![0u64; max_slots * words],
            threads: workers + 1,
            pool: (workers > 0).then(|| WorkerPool::new(workers)),
            sched,
        }
    }

    /// Convenience: compile one systolic period and wrap it.
    pub fn for_protocol(sp: &SystolicProtocol, n: usize, threads: usize) -> Self {
        Self::new(CompiledSchedule::compile(sp.period(), n), threads)
    }

    /// Compiled network size.
    pub fn n(&self) -> usize {
        self.sched.n()
    }

    /// The period length.
    pub fn round_count(&self) -> usize {
        self.sched.round_count()
    }

    /// Applies the round at `time` (cyclically) to `k`, splitting the
    /// row unions across the pool when the round is parallel-safe and
    /// big enough to pay for dispatch. Bit-identical to
    /// [`CompiledSchedule::apply`]. Returns `true` if anything changed.
    pub fn apply(&mut self, k: &mut Knowledge, time: usize) -> bool {
        debug_assert_eq!(k.n(), self.sched.n(), "knowledge/engine size mismatch");
        if self.sched.round_count() == 0 {
            return false;
        }
        let words = self.sched.words();
        let dispatch = {
            let r = self.sched.round(time);
            r.distinct_targets && r.pairs.len() + r.arcs.len() >= POOL_MIN_WORK
        };
        let Some(pool) = self.pool.as_ref().filter(|_| dispatch) else {
            return self.sched.apply(k, time);
        };
        let r = self.sched.round(time);
        // Beginning-of-round snapshots of sources that are also targets,
        // taken before any row is written.
        for (slot, &u) in r.snap_sources.iter().enumerate() {
            k.snapshot_into(
                u as usize,
                &mut self.snap_buf[slot * words..(slot + 1) * words],
            );
        }
        let total = r.pairs.len() + r.arcs.len();
        // ~4 chunks per worker balances stealing against cursor traffic;
        // the floor keeps chunks a few cache lines of row data each.
        let chunk = (total / (self.threads * 4)).clamp(16, 16_384);
        let task = RoundTask {
            bits: k.bits_mut().as_mut_ptr(),
            snap: self.snap_buf.as_ptr(),
            pairs: r.pairs.as_ptr(),
            pairs_len: r.pairs.len(),
            arcs: r.arcs.as_ptr(),
            arcs_len: r.arcs.len(),
            words,
            chunk,
        };
        pool.run(task)
    }

    /// Gossip completion time of a fresh execution, reusing the compiled
    /// schedule and the live pool across calls.
    pub fn gossip_time(&mut self, max_rounds: usize) -> Option<usize> {
        let mut k = Knowledge::initial(self.n());
        let mut cursor = CompletionCursor::new();
        if cursor.complete(&k) {
            return Some(0);
        }
        for i in 0..max_rounds {
            self.apply(&mut k, i);
            if cursor.complete(&k) {
                return Some(i + 1);
            }
        }
        None
    }
}

impl std::fmt::Debug for PoolEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolEngine")
            .field("n", &self.n())
            .field("rounds", &self.round_count())
            .field("threads", &self.threads)
            .finish()
    }
}

/// Runs a systolic protocol through the pool engine with the same
/// tracing surface as the other engines; output is bit-identical to
/// [`crate::reference::run_systolic_reference`].
pub fn run_systolic_pool(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    threads: usize,
    trace: bool,
) -> SimResult {
    let mut engine = PoolEngine::for_protocol(sp, n, threads);
    let mut k = Knowledge::initial(n);
    let mut trace_vec = Vec::new();
    let mut cursor = CompletionCursor::new();
    if cursor.complete(&k) {
        return SimResult {
            completed_at: Some(0),
            trace: trace_vec,
        };
    }
    for i in 0..max_rounds {
        engine.apply(&mut k, i);
        if trace {
            trace_vec.push(k.min_count());
        }
        if cursor.complete(&k) {
            return SimResult {
                completed_at: Some(i + 1),
                trace: trace_vec,
            };
        }
    }
    SimResult {
        completed_at: None,
        trace: trace_vec,
    }
}

/// Pool variant of [`crate::engine::systolic_gossip_time`]; exact, with
/// the workers spawned once for the whole run instead of once per round.
pub fn systolic_gossip_time_pool(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    threads: usize,
) -> Option<usize> {
    PoolEngine::for_protocol(sp, n, threads).gossip_time(max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::systolic_gossip_time;
    use crate::reference::run_systolic_reference;
    use sg_graphs::digraph::Arc;
    use sg_protocol::builders;
    use sg_protocol::mode::Mode;
    use sg_protocol::round::Round;

    #[test]
    fn pool_matches_sequential_on_hypercube() {
        // n = 128: rounds have 64 pair units, exactly the dispatch floor.
        let k = 7;
        let sp = builders::hypercube_sweep(k);
        let n = 1usize << k;
        assert_eq!(
            systolic_gossip_time_pool(&sp, n, 50, 4),
            systolic_gossip_time(&sp, n, 50)
        );
    }

    #[test]
    fn pool_traces_match_reference() {
        for (sp, n) in [
            (builders::hypercube_sweep(7), 128usize),
            (builders::grid_traffic_light(16, 8), 128),
            (builders::knodel_sweep(6, 128), 128),
            (builders::path_rrll(9), 9), // tiny rounds: sequential path
        ] {
            for threads in [1, 2, 4] {
                let a = run_systolic_pool(&sp, n, 20 * n, threads, true);
                let b = run_systolic_reference(&sp, n, 20 * n, true);
                assert_eq!(a, b, "threads = {threads}");
            }
        }
    }

    #[test]
    fn engine_reuse_across_runs_is_exact() {
        let sp = builders::hypercube_sweep(7);
        let mut engine = PoolEngine::for_protocol(&sp, 128, 3);
        let want = systolic_gossip_time(&sp, 128, 50);
        for _ in 0..3 {
            assert_eq!(engine.gossip_time(50), want);
        }
    }

    #[test]
    fn duplicate_targets_take_the_sequential_path() {
        // 70 arcs all into distinct targets except two collisions, plus a
        // self-loop: must agree with the reference via the fallback.
        let mut arcs: Vec<Arc> = (0..70).map(|i| Arc::new(i, (i + 1) % 71)).collect();
        arcs.push(Arc::new(5, 1));
        arcs.push(Arc::new(3, 3));
        let sp = SystolicProtocol::new(vec![Round::new(arcs)], Mode::Directed);
        let a = run_systolic_pool(&sp, 71, 300, 4, true);
        let b = run_systolic_reference(&sp, 71, 300, true);
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_engine_has_no_workers() {
        let sp = builders::hypercube_sweep(6);
        let mut engine = PoolEngine::new(CompiledSchedule::compile(sp.period(), 64), 1);
        assert!(engine.pool.is_none());
        assert_eq!(engine.gossip_time(50), Some(6));
    }

    #[test]
    fn empty_and_trivial_networks() {
        let sp = SystolicProtocol::new(vec![Round::empty()], Mode::Directed);
        assert_eq!(systolic_gossip_time_pool(&sp, 0, 10, 4), Some(0));
        assert_eq!(systolic_gossip_time_pool(&sp, 1, 10, 4), Some(0));
        let sp = builders::path_rrll(3);
        assert_eq!(
            systolic_gossip_time_pool(&sp, 3, 100, 4),
            systolic_gossip_time(&sp, 3, 100)
        );
    }
}
