//! Per-round knowledge statistics: the "completion curve" of a protocol
//! execution, used by the validation experiments to visualize how far a
//! protocol is from the lower bounds.

use crate::bitset::Knowledge;
use crate::parallel::apply_round_parallel;
use crate::pool::PoolEngine;
use crate::schedule::CompiledSchedule;
use sg_protocol::protocol::SystolicProtocol;

/// Knowledge statistics after one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// 1-based round index.
    pub round: usize,
    /// Minimum knowledge count over processors.
    pub min: usize,
    /// Maximum knowledge count over processors.
    pub max: usize,
    /// Mean knowledge count.
    pub mean: f64,
}

fn stats_after(k: &Knowledge, round: usize) -> RoundStats {
    let n = k.n();
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    for v in 0..n {
        let c = k.count(v);
        min = min.min(c);
        max = max.max(c);
        sum += c;
    }
    RoundStats {
        round,
        min: if n == 0 { 0 } else { min },
        max,
        mean: sum as f64 / n.max(1) as f64,
    }
}

/// Runs a systolic protocol for up to `max_rounds` through the compiled
/// engine, recording statistics after every round; stops as soon as
/// gossip completes.
pub fn knowledge_curve(sp: &SystolicProtocol, n: usize, max_rounds: usize) -> Vec<RoundStats> {
    let mut sched = CompiledSchedule::compile(sp.period(), n);
    let mut k = Knowledge::initial(n);
    let mut out = Vec::new();
    for i in 0..max_rounds {
        sched.apply(&mut k, i);
        let s = stats_after(&k, i + 1);
        out.push(s);
        if s.min == n {
            break;
        }
    }
    out
}

/// [`knowledge_curve`] with each round's row writes split across
/// `threads` workers — bit-identical output (the parallel round applier
/// is exact), only faster for large `n`. Falls back to the sequential
/// path per round when a round is too small or violates the matching
/// condition.
pub fn knowledge_curve_parallel(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    threads: usize,
) -> Vec<RoundStats> {
    if threads <= 1 {
        return knowledge_curve(sp, n, max_rounds);
    }
    let mut k = Knowledge::initial(n);
    let mut out = Vec::new();
    for i in 0..max_rounds {
        apply_round_parallel(&mut k, sp.round_at(i), threads);
        let s = stats_after(&k, i + 1);
        out.push(s);
        if s.min == n {
            break;
        }
    }
    out
}

/// [`knowledge_curve`] through the persistent worker-pool engine: the
/// pool is built once and reused across all rounds, so the per-round
/// cost is one task dispatch instead of a thread spawn. Bit-identical
/// output; `threads <= 1` takes the sequential compiled path.
pub fn knowledge_curve_pool(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    threads: usize,
) -> Vec<RoundStats> {
    if threads <= 1 {
        return knowledge_curve(sp, n, max_rounds);
    }
    let mut engine = PoolEngine::for_protocol(sp, n, threads);
    let mut k = Knowledge::initial(n);
    let mut out = Vec::new();
    for i in 0..max_rounds {
        engine.apply(&mut k, i);
        let s = stats_after(&k, i + 1);
        out.push(s);
        if s.min == n {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_protocol::builders;

    #[test]
    fn curve_monotone_and_terminates() {
        let sp = builders::hypercube_sweep(4);
        let curve = knowledge_curve(&sp, 16, 100);
        assert_eq!(curve.len(), 4); // completes in exactly 4 rounds
        for w in curve.windows(2) {
            assert!(w[0].min <= w[1].min);
            assert!(w[0].mean <= w[1].mean);
        }
        let last = curve.last().unwrap();
        assert_eq!(last.min, 16);
        assert_eq!(last.max, 16);
    }

    #[test]
    fn doubling_limit_respected() {
        // In full-duplex mode knowledge can at most double per round.
        let sp = builders::hypercube_sweep(5);
        let curve = knowledge_curve(&sp, 32, 100);
        let mut prev = 1usize;
        for s in &curve {
            assert!(
                s.max <= prev * 2,
                "round {}: {} > 2*{}",
                s.round,
                s.max,
                prev
            );
            prev = s.max;
        }
    }

    #[test]
    fn mean_between_min_and_max() {
        let sp = builders::grid_traffic_light(4, 4);
        for s in knowledge_curve(&sp, 16, 200) {
            assert!(s.min as f64 <= s.mean && s.mean <= s.max as f64);
        }
    }

    #[test]
    fn parallel_curve_identical_to_sequential() {
        // Large enough that rounds clear the parallel engine's size gate.
        let sp = builders::hypercube_sweep(7);
        let seq = knowledge_curve(&sp, 128, 50);
        let par = knowledge_curve_parallel(&sp, 128, 50, 4);
        assert_eq!(seq, par);
        // And on a protocol whose rounds are tiny (fallback path).
        let sp = builders::path_rrll(6);
        assert_eq!(
            knowledge_curve(&sp, 6, 100),
            knowledge_curve_parallel(&sp, 6, 100, 4)
        );
    }

    #[test]
    fn pool_curve_identical_to_sequential() {
        let sp = builders::hypercube_sweep(7);
        assert_eq!(
            knowledge_curve(&sp, 128, 50),
            knowledge_curve_pool(&sp, 128, 50, 4)
        );
        let sp = builders::path_rrll(6);
        assert_eq!(
            knowledge_curve(&sp, 6, 100),
            knowledge_curve_pool(&sp, 6, 100, 3)
        );
    }
}
