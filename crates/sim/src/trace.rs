//! Per-round knowledge statistics: the "completion curve" of a protocol
//! execution, used by the validation experiments to visualize how far a
//! protocol is from the lower bounds.

use crate::bitset::Knowledge;
use crate::engine::apply_round;
use sg_protocol::protocol::SystolicProtocol;

/// Knowledge statistics after one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// 1-based round index.
    pub round: usize,
    /// Minimum knowledge count over processors.
    pub min: usize,
    /// Maximum knowledge count over processors.
    pub max: usize,
    /// Mean knowledge count.
    pub mean: f64,
}

/// Runs a systolic protocol for up to `max_rounds`, recording statistics
/// after every round; stops as soon as gossip completes.
pub fn knowledge_curve(sp: &SystolicProtocol, n: usize, max_rounds: usize) -> Vec<RoundStats> {
    let mut k = Knowledge::initial(n);
    let mut out = Vec::new();
    for i in 0..max_rounds {
        apply_round(&mut k, sp.round_at(i));
        let counts: Vec<usize> = (0..n).map(|v| k.count(v)).collect();
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = counts.iter().sum::<usize>() as f64 / n.max(1) as f64;
        out.push(RoundStats {
            round: i + 1,
            min,
            max,
            mean,
        });
        if min == n {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_protocol::builders;

    #[test]
    fn curve_monotone_and_terminates() {
        let sp = builders::hypercube_sweep(4);
        let curve = knowledge_curve(&sp, 16, 100);
        assert_eq!(curve.len(), 4); // completes in exactly 4 rounds
        for w in curve.windows(2) {
            assert!(w[0].min <= w[1].min);
            assert!(w[0].mean <= w[1].mean);
        }
        let last = curve.last().unwrap();
        assert_eq!(last.min, 16);
        assert_eq!(last.max, 16);
    }

    #[test]
    fn doubling_limit_respected() {
        // In full-duplex mode knowledge can at most double per round.
        let sp = builders::hypercube_sweep(5);
        let curve = knowledge_curve(&sp, 32, 100);
        let mut prev = 1usize;
        for s in &curve {
            assert!(
                s.max <= prev * 2,
                "round {}: {} > 2*{}",
                s.round,
                s.max,
                prev
            );
            prev = s.max;
        }
    }

    #[test]
    fn mean_between_min_and_max() {
        let sp = builders::grid_traffic_light(4, 4);
        for s in knowledge_curve(&sp, 16, 200) {
            assert!(s.min as f64 <= s.mean && s.mean <= s.max as f64);
        }
    }
}
