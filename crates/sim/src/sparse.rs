//! Sparse delta engine: million-vertex gossip without the dense matrix.
//!
//! The dense [`Knowledge`] table is `n²` bits — 125 GB at n = 10⁶ —
//! which caps every dense engine around n ≈ 3·10⁴. But the knowledge
//! sets arising from structured protocols are extremely regular: under a
//! hypercube sweep or a Knödel exchange a row is a union of a handful of
//! *intervals* of item indices, whatever `n` is. This engine therefore
//! keeps each row as one of three shapes: a sorted list of disjoint
//! half-open runs `[start, end)`, a dense word block (a row whose run
//! list outgrew the `⌈n/64⌉`-word memory-parity point spills once and
//! stays dense), or `Full` — a completed row retires to a zero-byte
//! marker, incoming arcs short-circuit, and outgoing arcs complete their
//! targets in O(1).
//!
//! Propagation reuses the frontier machinery of [`crate::frontier`]
//! verbatim: per-vertex version counters bumped at end-of-round, per-arc
//! `seen` versions, per-pair version pairs, and the same fixed-point
//! early exit. On top of that, a row that changed records *which runs
//! were added* in that bump. An arc whose `seen` version is exactly one
//! behind its source then unions only that delta into its target —
//! exact, because `seen = v−1` certifies the target already contains the
//! source's version-`v−1` content, so the delta is all the arc could
//! transfer. Deltas are tracked through pure run algebra; a merge that
//! goes through a dense block falls back to full-row unions (the version
//! counters still skip all idle arcs), so every path stays bit-exact
//! against [`crate::reference`] — the conformance suite compares raw
//! tables via [`SparseEngine::to_dense`].

use crate::bitset::Knowledge;
use crate::engine::SimResult;
use crate::schedule::CompiledSchedule;
use sg_protocol::protocol::SystolicProtocol;

/// One row of the sparse knowledge table.
#[derive(Debug, Clone)]
enum RowRep {
    /// Sorted, disjoint, non-adjacent half-open item runs.
    Runs(Vec<(u32, u32)>),
    /// Spilled row: plain `⌈n/64⌉` words.
    Dense(Box<[u64]>),
    /// Retired row: knows every item; stores nothing.
    Full,
}

/// A borrowed view of a source row (live, snapshot, or delta runs).
enum SrcView<'a> {
    Full,
    Runs(&'a [(u32, u32)]),
    Dense(&'a [u64]),
}

fn view_of(rep: &RowRep) -> SrcView<'_> {
    match rep {
        RowRep::Full => SrcView::Full,
        RowRep::Runs(r) => SrcView::Runs(r),
        RowRep::Dense(d) => SrcView::Dense(d),
    }
}

fn rep_bytes(rep: &RowRep) -> usize {
    match rep {
        RowRep::Runs(r) => r.len() * std::mem::size_of::<(u32, u32)>(),
        RowRep::Dense(d) => d.len() * 8,
        RowRep::Full => 0,
    }
}

/// Total item count of a run list.
fn run_len(runs: &[(u32, u32)]) -> usize {
    runs.iter().map(|&(s, e)| (e - s) as usize).sum()
}

/// `out = a ∪ b` for sorted disjoint run lists (adjacent runs coalesce).
fn run_union(a: &[(u32, u32)], b: &[(u32, u32)], out: &mut Vec<(u32, u32)>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    let mut cur: Option<(u32, u32)> = None;
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i].0 <= b[j].0) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        match cur {
            None => cur = Some(next),
            Some((s, e)) if next.0 <= e => cur = Some((s, e.max(next.1))),
            Some(c) => {
                out.push(c);
                cur = Some(next);
            }
        }
    }
    if let Some(c) = cur {
        out.push(c);
    }
}

/// `out = a \ b` for sorted disjoint run lists.
fn run_subtract(a: &[(u32, u32)], b: &[(u32, u32)], out: &mut Vec<(u32, u32)>) {
    out.clear();
    let mut j = 0usize;
    for &(start, end) in a {
        let mut s = start;
        while j < b.len() && b[j].1 <= s {
            j += 1;
        }
        // `b[k]` may extend past this a-run into the next one, so scan
        // with a local index and leave `j` at the first still-relevant run.
        let mut k = j;
        while s < end {
            if k >= b.len() || b[k].0 >= end {
                out.push((s, end));
                break;
            }
            let (bs, be) = b[k];
            if bs > s {
                out.push((s, bs));
            }
            if be >= end {
                break;
            }
            s = be;
            k += 1;
        }
    }
}

/// Sorts a list of pairwise-disjoint runs and coalesces adjacency.
fn normalize_runs(r: &mut Vec<(u32, u32)>) {
    if r.len() <= 1 {
        return;
    }
    r.sort_unstable();
    let mut w = 0usize;
    for i in 1..r.len() {
        if r[i].0 <= r[w].1 {
            r[w].1 = r[w].1.max(r[i].1);
        } else {
            w += 1;
            r[w] = r[i];
        }
    }
    r.truncate(w + 1);
}

/// ORs `runs` into a word block; returns the number of bits added.
fn dense_set_runs(w: &mut [u64], runs: &[(u32, u32)]) -> usize {
    let mut added = 0usize;
    for &(s, e) in runs {
        let (s, e) = (s as usize, e as usize);
        #[allow(clippy::needless_range_loop)] // lo/hi depend on wi, not just w[wi]
        for wi in s / 64..=(e - 1) / 64 {
            let lo = if wi == s / 64 { s % 64 } else { 0 };
            let hi = if wi == (e - 1) / 64 {
                (e - 1) % 64 + 1
            } else {
                64
            };
            let mask = if hi == 64 {
                !0u64 << lo
            } else {
                ((1u64 << hi) - 1) & (!0u64 << lo)
            };
            added += (mask & !w[wi]).count_ones() as usize;
            w[wi] |= mask;
        }
    }
    added
}

/// `dst |= src` word-wise; returns the number of bits added.
fn or_count(dst: &mut [u64], src: &[u64]) -> usize {
    let mut added = 0usize;
    for (d, s) in dst.iter_mut().zip(src) {
        added += (*s & !*d).count_ones() as usize;
        *d |= *s;
    }
    added
}

fn runs_to_dense(words: usize, runs: &[(u32, u32)]) -> Box<[u64]> {
    let mut d = vec![0u64; words].into_boxed_slice();
    dense_set_runs(&mut d, runs);
    d
}

/// Reusable merge scratch. `added_a`/`exact_a` describe what the first
/// (or only) written row gained, `added_b`/`exact_b` the second (pair
/// merges). `exact` means the added runs are the complete delta; inexact
/// merges (anything through a dense block) invalidate the target's
/// pending delta instead.
#[derive(Debug, Default)]
struct Scratch {
    union: Vec<(u32, u32)>,
    added_a: Vec<(u32, u32)>,
    added_b: Vec<(u32, u32)>,
    exact_a: bool,
    exact_b: bool,
}

/// The sparse knowledge table: rows, counts, and the completion /
/// memory accounting that replaces `Knowledge`'s O(n) scans.
#[derive(Debug)]
struct SparseState {
    n: usize,
    words: usize,
    /// Run count above which a row spills to dense (memory parity).
    spill: usize,
    rows: Vec<RowRep>,
    counts: Vec<u32>,
    /// Rows with `count < n`; 0 ⇔ gossip complete.
    incomplete: usize,
    /// Approximate heap bytes of all row representations.
    bytes: usize,
}

impl SparseState {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let rows: Vec<RowRep> = (0..n)
            .map(|v| {
                if n == 1 {
                    RowRep::Full
                } else {
                    RowRep::Runs(vec![(v as u32, v as u32 + 1)])
                }
            })
            .collect();
        Self {
            n,
            words,
            spill: words.max(16),
            bytes: rows.iter().map(rep_bytes).sum(),
            counts: vec![if n == 0 { 0 } else { 1 }; n],
            incomplete: if n <= 1 { 0 } else { n },
            rows,
        }
    }

    /// Removes row `v` for rebuilding (bytes unaccounted until
    /// [`Self::install`] puts a replacement back).
    fn take(&mut self, v: usize) -> RowRep {
        let r = std::mem::replace(&mut self.rows[v], RowRep::Full);
        self.bytes -= rep_bytes(&r);
        r
    }

    /// Installs row `v` with its new count, retiring it to [`RowRep::Full`]
    /// when complete.
    fn install(&mut self, v: usize, rep: RowRep, count: usize) {
        let full = count == self.n;
        let rep = if full { RowRep::Full } else { rep };
        self.bytes += rep_bytes(&rep);
        if full && (self.counts[v] as usize) < self.n {
            self.incomplete -= 1;
        }
        self.counts[v] = count as u32;
        self.rows[v] = rep;
    }

    fn make_full(&mut self, v: usize) {
        let _ = self.take(v);
        self.install(v, RowRep::Full, self.n);
    }

    /// Clean full-duplex pair merge: both rows end at their union.
    /// Returns per-endpoint changed flags; the added runs (and their
    /// exactness) land in `sc.added_a`/`sc.added_b` for `u`/`v`.
    fn merge_pair(&mut self, u: usize, v: usize, sc: &mut Scratch) -> (bool, bool) {
        sc.added_a.clear();
        sc.added_b.clear();
        sc.exact_a = true;
        sc.exact_b = true;
        let n = self.n;
        let (cu0, cv0) = (self.counts[u] as usize, self.counts[v] as usize);
        if cu0 == n && cv0 == n {
            return (false, false);
        }
        if cu0 == n {
            self.make_full(v);
            sc.exact_b = false;
            return (false, true);
        }
        if cv0 == n {
            self.make_full(u);
            sc.exact_a = false;
            return (true, false);
        }
        let ru = self.take(u);
        let rv = self.take(v);
        match (ru, rv) {
            (RowRep::Runs(a), RowRep::Runs(b)) => {
                run_subtract(&b, &a, &mut sc.added_a);
                run_subtract(&a, &b, &mut sc.added_b);
                let (cu, cv) = (!sc.added_a.is_empty(), !sc.added_b.is_empty());
                if !cu && !cv {
                    self.install(u, RowRep::Runs(a), cu0);
                    self.install(v, RowRep::Runs(b), cv0);
                    return (false, false);
                }
                run_union(&a, &b, &mut sc.union);
                let count = cu0 + run_len(&sc.added_a);
                if sc.union.len() > self.spill {
                    let d = runs_to_dense(self.words, &sc.union);
                    self.install(u, RowRep::Dense(d.clone()), count);
                    self.install(v, RowRep::Dense(d), count);
                } else {
                    self.install(u, RowRep::Runs(sc.union.clone()), count);
                    self.install(v, RowRep::Runs(sc.union.clone()), count);
                }
                (cu, cv)
            }
            (ru, rv) => {
                // At least one dense side: go through a word block. The
                // added bits are not extracted as runs, so both deltas
                // turn inexact (version skipping still applies).
                sc.exact_a = false;
                sc.exact_b = false;
                let mut w = match ru {
                    RowRep::Dense(d) => d,
                    RowRep::Runs(r) => runs_to_dense(self.words, &r),
                    RowRep::Full => unreachable!("full rows handled above"),
                };
                let added_u = match &rv {
                    RowRep::Dense(d) => or_count(&mut w, d),
                    RowRep::Runs(r) => dense_set_runs(&mut w, r),
                    RowRep::Full => unreachable!("full rows handled above"),
                };
                let count = cu0 + added_u;
                self.install(u, RowRep::Dense(w.clone()), count);
                self.install(v, RowRep::Dense(w), count);
                (count > cu0, count > cv0)
            }
        }
    }

    /// `t ← t ∪ view`. Returns `(changed, exact)`; exact added runs (for
    /// the delta bookkeeping) land in `sc.added_a`.
    fn absorb_view(&mut self, t: usize, view: SrcView<'_>, sc: &mut Scratch) -> (bool, bool) {
        sc.added_a.clear();
        let c0 = self.counts[t] as usize;
        if c0 == self.n {
            return (false, true);
        }
        match view {
            SrcView::Full => {
                self.make_full(t);
                (true, false)
            }
            SrcView::Runs(src) => match self.take(t) {
                RowRep::Runs(a) => {
                    run_subtract(src, &a, &mut sc.added_a);
                    if sc.added_a.is_empty() {
                        self.install(t, RowRep::Runs(a), c0);
                        return (false, true);
                    }
                    run_union(&a, src, &mut sc.union);
                    let count = c0 + run_len(&sc.added_a);
                    if sc.union.len() > self.spill {
                        self.install(
                            t,
                            RowRep::Dense(runs_to_dense(self.words, &sc.union)),
                            count,
                        );
                    } else {
                        self.install(t, RowRep::Runs(sc.union.clone()), count);
                    }
                    (true, true)
                }
                RowRep::Dense(mut d) => {
                    let added = dense_set_runs(&mut d, src);
                    self.install(t, RowRep::Dense(d), c0 + added);
                    (added > 0, false)
                }
                RowRep::Full => unreachable!("count < n"),
            },
            SrcView::Dense(src) => {
                let mut d = match self.take(t) {
                    RowRep::Dense(d) => d,
                    RowRep::Runs(a) => runs_to_dense(self.words, &a),
                    RowRep::Full => unreachable!("count < n"),
                };
                let added = or_count(&mut d, src);
                self.install(t, RowRep::Dense(d), c0 + added);
                (added > 0, false)
            }
        }
    }

    /// `t ← t ∪ runs` (the delta fast path).
    fn absorb_runs(&mut self, t: usize, runs: &[(u32, u32)], sc: &mut Scratch) -> (bool, bool) {
        self.absorb_view(t, SrcView::Runs(runs), sc)
    }

    /// `t ← t ∪ from` off `from`'s live row (valid when `from` is not
    /// written this round — the compiled snapshot plan guarantees it).
    fn absorb_from(&mut self, t: usize, from: usize, sc: &mut Scratch) -> (bool, bool) {
        debug_assert_ne!(t, from, "compile drops self-loops");
        if matches!(self.rows[from], RowRep::Full) {
            sc.added_a.clear();
            if self.counts[t] as usize == self.n {
                return (false, true);
            }
            self.make_full(t);
            return (true, false);
        }
        // Move the source row out so the table can be mutated; the row
        // itself is untouched and restored as-is (bytes net zero).
        let src = std::mem::replace(&mut self.rows[from], RowRep::Full);
        let r = self.absorb_view(t, view_of(&src), sc);
        self.rows[from] = src;
        r
    }
}

/// Expands a sparse table into a dense [`Knowledge`] (tests and small-n
/// diagnostics only — this is the allocation the sparse engines exist to
/// avoid).
fn state_to_dense(state: &SparseState) -> Knowledge {
    let n = state.n;
    let words = state.words;
    let mut k = Knowledge::initial(n);
    let tail_mask = if n.is_multiple_of(64) {
        !0u64
    } else {
        (1u64 << (n % 64)) - 1
    };
    let bits = k.bits_mut();
    for v in 0..n {
        let row = &mut bits[v * words..(v + 1) * words];
        match &state.rows[v] {
            RowRep::Runs(r) => {
                row.fill(0);
                dense_set_runs(row, r);
            }
            RowRep::Dense(d) => row.copy_from_slice(d),
            RowRep::Full => {
                row.fill(!0);
                row[words - 1] = tail_mask;
            }
        }
    }
    k
}

/// The sparse knowledge table without a schedule: for engines whose arc
/// sets are generated on the fly — randomized gossip draws a fresh arc
/// set every round, so there is no compiled period to key frontier
/// versions on. [`Self::apply_round`] executes one *synchronous* round
/// over an arbitrary arc list under strict beginning-of-round semantics
/// (Definition 3.1): every new row is computed from the old table before
/// any row is installed, so a vertex that both sends and receives in the
/// same round transfers exactly its start-of-round knowledge, whatever
/// the arc order. Rows use the same run/dense/full shapes as
/// [`SparseEngine`] — interval runs while knowledge is structured, a
/// one-time spill to `⌈n/64⌉` words when it scatters (which randomized
/// gossip does), and zero-byte retirement for completed rows.
#[derive(Debug)]
pub struct SparseKnowledge {
    state: SparseState,
    /// Per-round `(target, source)` pairs, sorted so each target's
    /// sources are contiguous.
    grouped: Vec<(u32, u32)>,
    /// Computed new rows, installed only after every read is done.
    updates: Vec<(u32, RowRep, u32)>,
    /// Run-algebra double buffer for the per-target union fold.
    acc: Vec<(u32, u32)>,
    acc_next: Vec<(u32, u32)>,
}

impl SparseKnowledge {
    /// The initial state: every processor knows exactly its own item.
    pub fn new(n: usize) -> Self {
        Self {
            state: SparseState::new(n),
            grouped: Vec::new(),
            updates: Vec::new(),
            acc: Vec::new(),
            acc_next: Vec::new(),
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.state.n
    }

    /// `true` when every processor knows every item (O(1)).
    pub fn all_complete(&self) -> bool {
        self.state.incomplete == 0
    }

    /// Number of items processor `v` knows.
    pub fn count(&self, v: usize) -> usize {
        self.state.counts[v] as usize
    }

    /// Minimum knowledge count over processors.
    pub fn min_count(&self) -> usize {
        self.state
            .counts
            .iter()
            .map(|&c| c as usize)
            .min()
            .unwrap_or(0)
    }

    /// Does processor `v` know item `item`?
    pub fn knows(&self, v: usize, item: usize) -> bool {
        match &self.state.rows[v] {
            RowRep::Full => true,
            RowRep::Runs(r) => r
                .binary_search_by(|&(s, e)| {
                    if (item as u32) < s {
                        std::cmp::Ordering::Greater
                    } else if (item as u32) >= e {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
            RowRep::Dense(d) => d[item / 64] >> (item % 64) & 1 == 1,
        }
    }

    /// Approximate heap footprint of the row representations.
    pub fn state_bytes(&self) -> usize {
        self.state.bytes
    }

    /// Expands into a dense [`Knowledge`] (tests and small n only).
    pub fn to_dense(&self) -> Knowledge {
        state_to_dense(&self.state)
    }

    /// Applies one synchronous round of `(from, to)` transfers. Targets
    /// read beginning-of-round source state only; duplicate arcs and
    /// self-loops are ignored. Returns `true` if anything changed.
    pub fn apply_round(&mut self, arcs: &[(u32, u32)]) -> bool {
        let n = self.state.n;
        self.grouped.clear();
        for &(from, to) in arcs {
            if from != to && (self.state.counts[to as usize] as usize) < n {
                self.grouped.push((to, from));
            }
        }
        self.grouped.sort_unstable();
        self.grouped.dedup();
        // Phase 1: compute every changed target's new row off the old
        // table. Nothing is installed yet, so a row that is both source
        // and target this round contributes its start-of-round content.
        self.updates.clear();
        let mut i = 0;
        while i < self.grouped.len() {
            let t = self.grouped[i].0;
            let mut j = i;
            while j < self.grouped.len() && self.grouped[j].0 == t {
                j += 1;
            }
            let sources = &self.grouped[i..j];
            i = j;
            let ti = t as usize;
            let c0 = self.state.counts[ti] as usize;
            // Any full source completes the target outright.
            if sources
                .iter()
                .any(|&(_, f)| matches!(self.state.rows[f as usize], RowRep::Full))
            {
                self.updates.push((t, RowRep::Full, n as u32));
                continue;
            }
            let dense_involved = matches!(self.state.rows[ti], RowRep::Dense(_))
                || sources
                    .iter()
                    .any(|&(_, f)| matches!(self.state.rows[f as usize], RowRep::Dense(_)));
            if dense_involved {
                // Word-block path: clone the target's row and OR every
                // source in, counting added bits as we go.
                let mut w = match &self.state.rows[ti] {
                    RowRep::Dense(d) => d.clone(),
                    RowRep::Runs(r) => runs_to_dense(self.state.words, r),
                    RowRep::Full => unreachable!("count < n"),
                };
                let mut added = 0usize;
                for &(_, f) in sources {
                    added += match &self.state.rows[f as usize] {
                        RowRep::Dense(d) => or_count(&mut w, d),
                        RowRep::Runs(r) => dense_set_runs(&mut w, r),
                        RowRep::Full => unreachable!("full sources handled above"),
                    };
                }
                if added > 0 {
                    self.updates
                        .push((t, RowRep::Dense(w), (c0 + added) as u32));
                }
                continue;
            }
            // All-runs path: fold the sources into the target's run list.
            self.acc.clear();
            if let RowRep::Runs(r) = &self.state.rows[ti] {
                self.acc.extend_from_slice(r);
            }
            for &(_, f) in sources {
                let RowRep::Runs(src) = &self.state.rows[f as usize] else {
                    unreachable!("non-runs sources handled above");
                };
                run_union(&self.acc, src, &mut self.acc_next);
                std::mem::swap(&mut self.acc, &mut self.acc_next);
            }
            let count = run_len(&self.acc);
            if count > c0 {
                let rep = if self.acc.len() > self.state.spill {
                    RowRep::Dense(runs_to_dense(self.state.words, &self.acc))
                } else {
                    RowRep::Runs(self.acc.clone())
                };
                self.updates.push((t, rep, count as u32));
            }
        }
        // Phase 2: install. `take`/`install` keep the byte and
        // completion accounting exact and retire full rows to zero bytes.
        let changed = !self.updates.is_empty();
        for (t, rep, count) in self.updates.drain(..) {
            let ti = t as usize;
            let _ = self.state.take(ti);
            self.state.install(ti, rep, count as usize);
        }
        changed
    }
}

/// The sparse engine: a compiled schedule, the sparse table, and the
/// frontier staleness state (versions, per-arc/per-pair seen marks,
/// per-row last-bump deltas). Owns its knowledge state — build one per
/// execution.
#[derive(Debug)]
pub struct SparseEngine {
    sched: CompiledSchedule,
    state: SparseState,
    /// Per-vertex row version; starts at 1, bumped at end-of-round.
    ver: Vec<u64>,
    /// `seen[round][arc]`: source version last absorbed; 0 = never.
    seen: Vec<Vec<u64>>,
    /// `seen_pairs[round][pair]`: endpoint versions at the last merge.
    seen_pairs: Vec<Vec<(u64, u64)>>,
    /// Runs added by each row's latest version bump (valid iff
    /// `delta_ok`); version 1's delta is the initial single-item run.
    deltas: Vec<Vec<(u32, u32)>>,
    delta_ok: Vec<bool>,
    /// In-round accumulators for the next delta.
    pending: Vec<Vec<(u32, u32)>>,
    pending_ok: Vec<bool>,
    /// Reusable per-round scratch, as in the frontier engine.
    active: Vec<bool>,
    slot_needed: Vec<bool>,
    /// Snapshot slots: row representations cloned at round start.
    snap: Vec<RowRep>,
    changed_targets: Vec<u32>,
    target_changed: Vec<bool>,
    sc: Scratch,
}

impl SparseEngine {
    /// Builds the engine (and its initial knowledge state) for one
    /// compiled schedule.
    pub fn new(sched: CompiledSchedule) -> Self {
        let n = sched.n();
        let seen: Vec<Vec<u64>> = (0..sched.round_count())
            .map(|t| vec![0u64; sched.round(t).arcs.len()])
            .collect();
        let seen_pairs: Vec<Vec<(u64, u64)>> = (0..sched.round_count())
            .map(|t| vec![(0u64, 0u64); sched.round(t).pairs.len()])
            .collect();
        let max_arcs = seen.iter().map(Vec::len).max().unwrap_or(0);
        let max_slots = (0..sched.round_count())
            .map(|t| sched.round(t).snap_sources.len())
            .max()
            .unwrap_or(0);
        Self {
            state: SparseState::new(n),
            ver: vec![1u64; n],
            seen,
            seen_pairs,
            // Version 1 added the initial content {v} relative to the
            // empty row, so first-contact arcs ride the delta path too.
            deltas: (0..n).map(|v| vec![(v as u32, v as u32 + 1)]).collect(),
            delta_ok: vec![n > 1; n],
            pending: vec![Vec::new(); n],
            pending_ok: vec![true; n],
            active: vec![false; max_arcs],
            slot_needed: vec![false; max_slots],
            snap: vec![RowRep::Full; max_slots],
            changed_targets: Vec::new(),
            target_changed: vec![false; n],
            sc: Scratch::default(),
            sched,
        }
    }

    /// Convenience: compile one systolic period and wrap it.
    pub fn for_protocol(sp: &SystolicProtocol, n: usize) -> Self {
        Self::new(CompiledSchedule::compile(sp.period(), n))
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.state.n
    }

    /// The period length.
    pub fn round_count(&self) -> usize {
        self.sched.round_count()
    }

    /// `true` when every processor knows every item (O(1)).
    pub fn all_complete(&self) -> bool {
        self.state.incomplete == 0
    }

    /// Number of items processor `v` knows.
    pub fn count(&self, v: usize) -> usize {
        self.state.counts[v] as usize
    }

    /// Minimum knowledge count over processors (O(n) over the count
    /// vector, not the bit table).
    pub fn min_count(&self) -> usize {
        self.state
            .counts
            .iter()
            .map(|&c| c as usize)
            .min()
            .unwrap_or(0)
    }

    /// Approximate heap footprint of the row representations.
    pub fn state_bytes(&self) -> usize {
        self.state.bytes
    }

    /// Expands the sparse table into a dense [`Knowledge`] (tests and
    /// small-n diagnostics only — this is the allocation the engine
    /// exists to avoid).
    pub fn to_dense(&self) -> Knowledge {
        state_to_dense(&self.state)
    }

    /// Applies the round at `time` (cyclically). Bit-identical to the
    /// dense engines; returns `true` if anything changed.
    pub fn apply(&mut self, time: usize) -> bool {
        if self.sched.round_count() == 0 {
            return false;
        }
        let idx = time % self.sched.round_count();
        let n = self.state.n;
        let r = self.sched.round(idx);
        // Pass 0: clean full-duplex pairs, with the frontier's version
        // skipping (the merge is the only writer of either endpoint).
        for (j, &(u, v)) in r.pairs.iter().enumerate() {
            let (ui, vi) = (u as usize, v as usize);
            let vs = (self.ver[ui], self.ver[vi]);
            if self.seen_pairs[idx][j] == vs {
                continue;
            }
            let (cu, cv) = self.state.merge_pair(ui, vi, &mut self.sc);
            self.seen_pairs[idx][j] = (vs.0 + u64::from(cu), vs.1 + u64::from(cv));
            if cu {
                note_change(
                    u,
                    self.sc.exact_a,
                    &self.sc.added_a,
                    &mut self.changed_targets,
                    &mut self.target_changed,
                    &mut self.pending,
                    &mut self.pending_ok,
                );
            }
            if cv {
                note_change(
                    v,
                    self.sc.exact_b,
                    &self.sc.added_b,
                    &mut self.changed_targets,
                    &mut self.target_changed,
                    &mut self.pending,
                    &mut self.pending_ok,
                );
            }
        }
        // Pass 1: arc liveness off beginning-of-round versions. Arcs
        // into retired (full) targets fast-forward their seen mark: a
        // complete row trivially contains any source version.
        let mut any_active = false;
        for (j, a) in r.arcs.iter().enumerate() {
            let from = a.from as usize;
            let live = if self.state.counts[a.to as usize] as usize == n {
                self.seen[idx][j] = self.ver[from];
                false
            } else {
                self.seen[idx][j] != self.ver[from]
            };
            self.active[j] = live;
            any_active |= live;
        }
        if !any_active {
            return self.finish_round();
        }
        // Pass 2: clone the row representations an active snapshot arc
        // will read (sources that are also targets of this round).
        for flag in &mut self.slot_needed[..r.snap_sources.len()] {
            *flag = false;
        }
        for (j, a) in r.arcs.iter().enumerate() {
            if self.active[j] && a.needs_snapshot() {
                self.slot_needed[a.slot as usize] = true;
            }
        }
        for (slot, &u) in r.snap_sources.iter().enumerate() {
            if self.slot_needed[slot] {
                self.snap[slot] = self.state.rows[u as usize].clone();
            }
        }
        // Pass 3: apply the active arcs — delta runs when the target is
        // exactly one source version behind, full row unions otherwise.
        for (j, a) in r.arcs.iter().enumerate() {
            if !self.active[j] {
                continue;
            }
            let from = a.from as usize;
            let to = a.to as usize;
            let v0 = self.ver[from];
            let (changed, exact) = if a.needs_snapshot() {
                let view = view_of(&self.snap[a.slot as usize]);
                self.state.absorb_view(to, view, &mut self.sc)
            } else if self.delta_ok[from] && self.seen[idx][j] + 1 == v0 {
                self.state.absorb_runs(to, &self.deltas[from], &mut self.sc)
            } else {
                self.state.absorb_from(to, from, &mut self.sc)
            };
            self.seen[idx][j] = v0;
            if changed {
                note_change(
                    a.to,
                    exact,
                    &self.sc.added_a,
                    &mut self.changed_targets,
                    &mut self.target_changed,
                    &mut self.pending,
                    &mut self.pending_ok,
                );
            }
        }
        self.finish_round()
    }

    /// End of round: bump changed rows' versions and promote their
    /// pending added runs to the row's delta.
    fn finish_round(&mut self) -> bool {
        let any = !self.changed_targets.is_empty();
        for &t in &self.changed_targets {
            let ti = t as usize;
            self.ver[ti] += 1;
            self.target_changed[ti] = false;
            if self.pending_ok[ti] && (self.state.counts[ti] as usize) < self.state.n {
                normalize_runs(&mut self.pending[ti]);
                std::mem::swap(&mut self.deltas[ti], &mut self.pending[ti]);
                self.delta_ok[ti] = true;
            } else {
                self.delta_ok[ti] = false;
            }
            self.pending[ti].clear();
            self.pending_ok[ti] = true;
        }
        self.changed_targets.clear();
        any
    }
}

/// Records a changed row: queue its version bump and extend (or
/// invalidate) its pending delta.
fn note_change(
    t: u32,
    exact: bool,
    added: &[(u32, u32)],
    changed_targets: &mut Vec<u32>,
    target_changed: &mut [bool],
    pending: &mut [Vec<(u32, u32)>],
    pending_ok: &mut [bool],
) {
    let ti = t as usize;
    if !target_changed[ti] {
        target_changed[ti] = true;
        changed_targets.push(t);
    }
    if exact && pending_ok[ti] {
        pending[ti].extend_from_slice(added);
    } else {
        pending_ok[ti] = false;
        pending[ti].clear();
    }
}

/// Outcome of a sparse run: the usual [`SimResult`] plus the resource
/// telemetry large-n callers report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseOutcome {
    /// Completion time and (optional) min-count trace, bit-identical to
    /// the reference engine (unless the run was memory-aborted).
    pub result: SimResult,
    /// Rounds actually executed (fixed-point exits stop early).
    pub rounds_run: usize,
    /// Peak approximate heap bytes of the row representations.
    pub peak_bytes: usize,
    /// `true` when the run stopped because `mem_limit` was exceeded.
    pub aborted_mem: bool,
}

/// Runs a systolic protocol through the sparse engine, stopping early if
/// the row storage exceeds `mem_limit` bytes (a graceful out for
/// unstructured instances whose rows densify — the alternative is an
/// OOM kill at n²/8 bytes).
pub fn run_systolic_sparse_with_limit(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    trace: bool,
    mem_limit: Option<usize>,
) -> SparseOutcome {
    let mut engine = SparseEngine::for_protocol(sp, n);
    let mut trace_vec = Vec::new();
    let mut peak = engine.state_bytes();
    if engine.all_complete() {
        return SparseOutcome {
            result: SimResult {
                completed_at: Some(0),
                trace: trace_vec,
            },
            rounds_run: 0,
            peak_bytes: peak,
            aborted_mem: false,
        };
    }
    let s = engine.round_count().max(1);
    let mut idle_rounds = 0usize;
    let mut rounds_run = 0usize;
    for i in 0..max_rounds {
        let changed = engine.apply(i);
        rounds_run = i + 1;
        if trace {
            trace_vec.push(engine.min_count());
        }
        peak = peak.max(engine.state_bytes());
        if engine.all_complete() {
            return SparseOutcome {
                result: SimResult {
                    completed_at: Some(i + 1),
                    trace: trace_vec,
                },
                rounds_run,
                peak_bytes: peak,
                aborted_mem: false,
            };
        }
        if mem_limit.is_some_and(|limit| engine.state_bytes() > limit) {
            return SparseOutcome {
                result: SimResult {
                    completed_at: None,
                    trace: trace_vec,
                },
                rounds_run,
                peak_bytes: peak,
                aborted_mem: true,
            };
        }
        idle_rounds = if changed { 0 } else { idle_rounds + 1 };
        if idle_rounds >= s {
            // Fixed point of the period: pad the trace exactly like the
            // frontier engine (and hence the reference) would.
            if trace {
                let stuck = engine.min_count();
                trace_vec.resize(max_rounds, stuck);
            }
            break;
        }
    }
    SparseOutcome {
        result: SimResult {
            completed_at: None,
            trace: trace_vec,
        },
        rounds_run,
        peak_bytes: peak,
        aborted_mem: false,
    }
}

/// Runs a systolic protocol through the sparse engine; output is
/// bit-identical to [`crate::reference::run_systolic_reference`],
/// including the trace.
pub fn run_systolic_sparse(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    trace: bool,
) -> SimResult {
    run_systolic_sparse_with_limit(sp, n, max_rounds, trace, None).result
}

/// Sparse variant of [`crate::engine::systolic_gossip_time`]; exact,
/// with O(state) memory instead of O(n²) bits.
pub fn systolic_gossip_time_sparse(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
) -> Option<usize> {
    run_systolic_sparse(sp, n, max_rounds, false).completed_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{run_systolic_reference, systolic_gossip_time_reference};
    use sg_graphs::digraph::Arc;
    use sg_protocol::builders;
    use sg_protocol::mode::Mode;
    use sg_protocol::round::Round;

    #[test]
    fn run_algebra_union_subtract() {
        let mut out = Vec::new();
        run_union(&[(0, 3), (5, 7)], &[(2, 6), (9, 10)], &mut out);
        assert_eq!(out, vec![(0, 7), (9, 10)]);
        run_union(&[(0, 3)], &[(3, 5)], &mut out); // adjacency coalesces
        assert_eq!(out, vec![(0, 5)]);
        run_union(&[], &[(1, 2)], &mut out);
        assert_eq!(out, vec![(1, 2)]);
        run_subtract(&[(0, 10)], &[(2, 4), (6, 7)], &mut out);
        assert_eq!(out, vec![(0, 2), (4, 6), (7, 10)]);
        run_subtract(&[(0, 4), (6, 9)], &[(3, 8)], &mut out);
        assert_eq!(out, vec![(0, 3), (8, 9)]);
        run_subtract(&[(2, 4)], &[(0, 10)], &mut out);
        assert_eq!(out, Vec::<(u32, u32)>::new());
        assert_eq!(run_len(&[(0, 3), (5, 9)]), 7);
    }

    #[test]
    fn dense_runs_roundtrip_at_word_boundaries() {
        let mut w = vec![0u64; 3];
        // Runs straddling and exactly hitting word boundaries.
        let added = dense_set_runs(&mut w, &[(0, 1), (63, 65), (128, 192)]);
        assert_eq!(added, 1 + 2 + 64);
        assert_eq!(w[0], 1 | (1 << 63));
        assert_eq!(w[1], 1);
        assert_eq!(w[2], !0);
        // Re-setting adds nothing.
        assert_eq!(dense_set_runs(&mut w, &[(63, 65)]), 0);
    }

    #[test]
    fn sparse_matches_reference_on_builders() {
        for (sp, n) in [
            (builders::hypercube_sweep(5), 32usize),
            (builders::path_rrll(9), 9),
            (builders::cycle_two_color_directed(8), 8),
            (builders::knodel_sweep(4, 16), 16),
            (builders::grid_traffic_light(5, 4), 20),
            (builders::complete_round_robin(40), 40), // scattered rows: spills
        ] {
            let a = run_systolic_sparse(&sp, n, 20 * n, true);
            let b = run_systolic_reference(&sp, n, 20 * n, true);
            assert_eq!(a, b);
            assert!(a.completed_at.is_some());
        }
    }

    #[test]
    fn sparse_tables_bit_identical_per_round() {
        for (sp, n) in [
            (builders::hypercube_sweep(4), 16usize),
            (builders::complete_round_robin(70), 70),
            (builders::grid_traffic_light(6, 5), 30),
        ] {
            let mut engine = SparseEngine::for_protocol(&sp, n);
            let mut oracle = Knowledge::initial(n);
            for i in 0..4 * sp.s() + 8 {
                engine.apply(i);
                crate::reference::apply_round_reference(&mut oracle, sp.round_at(i));
                assert_eq!(engine.to_dense(), oracle, "round {i}");
                assert_eq!(engine.min_count(), oracle.min_count(), "round {i}");
            }
        }
    }

    #[test]
    fn completed_rows_retire_and_free_storage() {
        let sp = builders::hypercube_sweep(6);
        let mut engine = SparseEngine::for_protocol(&sp, 64);
        for i in 0..6 {
            engine.apply(i);
        }
        assert!(engine.all_complete());
        assert_eq!(engine.state_bytes(), 0, "full rows store nothing");
        assert_eq!(engine.min_count(), 64);
    }

    #[test]
    fn fixed_points_early_exit_with_padded_trace() {
        let sp = SystolicProtocol::new(vec![Round::new(vec![Arc::new(0, 1)])], Mode::Directed);
        let a = run_systolic_sparse(&sp, 3, 1000, true);
        let b = run_systolic_reference(&sp, 3, 1000, true);
        assert_eq!(a, b);
        assert_eq!(a.completed_at, None);
        assert_eq!(a.trace.len(), 1000);
    }

    #[test]
    fn budget_exhaustion_matches_reference() {
        let sp = builders::path_rrll(10);
        let a = run_systolic_sparse(&sp, 10, 3, true);
        let b = run_systolic_reference(&sp, 10, 3, true);
        assert_eq!(a, b);
        assert_eq!(a.completed_at, None);
    }

    #[test]
    fn skipping_stays_exact_on_slow_protocols() {
        let n = 24;
        let sp = builders::path_rrll(n);
        assert_eq!(
            systolic_gossip_time_sparse(&sp, n, 10 * n),
            systolic_gossip_time_reference(&sp, n, 10 * n)
        );
    }

    #[test]
    fn memory_limit_aborts_gracefully() {
        // A 1-byte budget trips immediately on any real instance.
        let sp = builders::complete_round_robin(40);
        let out = run_systolic_sparse_with_limit(&sp, 40, 1000, false, Some(1));
        assert!(out.aborted_mem);
        assert_eq!(out.result.completed_at, None);
        assert!(out.rounds_run < 1000);
        assert!(out.peak_bytes > 1);
    }

    #[test]
    fn trivial_networks() {
        let sp = SystolicProtocol::new(vec![Round::empty()], Mode::Directed);
        assert_eq!(systolic_gossip_time_sparse(&sp, 0, 10), Some(0));
        assert_eq!(systolic_gossip_time_sparse(&sp, 1, 10), Some(0));
    }

    #[test]
    fn large_knodel_completes_with_interval_rows() {
        // W(10, 2048): rows stay a handful of runs end to end, so the
        // state never approaches the 512 KiB dense table.
        let n = 2048;
        let sp = builders::knodel_sweep(10, n);
        let out = run_systolic_sparse_with_limit(&sp, n, 200, false, None);
        assert!(out.result.completed_at.is_some());
        assert!(
            out.peak_bytes < n * n / 8 / 4,
            "peak {} should be far below dense {}",
            out.peak_bytes,
            n * n / 8
        );
    }
}
